//! Differential proof that the batched multi-lane engine is observably
//! identical to the classic one-simulation-at-a-time scenario path.
//!
//! Every test runs the same scenario batch once at `lanes = 1` (which
//! delegates straight to the solo `Simulation::step` loop) and once at a
//! higher lane count, and asserts the *bytes* agree: per-run
//! `SimulationSummary` JSON, the batch CSV and JSON, and the `.tbptrace`
//! files. A final pair of tests pins the cache contract — lane count is not
//! part of the [`ScenarioHash`], so a batched cold run must warm the cache
//! for a solo run and vice versa.

use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use tbp_core::scenario::{
    MemCache, PlatformSpec, RunCache, Runner, ScenarioSpec, SweepSpec, TraceSpec, WorkloadDecl,
    WorkloadKind,
};
use tbp_thermal::solver::SolverKind;

/// A self-cleaning temp directory for trace output.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("tbp-lane-equiv-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The differential matrix spec: one scenario whose sweep expands over
/// workloads (sdr, dag) and a policy-on/policy-off pair, pinned to one
/// solver. Short schedule — equivalence is about bytes, not physics.
fn matrix_spec(name: &str, solver: SolverKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(name).with_schedule(0.25, 0.5).with_sweep(
        SweepSpec::default()
            .with_workloads([WorkloadKind::Sdr, WorkloadKind::Dag])
            // "dvfs-only" is the policy-off proxy: DVFS governor without any
            // balancing migrations.
            .with_policies(["thermal-balancing", "dvfs-only"])
            .with_thresholds([2.0, 4.0]),
    );
    spec.platform = Some(PlatformSpec {
        solver: Some(solver),
        ..PlatformSpec::default()
    });
    spec
}

/// Sorted (name, bytes) pairs of every file in a trace directory.
fn dir_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("trace dir reads")
        .map(|e| {
            let e = e.expect("dir entry reads");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("trace file reads"),
            )
        })
        .collect();
    out.sort();
    out
}

/// Runs the matrix at `lanes = 1` and at each higher lane count (including
/// a non-power-of-two and a count exceeding the run count) and asserts all
/// observable outputs are byte-identical.
#[test]
fn batched_matrix_matches_solo_bytes() {
    for solver in [SolverKind::ForwardEuler, SolverKind::RungeKutta4] {
        let spec = matrix_spec("lane-equiv", solver);
        let solo_dir = TempDir::new(&format!("solo-{solver:?}"));
        let solo = Runner::new()
            .with_trace_dir(&solo_dir.0)
            .run_batched(std::slice::from_ref(&spec), 1)
            .expect("solo batch runs");
        let solo_json = solo.to_json();
        let solo_csv = solo.to_csv();
        let solo_traces = dir_bytes(&solo_dir.0);
        assert!(
            !solo_traces.is_empty(),
            "matrix spec must emit trace files for the comparison to bite"
        );

        for lanes in [2usize, 3, 4, 8, 64] {
            let lane_dir = TempDir::new(&format!("l{lanes}-{solver:?}"));
            let batched = Runner::new()
                .with_trace_dir(&lane_dir.0)
                .run_batched(std::slice::from_ref(&spec), lanes)
                .expect("batched runs");

            // Per-run summaries, element by element, then the whole report.
            assert_eq!(solo.len(), batched.len());
            for (s, b) in solo.reports.iter().zip(batched.reports.iter()) {
                assert_eq!(s.scenario, b.scenario);
                let s_sum = serde_json::to_string(s.summary().expect("solo summary"))
                    .expect("summary serializes");
                let b_sum = serde_json::to_string(b.summary().expect("batched summary"))
                    .expect("summary serializes");
                assert_eq!(
                    s_sum, b_sum,
                    "summary diverged: {} lanes={lanes}",
                    s.scenario
                );
            }
            assert_eq!(
                solo_json,
                batched.to_json(),
                "JSON diverged at lanes={lanes}"
            );
            assert_eq!(solo_csv, batched.to_csv(), "CSV diverged at lanes={lanes}");
            assert_eq!(
                solo_traces,
                dir_bytes(&lane_dir.0),
                "trace bytes diverged at lanes={lanes}"
            );
        }
    }
}

/// The sweep's trace spec exercises the trace path in the matrix test above.
/// (Kept as a helper so the proptest below can toggle it.)
fn with_trace(mut spec: ScenarioSpec) -> ScenarioSpec {
    spec.trace = Some(TraceSpec {
        interval_ms: Some(50.0),
        tracks: None,
    });
    spec
}

/// Cold batched run warms the cache for a solo run: lane count must be
/// invisible to the [`ScenarioHash`] domain.
#[test]
fn batched_cold_run_warms_solo_cache() {
    let spec = matrix_spec("lane-cache-fwd", SolverKind::ForwardEuler);
    let cache: Arc<dyn RunCache> = Arc::new(MemCache::new());

    let cold = Runner::new()
        .with_cache_arc(Arc::clone(&cache))
        .with_lanes(4);
    let cold_report = cold.run(std::slice::from_ref(&spec)).expect("cold runs");
    assert_eq!(cold.stats().misses(), cold_report.len() as u64);
    assert_eq!(cold.stats().cache_hits, 0);

    let warm = Runner::new().with_cache_arc(Arc::clone(&cache));
    let warm_report = warm.run(std::slice::from_ref(&spec)).expect("warm runs");
    assert_eq!(warm.stats().misses(), 0, "batched entries must hit solo");
    assert_eq!(warm.stats().cache_hits, warm_report.len() as u64);
    assert_eq!(cold_report.to_csv(), warm_report.to_csv());
}

/// And the reverse: a solo cold run fully warms a batched runner.
#[test]
fn solo_cold_run_warms_batched_cache() {
    let spec = matrix_spec("lane-cache-rev", SolverKind::RungeKutta4);
    let cache: Arc<dyn RunCache> = Arc::new(MemCache::new());

    let cold = Runner::new().with_cache_arc(Arc::clone(&cache));
    let cold_report = cold.run(std::slice::from_ref(&spec)).expect("cold runs");
    assert_eq!(cold.stats().misses(), cold_report.len() as u64);

    let warm = Runner::new()
        .with_cache_arc(Arc::clone(&cache))
        .with_lanes(8);
    let warm_report = warm.run(std::slice::from_ref(&spec)).expect("warm runs");
    assert_eq!(warm.stats().misses(), 0, "solo entries must hit batched");
    assert_eq!(warm.stats().cache_hits, warm_report.len() as u64);
    assert_eq!(cold_report.to_json(), warm_report.to_json());
}

/// Mixed platform fingerprints in one batch: runs that cannot share a
/// `LaneBatch` (different solver ⇒ different step count/kernel) must still
/// come out byte-identical, exercising the grouping logic.
#[test]
fn mixed_fingerprint_batch_matches_solo() {
    let specs: Vec<ScenarioSpec> = [
        matrix_spec("mixed-euler", SolverKind::ForwardEuler),
        matrix_spec("mixed-rk4", SolverKind::RungeKutta4),
    ]
    .into_iter()
    .map(with_trace)
    .collect();

    let solo = Runner::new().run_batched(&specs, 1).expect("solo runs");
    let batched = Runner::new().run_batched(&specs, 8).expect("batched runs");
    assert_eq!(solo.to_json(), batched.to_json());
    assert_eq!(solo.to_csv(), batched.to_csv());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised differential check: arbitrary thresholds, durations and
    /// lane counts still produce byte-identical reports.
    #[test]
    fn random_sweeps_are_lane_invariant(
        threshold in 1.0f64..6.0,
        duration in 0.2f64..0.8,
        lanes in 2usize..=9,
        rk4 in any::<bool>(),
        dag in any::<bool>(),
    ) {
        let solver = if rk4 {
            SolverKind::RungeKutta4
        } else {
            SolverKind::ForwardEuler
        };
        let workload = if dag { WorkloadKind::Dag } else { WorkloadKind::Sdr };
        let mut spec = ScenarioSpec::new("lane-prop")
            .with_schedule(0.25, duration)
            .with_workload(WorkloadDecl::of_kind(workload))
            .with_sweep(
                SweepSpec::default()
                    .with_policies(["thermal-balancing", "dvfs-only"])
                    .with_thresholds([threshold, threshold + 1.0]),
            );
        spec.platform = Some(PlatformSpec {
            solver: Some(solver),
            ..PlatformSpec::default()
        });

        let solo = Runner::new()
            .run_batched(std::slice::from_ref(&spec), 1)
            .expect("solo runs");
        let batched = Runner::new()
            .run_batched(std::slice::from_ref(&spec), lanes)
            .expect("batched runs");
        prop_assert_eq!(solo.to_json(), batched.to_json());
        prop_assert_eq!(solo.to_csv(), batched.to_csv());
    }
}
