//! Run-time thermal/power management policies.
//!
//! A [`Policy`] is invoked periodically (every thermal-sensor refresh by
//! default) with a [`PolicyInput`] snapshot of the system — per-core
//! temperatures, frequencies, task placements — and answers with a list of
//! [`PolicyAction`]s: migrate a task, halt a core, resume a core. The
//! simulation engine applies the actions through the OS middleware and the
//! platform.
//!
//! Three policies from the paper's evaluation are provided:
//!
//! * [`ThermalBalancingPolicy`] — the paper's contribution (Section 3.1);
//! * [`StopGoPolicy`] — the thermal-runaway baseline, modified as in
//!   Section 5.2 to use the balancing thresholds;
//! * [`EnergyBalancingPolicy`] — the statically energy-balanced mapping with
//!   DVFS only;
//!
//! plus [`DvfsOnlyPolicy`], an explicit "no policy" used to measure the
//! unbalanced warm-up behaviour.

pub mod energy_balance;
pub mod stop_go;
pub mod thermal_balance;

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::core::CoreId;
use tbp_arch::freq::Frequency;
use tbp_arch::units::{Bytes, Celsius, Seconds};
use tbp_os::task::TaskId;

pub use energy_balance::EnergyBalancingPolicy;
pub use stop_go::StopGoPolicy;
pub use thermal_balance::{ThermalBalancingConfig, ThermalBalancingPolicy};

/// Snapshot of one task handed to a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSnapshot {
    /// Task identifier.
    pub id: TaskId,
    /// Full-speed-equivalent load of the task.
    pub fse_load: f64,
    /// Data volume a migration of this task would transfer.
    pub context_size: Bytes,
    /// Whether the middleware may migrate the task at all.
    pub migratable: bool,
    /// Whether a migration of this task is already in flight.
    pub migrating: bool,
}

/// Snapshot of one core handed to a policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSnapshot {
    /// Core identifier.
    pub id: CoreId,
    /// Last sampled temperature of the core.
    pub temperature: Celsius,
    /// Current frequency selected by the DVFS governor (the configured
    /// frequency for halted cores).
    pub frequency: Frequency,
    /// `false` when the core is currently halted (clock-gated).
    pub running: bool,
    /// Sum of the FSE loads of the tasks assigned to the core.
    pub fse_load: f64,
    /// Tasks assigned to the core.
    pub tasks: Vec<TaskSnapshot>,
}

/// The system state a policy decides on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyInput {
    /// Simulated time of the snapshot.
    pub time: Seconds,
    /// Per-core snapshots, indexed by core id.
    pub cores: Vec<CoreSnapshot>,
    /// Mean of the core temperatures (the policy's `T_mean`).
    pub mean_temperature: Celsius,
    /// Mean of the core frequencies (the policy's `f_mean`).
    pub mean_frequency: Frequency,
    /// Number of migrations currently pending or transferring.
    pub migrations_in_flight: usize,
}

impl PolicyInput {
    /// Temperature of a core by id, if present.
    ///
    /// Snapshots are looked up by their [`CoreSnapshot::id`], not by vector
    /// position, so the answer stays correct even when the snapshot vector is
    /// not id-ordered (e.g. filtered or reordered by a custom policy).
    pub fn temperature_of(&self, core: CoreId) -> Option<Celsius> {
        self.cores
            .iter()
            .find(|c| c.id == core)
            .map(|c| c.temperature)
    }

    /// The hottest core of the snapshot.
    pub fn hottest_core(&self) -> Option<&CoreSnapshot> {
        self.cores.iter().max_by(|a, b| {
            a.temperature
                .as_celsius()
                .partial_cmp(&b.temperature.as_celsius())
                .expect("temperatures are finite")
        })
    }

    /// The coolest core of the snapshot.
    pub fn coolest_core(&self) -> Option<&CoreSnapshot> {
        self.cores.iter().min_by(|a, b| {
            a.temperature
                .as_celsius()
                .partial_cmp(&b.temperature.as_celsius())
                .expect("temperatures are finite")
        })
    }

    /// Spatial spread: hottest minus coolest core temperature.
    pub fn temperature_spread(&self) -> f64 {
        match (self.hottest_core(), self.coolest_core()) {
            (Some(h), Some(c)) => h.temperature - c.temperature,
            _ => 0.0,
        }
    }
}

/// An action a policy asks the runtime to perform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyAction {
    /// Migrate `task` to core `to` (the source is wherever the task runs).
    Migrate {
        /// The task to move.
        task: TaskId,
        /// Destination core.
        to: CoreId,
    },
    /// Clock-gate a core (Stop&Go).
    HaltCore(CoreId),
    /// Resume a halted core.
    ResumeCore(CoreId),
}

impl fmt::Display for PolicyAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyAction::Migrate { task, to } => write!(f, "migrate {task} to {to}"),
            PolicyAction::HaltCore(core) => write!(f, "halt {core}"),
            PolicyAction::ResumeCore(core) => write!(f, "resume {core}"),
        }
    }
}

/// A run-time thermal/power management policy.
///
/// Policies are invoked at every thermal-sensor refresh (10 ms in the paper's
/// platform). They must be cheap: the whole point of the paper's proposal is
/// a *lightweight* balancing algorithm.
pub trait Policy: Send {
    /// Human-readable policy name (used in reports and plots).
    fn name(&self) -> &str;

    /// Decides what to do given the current system snapshot.
    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction>;

    /// Clears any internal state (cooldown timers, hysteresis) so the policy
    /// can be reused for another run.
    fn reset(&mut self) {}

    /// Retunes the policy's balancing threshold *in place*, keeping all other
    /// internal state (cooldown timers, issue counters) — the hook live
    /// reconfiguration (`Simulation::apply_delta`) uses for mid-run threshold
    /// sweeps without cold restarts.
    ///
    /// Returns `true` when the policy applied the new threshold; the default
    /// implementation returns `false` for policies that take no threshold
    /// (e.g. DVFS-only), in which case only the metric band changes.
    fn set_threshold(&mut self, _threshold: f64) -> bool {
        false
    }
}

/// The "no policy" baseline: DVFS only, never migrates, halts nothing.
///
/// Used to measure the unbalanced temperature profile the paper reports after
/// the initial 12.5 s execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DvfsOnlyPolicy;

impl DvfsOnlyPolicy {
    /// Creates the no-op policy.
    pub fn new() -> Self {
        DvfsOnlyPolicy
    }
}

impl Policy for DvfsOnlyPolicy {
    fn name(&self) -> &str {
        "dvfs-only"
    }

    fn decide(&mut self, _input: &PolicyInput) -> Vec<PolicyAction> {
        Vec::new()
    }
}

/// Builds a [`PolicyInput`] from raw per-core data (helper shared by the
/// simulation engine and by unit tests of the policies).
pub fn build_input(
    time: Seconds,
    cores: Vec<CoreSnapshot>,
    migrations_in_flight: usize,
) -> PolicyInput {
    let mut input = PolicyInput {
        time,
        cores,
        mean_temperature: Celsius::ambient(),
        mean_frequency: Frequency::ZERO,
        migrations_in_flight,
    };
    update_input_means(&mut input);
    input
}

/// Recomputes [`PolicyInput::mean_temperature`] and
/// [`PolicyInput::mean_frequency`] from the current core snapshots.
///
/// Shared by [`build_input`] and the simulation engine's in-place snapshot
/// refresh, so both paths produce bit-identical means.
pub fn update_input_means(input: &mut PolicyInput) {
    let n = input.cores.len().max(1) as f64;
    let mean_t = input
        .cores
        .iter()
        .map(|c| c.temperature.as_celsius())
        .sum::<f64>()
        / n;
    // Average in f64: summing u64 hertz and dividing truncates towards zero,
    // which at the 10 ms policy period systematically under-reports `f_mean`.
    let mean_f = input
        .cores
        .iter()
        .map(|c| c.frequency.as_hz() as f64)
        .sum::<f64>()
        / n;
    input.mean_temperature = Celsius::new(mean_t);
    input.mean_frequency = Frequency::from_hz(mean_f.round() as u64);
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers for building policy inputs in unit tests.

    use super::*;

    /// Builds a core snapshot with a single synthetic task carrying the whole
    /// load.
    pub fn core(
        id: usize,
        temperature: f64,
        frequency_mhz: f64,
        fse_load: f64,
        running: bool,
    ) -> CoreSnapshot {
        let tasks = if fse_load > 0.0 {
            vec![TaskSnapshot {
                id: TaskId(id),
                fse_load,
                context_size: Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            }]
        } else {
            Vec::new()
        };
        CoreSnapshot {
            id: CoreId(id),
            temperature: Celsius::new(temperature),
            frequency: Frequency::from_mhz(frequency_mhz),
            running,
            fse_load,
            tasks,
        }
    }

    /// Builds an input from `(temperature, frequency, load)` triples.
    pub fn input_from(cores: &[(f64, f64, f64)]) -> PolicyInput {
        let snapshots = cores
            .iter()
            .enumerate()
            .map(|(i, &(t, f, l))| core(i, t, f, l, true))
            .collect();
        build_input(Seconds::new(1.0), snapshots, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn input_statistics() {
        let input = input_from(&[
            (70.0, 533.0, 0.65),
            (62.0, 266.0, 0.33),
            (60.0, 266.0, 0.40),
        ]);
        assert!((input.mean_temperature.as_celsius() - 64.0).abs() < 1e-9);
        assert!((input.mean_frequency.as_mhz() - 355.0).abs() < 1.0);
        assert_eq!(input.hottest_core().unwrap().id, CoreId(0));
        assert_eq!(input.coolest_core().unwrap().id, CoreId(2));
        assert!((input.temperature_spread() - 10.0).abs() < 1e-9);
        assert_eq!(input.temperature_of(CoreId(1)).unwrap(), Celsius::new(62.0));
        assert!(input.temperature_of(CoreId(9)).is_none());
        assert_eq!(input.migrations_in_flight, 0);
    }

    #[test]
    fn temperature_lookup_uses_ids_not_positions() {
        // Snapshots deliberately not ordered by core id: index-based lookup
        // would return the wrong core's temperature.
        let cores = vec![
            core(2, 70.0, 533.0, 0.5, true),
            core(0, 50.0, 266.0, 0.2, true),
            core(1, 60.0, 266.0, 0.3, true),
        ];
        let input = build_input(Seconds::new(1.0), cores, 0);
        assert_eq!(input.temperature_of(CoreId(0)).unwrap(), Celsius::new(50.0));
        assert_eq!(input.temperature_of(CoreId(1)).unwrap(), Celsius::new(60.0));
        assert_eq!(input.temperature_of(CoreId(2)).unwrap(), Celsius::new(70.0));
        assert!(input.temperature_of(CoreId(3)).is_none());
    }

    #[test]
    fn mean_frequency_does_not_truncate() {
        // Three cores at 100/100/101 MHz: the integer mean truncates the sum
        // (301/3 = 100 MHz exactly); the f64 mean rounds to the nearest hertz.
        let input = input_from(&[(60.0, 100.0, 0.1), (60.0, 100.0, 0.1), (60.0, 101.0, 0.1)]);
        let expected = (100.0e6 + 100.0e6 + 101.0e6) / 3.0;
        assert!((input.mean_frequency.as_hz() as f64 - expected).abs() <= 1.0);
    }

    #[test]
    fn dvfs_only_policy_never_acts() {
        let mut policy = DvfsOnlyPolicy::new();
        assert_eq!(policy.name(), "dvfs-only");
        let input = input_from(&[(90.0, 533.0, 0.9), (45.0, 133.0, 0.0)]);
        assert!(policy.decide(&input).is_empty());
        policy.reset();
        assert_eq!(DvfsOnlyPolicy, policy);
    }

    #[test]
    fn action_display() {
        let a = PolicyAction::Migrate {
            task: TaskId(2),
            to: CoreId(1),
        };
        assert!(a.to_string().contains("task2"));
        assert!(a.to_string().contains("core1"));
        assert!(PolicyAction::HaltCore(CoreId(0))
            .to_string()
            .contains("halt"));
        assert!(PolicyAction::ResumeCore(CoreId(0))
            .to_string()
            .contains("resume"));
    }

    #[test]
    fn empty_input_is_handled() {
        let input = build_input(Seconds::ZERO, Vec::new(), 0);
        assert!(input.hottest_core().is_none());
        assert!(input.coolest_core().is_none());
        assert_eq!(input.temperature_spread(), 0.0);
    }
}
