//! The energy-balancing baseline policy.
//!
//! The paper's first baseline "maps the tasks of the SDR application such
//! that their energy consumption is balanced among the cores", with
//! frequencies and voltages adjusted dynamically by the DVFS algorithm
//! (Section 5.2). Energy balance is established once by the mapping; at run
//! time the policy performs **no migrations** — which is precisely why, as
//! Figure 1 illustrates, it leaves a thermal gradient behind.
//!
//! The implementation offers an optional one-shot rebalancing step (greedy
//! longest-processing-time assignment of the task loads) so synthetic
//! workloads that start from an arbitrary mapping can be brought into the
//! energy-balanced state the baseline assumes.

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;

use super::{Policy, PolicyAction, PolicyInput};

/// The energy-balancing (DVFS-only) baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBalancingPolicy {
    rebalance_on_first_decision: bool,
    rebalanced: bool,
}

impl EnergyBalancingPolicy {
    /// Creates the baseline. The initial mapping is assumed to be already
    /// energy balanced (as in the paper's Table 2 configuration).
    pub fn new() -> Self {
        EnergyBalancingPolicy {
            rebalance_on_first_decision: false,
            rebalanced: false,
        }
    }

    /// Makes the policy issue a single round of migrations on its first
    /// invocation that greedily balances the FSE load across cores. Useful
    /// for synthetic workloads that do not start balanced.
    pub fn with_initial_rebalance(mut self) -> Self {
        self.rebalance_on_first_decision = true;
        self
    }

    /// Greedy longest-processing-time balancing of the tasks over the cores.
    fn rebalance(input: &PolicyInput) -> Vec<PolicyAction> {
        let num_cores = input.cores.len();
        if num_cores == 0 {
            return Vec::new();
        }
        // Collect every task with its current core.
        let mut tasks: Vec<(usize, super::TaskSnapshot)> = Vec::new();
        for core in &input.cores {
            for task in &core.tasks {
                tasks.push((core.id.index(), task.clone()));
            }
        }
        tasks.sort_by(|a, b| {
            b.1.fse_load
                .partial_cmp(&a.1.fse_load)
                .expect("loads are finite")
        });
        let mut load = vec![0.0f64; num_cores];
        let mut actions = Vec::new();
        for (current_core, task) in tasks {
            let (target, _) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("loads are finite"))
                .expect("at least one core");
            load[target] += task.fse_load;
            if target != current_core && task.migratable && !task.migrating {
                actions.push(PolicyAction::Migrate {
                    task: task.id,
                    to: CoreId(target),
                });
            }
        }
        actions
    }
}

impl Default for EnergyBalancingPolicy {
    fn default() -> Self {
        EnergyBalancingPolicy::new()
    }
}

impl Policy for EnergyBalancingPolicy {
    fn name(&self) -> &str {
        "energy-balancing"
    }

    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction> {
        if self.rebalance_on_first_decision && !self.rebalanced {
            self.rebalanced = true;
            return Self::rebalance(input);
        }
        Vec::new()
    }

    fn reset(&mut self) {
        self.rebalanced = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_input;
    use crate::policy::test_support::{core, input_from};
    use tbp_arch::units::Seconds;

    #[test]
    fn default_policy_never_migrates() {
        let mut p = EnergyBalancingPolicy::new();
        assert_eq!(p.name(), "energy-balancing");
        let input = input_from(&[(75.0, 533.0, 0.9), (50.0, 133.0, 0.0), (50.0, 133.0, 0.0)]);
        assert!(p.decide(&input).is_empty());
        assert!(p.decide(&input).is_empty());
        assert_eq!(
            EnergyBalancingPolicy::default(),
            EnergyBalancingPolicy::new()
        );
    }

    #[test]
    fn initial_rebalance_spreads_the_load_once() {
        let mut p = EnergyBalancingPolicy::new().with_initial_rebalance();
        // All load piled onto core 0.
        let mut c0 = core(0, 70.0, 533.0, 0.0, true);
        c0.tasks = vec![
            super::super::TaskSnapshot {
                id: tbp_os::task::TaskId(0),
                fse_load: 0.4,
                context_size: tbp_arch::units::Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            },
            super::super::TaskSnapshot {
                id: tbp_os::task::TaskId(1),
                fse_load: 0.3,
                context_size: tbp_arch::units::Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            },
            super::super::TaskSnapshot {
                id: tbp_os::task::TaskId(2),
                fse_load: 0.3,
                context_size: tbp_arch::units::Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            },
        ];
        c0.fse_load = 1.0;
        let c1 = core(1, 50.0, 133.0, 0.0, true);
        let c2 = core(2, 50.0, 133.0, 0.0, true);
        let input = build_input(Seconds::ZERO, vec![c0, c1, c2], 0);
        let actions = p.decide(&input);
        // Two of the three tasks must move away from core 0.
        assert_eq!(actions.len(), 2);
        for action in &actions {
            match action {
                PolicyAction::Migrate { to, .. } => assert_ne!(to.index(), 0),
                other => panic!("unexpected action {other}"),
            }
        }
        // Only once.
        assert!(p.decide(&input).is_empty());
        p.reset();
        assert_eq!(p.decide(&input).len(), 2);
    }

    #[test]
    fn rebalance_on_empty_input_is_a_noop() {
        let mut p = EnergyBalancingPolicy::new().with_initial_rebalance();
        let input = build_input(Seconds::ZERO, Vec::new(), 0);
        assert!(p.decide(&input).is_empty());
    }
}
