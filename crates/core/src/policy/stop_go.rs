//! The modified Stop&Go baseline policy.
//!
//! Stop&Go prevents thermal runaway by shutting a core down when it reaches a
//! panic temperature. For a fair comparison the paper modifies it to use the
//! balancing policy's **upper threshold as the panic threshold** and its
//! **lower threshold to decide when to switch the core back on** (Section
//! 5.2), both measured against the current mean temperature. The policy
//! controls temperature without migrations, which is exactly why it trades
//! deadline misses for thermal control: a halted core's tasks simply stall.

use serde::{Deserialize, Serialize};

use super::{Policy, PolicyAction, PolicyInput};

/// The modified Stop&Go policy.
///
/// ```
/// use tbp_core::policy::{StopGoPolicy, Policy};
/// let policy = StopGoPolicy::new(3.0);
/// assert_eq!(policy.name(), "stop-and-go");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StopGoPolicy {
    threshold: f64,
    halts_issued: u64,
    resumes_issued: u64,
}

impl StopGoPolicy {
    /// Creates the policy with the given threshold (°C around the mean
    /// temperature): a core halts when it exceeds `mean + threshold` and
    /// resumes when it drops below `mean - threshold`.
    pub fn new(threshold: f64) -> Self {
        StopGoPolicy {
            threshold,
            halts_issued: 0,
            resumes_issued: 0,
        }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of halt commands issued so far.
    pub fn halts_issued(&self) -> u64 {
        self.halts_issued
    }

    /// Number of resume commands issued so far.
    pub fn resumes_issued(&self) -> u64 {
        self.resumes_issued
    }
}

impl Policy for StopGoPolicy {
    fn name(&self) -> &str {
        "stop-and-go"
    }

    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction> {
        let mean = input.mean_temperature.as_celsius();
        let mut actions = Vec::new();
        for core in &input.cores {
            let t = core.temperature.as_celsius();
            if core.running && t >= mean + self.threshold {
                actions.push(PolicyAction::HaltCore(core.id));
                self.halts_issued += 1;
            } else if !core.running && t <= mean - self.threshold {
                actions.push(PolicyAction::ResumeCore(core.id));
                self.resumes_issued += 1;
            }
        }
        actions
    }

    fn reset(&mut self) {
        self.halts_issued = 0;
        self.resumes_issued = 0;
    }

    fn set_threshold(&mut self, threshold: f64) -> bool {
        self.threshold = threshold;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_input;
    use crate::policy::test_support::core;
    use tbp_arch::core::CoreId;
    use tbp_arch::units::Seconds;

    #[test]
    fn halts_hot_cores_and_resumes_cold_ones() {
        let mut p = StopGoPolicy::new(3.0);
        assert_eq!(p.threshold(), 3.0);
        // Mean is 64 °C: core 0 (70°) must halt, the halted core 2 (58°)
        // must resume, core 1 stays untouched.
        let cores = vec![
            core(0, 70.0, 533.0, 0.6, true),
            core(1, 64.0, 266.0, 0.3, true),
            core(2, 58.0, 266.0, 0.3, false),
        ];
        let input = build_input(Seconds::new(1.0), cores, 0);
        let actions = p.decide(&input);
        assert_eq!(actions.len(), 2);
        assert!(actions.contains(&PolicyAction::HaltCore(CoreId(0))));
        assert!(actions.contains(&PolicyAction::ResumeCore(CoreId(2))));
        assert_eq!(p.halts_issued(), 1);
        assert_eq!(p.resumes_issued(), 1);
        p.reset();
        assert_eq!(p.halts_issued(), 0);
    }

    #[test]
    fn no_action_inside_the_band() {
        let mut p = StopGoPolicy::new(3.0);
        let cores = vec![
            core(0, 65.0, 533.0, 0.6, true),
            core(1, 64.0, 266.0, 0.3, true),
            core(2, 63.0, 266.0, 0.3, true),
        ];
        let input = build_input(Seconds::new(1.0), cores, 0);
        assert!(p.decide(&input).is_empty());
    }

    #[test]
    fn halted_core_stays_halted_until_lower_threshold() {
        let mut p = StopGoPolicy::new(2.0);
        // The halted core 0 has cooled to just above mean - threshold: it must
        // stay halted.
        let cores = vec![
            core(0, 63.5, 533.0, 0.6, false),
            core(1, 64.0, 266.0, 0.3, true),
            core(2, 65.0, 266.0, 0.3, true),
        ];
        let input = build_input(Seconds::new(1.0), cores, 0);
        assert!(p.decide(&input).is_empty());
        // Once it drops below the lower threshold it resumes.
        let cores = vec![
            core(0, 61.0, 533.0, 0.6, false),
            core(1, 64.0, 266.0, 0.3, true),
            core(2, 65.0, 266.0, 0.3, true),
        ];
        let input = build_input(Seconds::new(1.0), cores, 0);
        assert_eq!(input.mean_temperature.as_celsius(), 190.0 / 3.0);
        let actions = p.decide(&input);
        assert_eq!(actions, vec![PolicyAction::ResumeCore(CoreId(0))]);
    }
}
