//! The paper's migration-based thermal balancing policy (Section 3.1).
//!
//! The policy keeps every core's temperature inside a band of `± threshold`
//! degrees around the current mean temperature. When a core leaves the band a
//! migration is triggered between exactly two processors: tasks move from the
//! warm side to the cold side. Candidate destination cores must satisfy three
//! conditions:
//!
//! 1. source and destination sit on opposite sides of the mean temperature:
//!    `(T_src − T_mean)·(T_dst − T_mean) < 0`;
//! 2. source and destination sit on opposite sides of the mean frequency:
//!    `(f_src − f_mean)·(f_dst − f_mean) < 0` (evaluated non-strictly so the
//!    steady back-and-forth balancing of Figure 1 remains possible once the
//!    loads have equalised);
//! 3. the migration must not increase power:
//!    `(f_src² + f_dst²)_before ≥ (f_src² + f_dst²)_after`, with the
//!    post-migration frequencies predicted from the DVFS governor.
//!
//! The destination and task are chosen by minimising the cost function of
//! Eq. 1 — data moved divided by the squared distance of the destination from
//! the mean temperature — and the search is pruned to the few highest-load
//! tasks, exactly as the paper suggests.

use serde::{Deserialize, Serialize};

use tbp_arch::freq::{DvfsScale, Frequency};
use tbp_arch::units::Seconds;

use super::{CoreSnapshot, Policy, PolicyAction, PolicyInput};

/// Tunable parameters of the thermal balancing policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalBalancingConfig {
    /// Half-width of the allowed temperature band around the mean (°C). The
    /// paper sweeps 1–4 °C.
    pub threshold: f64,
    /// How many of the highest-load tasks on the source are considered for
    /// migration (the paper's pruning of the exhaustive search).
    pub max_candidate_tasks: usize,
    /// Minimum time between two migrations issued by the policy, bounding the
    /// migration overhead.
    pub min_migration_interval: Seconds,
    /// Evaluate condition 1 (opposite sides of the mean temperature).
    pub use_temperature_condition: bool,
    /// Evaluate condition 2 (opposite sides of the mean frequency).
    pub use_frequency_condition: bool,
    /// Evaluate condition 3 (power must not increase).
    pub use_power_condition: bool,
}

impl ThermalBalancingConfig {
    /// The configuration used in the paper's headline experiment: a ±3 °C
    /// band, the three candidate conditions enabled, search pruned to the
    /// three heaviest tasks.
    pub fn paper_default() -> Self {
        ThermalBalancingConfig {
            threshold: 3.0,
            max_candidate_tasks: 3,
            min_migration_interval: Seconds::from_millis(100.0),
            use_temperature_condition: true,
            use_frequency_condition: true,
            use_power_condition: true,
        }
    }

    /// Same configuration with a different threshold (the X axis of
    /// Figures 7–11).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }
}

impl Default for ThermalBalancingConfig {
    fn default() -> Self {
        ThermalBalancingConfig::paper_default()
    }
}

/// The migration-based thermal balancing policy.
///
/// ```
/// use tbp_core::policy::{ThermalBalancingPolicy, ThermalBalancingConfig, Policy};
/// use tbp_arch::freq::DvfsScale;
///
/// let mut policy = ThermalBalancingPolicy::new(
///     DvfsScale::paper_default(),
///     ThermalBalancingConfig::paper_default().with_threshold(2.0),
/// );
/// assert_eq!(policy.name(), "thermal-balancing");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalBalancingPolicy {
    scale: DvfsScale,
    config: ThermalBalancingConfig,
    last_migration_at: Option<Seconds>,
    migrations_issued: u64,
}

impl ThermalBalancingPolicy {
    /// Creates the policy for a platform using the given DVFS scale.
    pub fn new(scale: DvfsScale, config: ThermalBalancingConfig) -> Self {
        ThermalBalancingPolicy {
            scale,
            config,
            last_migration_at: None,
            migrations_issued: 0,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &ThermalBalancingConfig {
        &self.config
    }

    /// Number of migrations issued by this policy instance.
    pub fn migrations_issued(&self) -> u64 {
        self.migrations_issued
    }

    /// Frequency the governor would select for the given FSE load.
    fn frequency_for_load(&self, fse_load: f64) -> Frequency {
        self.scale
            .level_for_load((fse_load.max(0.0) + 0.02).min(1.0))
            .map(|p| p.frequency)
            .unwrap_or_else(|| self.scale.min_frequency())
    }

    fn in_cooldown(&self, now: Seconds) -> bool {
        match self.last_migration_at {
            // Same epsilon convention as the simulation's policy-period gate
            // (`since_policy + 1e-12 >= policy_period`): a cooldown exactly
            // equal to the policy period must expire on the tick it
            // nominally ends, not one tick later when accumulated float
            // error leaves the elapsed time a few ULPs short.
            Some(at) => {
                now.saturating_sub(at).as_secs() + 1e-12
                    < self.config.min_migration_interval.as_secs()
            }
            None => false,
        }
    }

    /// Checks the three candidate conditions for moving a task of load
    /// `task_load` from `src` to `dst`.
    fn pair_is_candidate(
        &self,
        src: &CoreSnapshot,
        dst: &CoreSnapshot,
        task_load: f64,
        mean_t: f64,
        mean_f: f64,
    ) -> bool {
        if !dst.running {
            return false;
        }
        // Condition 1: opposite sides of the mean temperature.
        if self.config.use_temperature_condition {
            let product =
                (src.temperature.as_celsius() - mean_t) * (dst.temperature.as_celsius() - mean_t);
            if product >= 0.0 {
                return false;
            }
        }
        // Condition 2: opposite sides of the mean frequency (non-strict).
        if self.config.use_frequency_condition {
            let product =
                (src.frequency.as_hz() as f64 - mean_f) * (dst.frequency.as_hz() as f64 - mean_f);
            if product > 0.0 {
                return false;
            }
        }
        // Condition 3: the post-migration frequencies must not dissipate more
        // power than the pre-migration ones (f² is used as the power proxy,
        // as in the paper).
        if self.config.use_power_condition {
            let f_src_before = src.frequency.as_mhz();
            let f_dst_before = dst.frequency.as_mhz();
            let f_src_after = self.frequency_for_load(src.fse_load - task_load).as_mhz();
            let f_dst_after = self.frequency_for_load(dst.fse_load + task_load).as_mhz();
            let before = f_src_before.powi(2) + f_dst_before.powi(2);
            let after = f_src_after.powi(2) + f_dst_after.powi(2);
            if before + 1e-9 < after {
                return false;
            }
        }
        true
    }
}

impl Policy for ThermalBalancingPolicy {
    fn name(&self) -> &str {
        "thermal-balancing"
    }

    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction> {
        // Keep migration overhead bounded: one decision at a time, spaced by
        // the configured interval, and never while a transfer is in flight.
        if input.migrations_in_flight > 0 || self.in_cooldown(input.time) {
            return Vec::new();
        }
        // A glitched sensor daemon can hand the policy a NaN temperature or
        // task load; such cores/tasks are skipped (and the means recomputed
        // over the healthy cores) rather than panicking and aborting a whole
        // batch run.
        let finite =
            |c: &CoreSnapshot| c.temperature.as_celsius().is_finite() && c.fse_load.is_finite();
        let (mean_t, mean_f) = if input.cores.iter().all(finite) {
            (
                input.mean_temperature.as_celsius(),
                input.mean_frequency.as_hz() as f64,
            )
        } else {
            let mut n = 0.0;
            let mut sum_t = 0.0;
            let mut sum_f = 0.0;
            for c in input.cores.iter().filter(|c| finite(c)) {
                n += 1.0;
                sum_t += c.temperature.as_celsius();
                sum_f += c.frequency.as_hz() as f64;
            }
            if n == 0.0 {
                return Vec::new();
            }
            (sum_t / n, sum_f / n)
        };

        // Find the running core with the largest band violation.
        let trigger = input
            .cores
            .iter()
            .filter(|c| c.running && finite(c))
            .map(|c| (c, (c.temperature.as_celsius() - mean_t).abs()))
            .filter(|(_, dev)| *dev >= self.config.threshold)
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let Some((trigger_core, _)) = trigger else {
            return Vec::new();
        };

        // The source of the migration is always the warm side: either the
        // trigger itself (upper-threshold crossing) or, for a cold trigger,
        // every core above the mean is a potential source.
        let trigger_is_hot = trigger_core.temperature.as_celsius() >= mean_t;
        let sources: Vec<&CoreSnapshot> = if trigger_is_hot {
            vec![trigger_core]
        } else {
            input
                .cores
                .iter()
                .filter(|c| c.running && finite(c) && c.temperature.as_celsius() > mean_t)
                .collect()
        };
        let destinations: Vec<&CoreSnapshot> = if trigger_is_hot {
            input
                .cores
                .iter()
                .filter(|c| c.running && finite(c) && c.temperature.as_celsius() < mean_t)
                .collect()
        } else {
            vec![trigger_core]
        };

        let mut best: Option<(f64, PolicyAction)> = None;
        for src in &sources {
            // Prune the search to the highest-load migratable tasks.
            let mut candidates: Vec<_> = src
                .tasks
                .iter()
                .filter(|t| {
                    t.migratable && !t.migrating && t.fse_load.is_finite() && t.fse_load > 0.0
                })
                .collect();
            candidates.sort_by(|a, b| b.fse_load.total_cmp(&a.fse_load));
            candidates.truncate(self.config.max_candidate_tasks);

            for dst in &destinations {
                if src.id == dst.id {
                    continue;
                }
                let t_dst_distance = dst.temperature.as_celsius() - mean_t;
                // Eq. 1 denominator: a destination exactly at the mean would
                // be revisited immediately; guard against division by ~0.
                let denominator = t_dst_distance.powi(2).max(1e-6);
                for task in &candidates {
                    if !self.pair_is_candidate(src, dst, task.fse_load, mean_t, mean_f) {
                        continue;
                    }
                    let cost = task.context_size.as_u64() as f64 / denominator;
                    let action = PolicyAction::Migrate {
                        task: task.id,
                        to: dst.id,
                    };
                    if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
                        best = Some((cost, action));
                    }
                }
            }
        }

        match best {
            Some((_, action)) => {
                self.last_migration_at = Some(input.time);
                self.migrations_issued += 1;
                vec![action]
            }
            None => Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.last_migration_at = None;
        self.migrations_issued = 0;
    }

    fn set_threshold(&mut self, threshold: f64) -> bool {
        self.config.threshold = threshold;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::build_input;
    use crate::policy::test_support::*;
    use tbp_arch::core::CoreId;
    use tbp_arch::units::Bytes;
    use tbp_os::task::TaskId;

    fn policy(threshold: f64) -> ThermalBalancingPolicy {
        ThermalBalancingPolicy::new(
            DvfsScale::paper_default(),
            ThermalBalancingConfig::paper_default().with_threshold(threshold),
        )
    }

    #[test]
    fn no_action_inside_the_band() {
        let mut p = policy(3.0);
        // Spread of 2 °C around the mean: nobody crosses a 3 °C threshold.
        let input = input_from(&[(61.0, 400.0, 0.5), (60.0, 266.0, 0.3), (59.0, 266.0, 0.3)]);
        assert!(p.decide(&input).is_empty());
        assert_eq!(p.migrations_issued(), 0);
    }

    #[test]
    fn hot_core_triggers_migration_to_cold_core() {
        let mut p = policy(3.0);
        // Core 0 is 6 °C above the mean, runs fast and carries the load;
        // core 2 is cold and slow.
        let input = input_from(&[
            (70.0, 533.0, 0.65),
            (63.0, 266.0, 0.33),
            (59.0, 266.0, 0.40),
        ]);
        let actions = p.decide(&input);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            PolicyAction::Migrate { task, to } => {
                assert_eq!(task, TaskId(0), "the heaviest task on the hot core moves");
                assert_ne!(to, CoreId(0));
                // The destination must be below the mean (64 °C).
                assert!(input.temperature_of(to).unwrap().as_celsius() < 64.0);
            }
            other => panic!("expected a migration, got {other}"),
        }
        assert_eq!(p.migrations_issued(), 1);
    }

    #[test]
    fn cold_core_triggers_pull_from_warm_core() {
        let mut p = policy(3.0);
        // Core 2 is 6 °C below the mean; cores 0 and 1 are warm.
        let input = input_from(&[(67.0, 533.0, 0.6), (66.0, 400.0, 0.5), (58.0, 133.0, 0.05)]);
        let actions = p.decide(&input);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            PolicyAction::Migrate { to, .. } => assert_eq!(to, CoreId(2)),
            other => panic!("expected a migration, got {other}"),
        }
    }

    #[test]
    fn respects_in_flight_migrations_and_cooldown() {
        let mut p = policy(3.0);
        let hot = input_from(&[(72.0, 533.0, 0.65), (60.0, 266.0, 0.3), (58.0, 266.0, 0.3)]);
        // In-flight migration blocks new decisions.
        let mut blocked = hot.clone();
        blocked.migrations_in_flight = 1;
        assert!(p.decide(&blocked).is_empty());
        // First real decision goes through...
        assert_eq!(p.decide(&hot).len(), 1);
        // ...but an immediate re-trigger is suppressed by the cooldown.
        assert!(p.decide(&hot).is_empty());
        // After the interval elapses the policy can act again.
        let mut later = hot.clone();
        later.time = Seconds::new(hot.time.as_secs() + 1.0);
        assert_eq!(p.decide(&later).len(), 1);
        // Boundary: a cooldown *exactly* equal to the interval must expire on
        // the tick it nominally ends even when accumulated float error leaves
        // the computed elapsed time a few ULPs short. 1.15 + 1.05 subtract to
        // 0.09999999999999987 < 0.1 strictly, which used to re-trigger one
        // tick late.
        p.reset();
        let mut first = hot.clone();
        first.time = Seconds::new(1.05);
        assert_eq!(p.decide(&first).len(), 1);
        let mut boundary = hot.clone();
        boundary.time = Seconds::new(1.15);
        assert!(boundary.time.as_secs() - first.time.as_secs() < 0.1);
        assert_eq!(
            p.decide(&boundary).len(),
            1,
            "cooldown equal to the policy period must expire on its tick"
        );
        p.reset();
        assert_eq!(p.migrations_issued(), 0);
    }

    #[test]
    fn non_finite_sensor_readings_and_loads_are_skipped() {
        use tbp_arch::units::Celsius;
        // Regression: a NaN reading used to abort the run through
        // `.expect("finite temperatures")`. The glitched core is skipped and
        // the policy keeps balancing among the healthy ones.
        let mut p = policy(3.0);
        let mut input = input_from(&[
            (70.0, 533.0, 0.65),
            (63.0, 266.0, 0.33),
            (59.0, 266.0, 0.40),
        ]);
        input.cores[1].temperature = Celsius::new(f64::NAN);
        let actions = p.decide(&input);
        assert_eq!(actions.len(), 1, "healthy cores still balance");
        match actions[0] {
            PolicyAction::Migrate { to, .. } => assert_eq!(to, CoreId(2)),
            other => panic!("expected a migration, got {other}"),
        }
        // The glitched core is never picked as a destination even when it
        // reads colder than everyone else (NaN compares false, but an -inf
        // reading would otherwise win the cost function outright).
        let mut p = policy(3.0);
        let mut input = input_from(&[
            (70.0, 533.0, 0.65),
            (63.0, 266.0, 0.33),
            (59.0, 266.0, 0.40),
        ]);
        input.cores[2].temperature = Celsius::new(f64::NEG_INFINITY);
        for action in p.decide(&input) {
            match action {
                PolicyAction::Migrate { to, .. } => assert_ne!(to, CoreId(2)),
                other => panic!("expected a migration, got {other}"),
            }
        }
        // A NaN task load must not panic the candidate sort; the finite task
        // still migrates.
        let mut p = policy(3.0);
        let mut src = core(0, 72.0, 533.0, 0.0, true);
        src.tasks = vec![
            super::super::TaskSnapshot {
                id: TaskId(0),
                fse_load: f64::NAN,
                context_size: Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            },
            super::super::TaskSnapshot {
                id: TaskId(1),
                fse_load: 0.4,
                context_size: Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            },
        ];
        src.fse_load = 0.4;
        let dst = core(1, 58.0, 133.0, 0.05, true);
        let input = build_input(Seconds::new(1.0), vec![src, dst], 0);
        let actions = p.decide(&input);
        assert_eq!(actions.len(), 1);
        match actions[0] {
            PolicyAction::Migrate { task, .. } => assert_eq!(task, TaskId(1)),
            other => panic!("expected a migration, got {other}"),
        }
        // All cores glitched: no action, no panic.
        let mut p = policy(3.0);
        let mut input = input_from(&[(70.0, 533.0, 0.6), (60.0, 266.0, 0.3)]);
        for c in &mut input.cores {
            c.temperature = Celsius::new(f64::NAN);
        }
        assert!(p.decide(&input).is_empty());
    }

    #[test]
    fn set_threshold_retunes_in_place() {
        let input = input_from(&[
            (70.0, 533.0, 0.65),
            (63.0, 266.0, 0.33),
            (59.0, 266.0, 0.40),
        ]);
        // Max deviation is 6 °C: inside a 7 °C band, outside a 3 °C one.
        let mut loose = policy(7.0);
        assert!(loose.decide(&input).is_empty());
        assert!(loose.set_threshold(3.0));
        assert_eq!(loose.config().threshold, 3.0);
        assert_eq!(loose.decide(&input).len(), 1);
    }

    #[test]
    fn larger_threshold_tolerates_larger_gradients() {
        let mut tight = policy(1.0);
        let mut loose = policy(4.0);
        let input = input_from(&[(66.0, 533.0, 0.6), (63.0, 266.0, 0.3), (62.0, 266.0, 0.3)]);
        // Spread is 4 °C, max deviation from mean ~2.33 °C.
        assert_eq!(tight.decide(&input).len(), 1);
        assert!(loose.decide(&input).is_empty());
    }

    #[test]
    fn power_condition_vetoes_expensive_moves() {
        // Moving the 0.4-load task does not lower the source's DVFS level
        // (0.3 still needs 266 MHz) but pushes the destination from 266 MHz
        // to 400 MHz, so the total f² grows: condition 3 must reject it.
        let cores = [(70.0, 266.0, 0.4), (60.0, 266.0, 0.3)];
        let mut with_power = policy(3.0);
        let input = input_from(&cores);
        assert!(with_power.decide(&input).is_empty());

        let mut without_power = ThermalBalancingPolicy::new(
            DvfsScale::paper_default(),
            ThermalBalancingConfig {
                use_power_condition: false,
                use_frequency_condition: false,
                ..ThermalBalancingConfig::paper_default()
            },
        );
        assert_eq!(without_power.decide(&input).len(), 1);
    }

    #[test]
    fn frequency_condition_requires_opposite_sides_of_the_mean() {
        // Both cores run at the same frequency as the mean of a third slower
        // core: src and dst are both above f_mean, so condition 2 rejects the
        // pair when evaluated strictly on opposite sides.
        let cores = [(70.0, 533.0, 0.6), (60.0, 533.0, 0.2), (58.0, 133.0, 0.0)];
        let mut p = policy(3.0);
        let input = input_from(&cores);
        let actions = p.decide(&input);
        // The only acceptable destination is core 2 (below mean frequency).
        match actions[0] {
            PolicyAction::Migrate { to, .. } => assert_eq!(to, CoreId(2)),
            other => panic!("unexpected action {other}"),
        }
    }

    #[test]
    fn cost_function_prefers_the_coldest_destination() {
        // Two possible destinations with identical task data volume: Eq. 1
        // favours the one farther below the mean.
        let mut p = ThermalBalancingPolicy::new(
            DvfsScale::paper_default(),
            ThermalBalancingConfig {
                use_frequency_condition: false,
                use_power_condition: false,
                ..ThermalBalancingConfig::paper_default()
            },
        );
        let input = input_from(&[(74.0, 533.0, 0.5), (63.0, 266.0, 0.1), (55.0, 266.0, 0.1)]);
        let actions = p.decide(&input);
        match actions[0] {
            PolicyAction::Migrate { to, .. } => assert_eq!(to, CoreId(2)),
            other => panic!("unexpected action {other}"),
        }
    }

    #[test]
    fn pruning_limits_candidate_tasks() {
        // Build a source core with many tasks; only the heaviest should be
        // considered, and the chosen one must be among the top loads. The
        // frequency/power conditions are disabled so the test isolates the
        // pruning behaviour.
        let mut src = core(0, 72.0, 533.0, 0.0, true);
        src.tasks = (0..6)
            .map(|i| super::super::TaskSnapshot {
                id: TaskId(i),
                fse_load: 0.05 + 0.05 * i as f64,
                context_size: Bytes::from_kib(64),
                migratable: true,
                migrating: false,
            })
            .collect();
        src.fse_load = src.tasks.iter().map(|t| t.fse_load).sum();
        let dst = core(1, 58.0, 133.0, 0.05, true);
        let input = build_input(Seconds::new(1.0), vec![src, dst], 0);
        let mut p = ThermalBalancingPolicy::new(
            DvfsScale::paper_default(),
            ThermalBalancingConfig {
                use_frequency_condition: false,
                use_power_condition: false,
                ..ThermalBalancingConfig::paper_default()
            },
        );
        let actions = p.decide(&input);
        match actions[0] {
            PolicyAction::Migrate { task, .. } => {
                // Top three loads are tasks 5, 4, 3.
                assert!(task.index() >= 3, "picked {task} outside the pruned set");
            }
            other => panic!("unexpected action {other}"),
        }
    }

    #[test]
    fn non_migratable_and_in_flight_tasks_are_skipped() {
        let mut src = core(0, 72.0, 533.0, 0.6, true);
        src.tasks[0].migratable = false;
        let dst = core(1, 58.0, 133.0, 0.0, true);
        let input = build_input(Seconds::new(1.0), vec![src.clone(), dst.clone()], 0);
        let mut p = policy(3.0);
        assert!(p.decide(&input).is_empty());

        src.tasks[0].migratable = true;
        src.tasks[0].migrating = true;
        let input = build_input(Seconds::new(1.0), vec![src, dst], 0);
        assert!(p.decide(&input).is_empty());
    }

    #[test]
    fn halted_cores_are_not_destinations() {
        let src = core(0, 72.0, 533.0, 0.6, true);
        let halted = core(1, 50.0, 266.0, 0.0, false);
        let input = build_input(Seconds::new(1.0), vec![src, halted], 0);
        let mut p = policy(3.0);
        assert!(p.decide(&input).is_empty());
        assert_eq!(p.config().max_candidate_tasks, 3);
    }
}
