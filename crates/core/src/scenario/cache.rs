//! Memoization of run reports keyed by scenario content hashes.
//!
//! A [`RunCache`] stores the [`RunReport`] of a concrete scenario under its
//! [`ScenarioHash`]. The [`Runner`](crate::scenario::Runner) consults the
//! cache before building a simulation and stores every freshly computed
//! report, so repeated sweeps only simulate grid points that were never seen
//! before — re-running a fully cached batch performs zero simulations.
//!
//! Two backends ship:
//!
//! * [`FsCache`] — one JSON file per report in a directory. Safe to share
//!   between concurrent processes (writes go through a temp file + rename),
//!   which is exactly what sharded runs over a common `--cache-dir` do.
//! * [`MemCache`] — an in-process map, useful for tests and for deduplicating
//!   repeated grid points inside one process without touching the disk.
//!
//! Cached reports deliberately exclude the scenario's *label*: the `scenario`
//! and `group` fields of a hit are re-stamped from the requesting spec, so
//! renaming a scenario reuses its cached results (see [`ScenarioHash`] for
//! what is hashed).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tbp_obs::metrics::{Counter, MetricsRegistry};

use crate::error::SimError;
use crate::scenario::hash::ScenarioHash;
use crate::scenario::runner::RunReport;

/// A store of run reports keyed by scenario content hash.
///
/// Implementations must be safe to call from multiple runner workers at
/// once. Both methods are best-effort: a failed [`load`](RunCache::load) is a
/// miss and a failed [`store`](RunCache::store) simply leaves the entry
/// uncached — neither may fail the batch.
pub trait RunCache: Send + Sync {
    /// Returns the cached report for `key`, if present and readable.
    fn load(&self, key: &ScenarioHash) -> Option<RunReport>;

    /// Stores `report` under `key` (best-effort).
    fn store(&self, key: &ScenarioHash, report: &RunReport);
}

/// Live counters an [`FsCache`] bumps on every operation, registered in a
/// [`MetricsRegistry`] so heartbeats can report cache effectiveness while a
/// batch runs. Attaching them never changes what the cache returns.
#[derive(Clone, Debug)]
pub struct CacheMetrics {
    /// Lookups performed (`cache.loads`).
    pub loads: Counter,
    /// Lookups answered from disk (`cache.load_hits`).
    pub load_hits: Counter,
    /// Entries written (`cache.stores`).
    pub stores: Counter,
    /// Corrupt or truncated entries quarantined on load (`cache.load_corrupt`).
    pub load_corrupt: Counter,
}

impl CacheMetrics {
    /// Registers (or re-resolves) the cache instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        CacheMetrics {
            loads: registry.counter("cache.loads"),
            load_hits: registry.counter("cache.load_hits"),
            stores: registry.counter("cache.stores"),
            load_corrupt: registry.counter("cache.load_corrupt"),
        }
    }
}

/// A filesystem-backed [`RunCache`]: one `<hash>.json` file per report.
///
/// Entries are written atomically (temp file + rename on the same
/// filesystem), so a directory may be shared by concurrent shard workers.
/// Corrupt or truncated entries are treated as misses: the offending file is
/// quarantined to `<hash>.corrupt` (and counted as `cache.load_corrupt`), the
/// scenario re-simulates, and the next store writes a fresh entry — a crash
/// mid-store on a shared cache directory never poisons later runs.
#[derive(Debug)]
pub struct FsCache {
    dir: PathBuf,
    sequence: AtomicU64,
    metrics: Option<CacheMetrics>,
}

impl FsCache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            SimError::Spec(format!("cannot create cache dir {}: {e}", dir.display()))
        })?;
        Ok(FsCache {
            dir,
            sequence: AtomicU64::new(0),
            metrics: None,
        })
    }

    /// Publishes load/hit/store counts through `metrics` (builder-style).
    pub fn with_metrics(mut self, metrics: CacheMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of cached entries currently on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn entry_path(&self, key: &ScenarioHash) -> PathBuf {
        self.dir.join(format!("{}.json", key.to_hex()))
    }

    fn quarantine_path(&self, key: &ScenarioHash) -> PathBuf {
        self.dir.join(format!("{}.corrupt", key.to_hex()))
    }
}

impl RunCache for FsCache {
    fn load(&self, key: &ScenarioHash) -> Option<RunReport> {
        if let Some(metrics) = &self.metrics {
            metrics.loads.inc();
        }
        let path = self.entry_path(key);
        let text = std::fs::read_to_string(&path).ok()?;
        let Ok(report) = serde_json::from_str(&text) else {
            // A crash mid-`store` on a pre-atomic-rename filesystem, a torn
            // copy, or plain disk corruption: quarantine the entry so it (a)
            // stops being re-parsed on every later lookup and (b) stays on
            // disk for a post-mortem, then treat the lookup as a miss — the
            // scenario re-simulates and the next store writes a fresh entry.
            let _ = std::fs::rename(&path, self.quarantine_path(key));
            if let Some(metrics) = &self.metrics {
                metrics.load_corrupt.inc();
            }
            return None;
        };
        if let Some(metrics) = &self.metrics {
            metrics.load_hits.inc();
        }
        Some(report)
    }

    fn store(&self, key: &ScenarioHash, report: &RunReport) {
        if let Some(metrics) = &self.metrics {
            metrics.stores.inc();
        }
        let path = self.entry_path(key);
        // Unique temp name per process *and* per store: concurrent shard
        // workers on one directory must never clobber each other's temp file.
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            key.to_hex(),
            std::process::id(),
            self.sequence.fetch_add(1, Ordering::Relaxed)
        ));
        let json = serde_json::to_string_pretty(report).expect("reports always serialize");
        // Best-effort, but never leak the temp file: remove it whenever it
        // did not make it to its final name (failed write or failed rename).
        if std::fs::write(&tmp, json).is_err() || std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// An in-process [`RunCache`] backed by a mutex-guarded map.
#[derive(Debug, Default)]
pub struct MemCache {
    entries: Mutex<BTreeMap<ScenarioHash, RunReport>>,
}

impl MemCache {
    /// An empty in-memory cache.
    pub fn new() -> Self {
        MemCache::default()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl RunCache for MemCache {
    fn load(&self, key: &ScenarioHash) -> Option<RunReport> {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .cloned()
    }

    fn store(&self, key: &ScenarioHash, report: &RunReport) {
        self.entries
            .lock()
            .expect("cache lock poisoned")
            .insert(*key, report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::runner::RunOutcome;
    use crate::scenario::spec::{AnalysisKind, ScenarioSpec};

    fn table_report(name: &str) -> RunReport {
        RunReport {
            scenario: name.to_string(),
            group: name.to_string(),
            policy: None,
            workload: None,
            package: None,
            threshold: None,
            queue_capacity: None,
            outcome: RunOutcome::Table(AnalysisKind::Table1Power.compute()),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tbp-cache-unit-{tag}-{}", std::process::id()))
    }

    #[test]
    fn fs_cache_round_trips_reports() {
        let dir = temp_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = FsCache::open(&dir).expect("cache opens");
        assert!(cache.is_empty());
        let key = ScenarioHash::of(&ScenarioSpec::new("x")).unwrap();
        assert!(cache.load(&key).is_none());
        let report = table_report("x");
        cache.store(&key, &report);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load(&key), Some(report));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn fs_cache_quarantines_corrupt_entries_as_misses() {
        let dir = temp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = FsCache::open(&dir).expect("cache opens");
        let key = ScenarioHash::of(&ScenarioSpec::new("x")).unwrap();
        std::fs::write(dir.join(format!("{}.json", key.to_hex())), "{not json").unwrap();
        assert!(cache.load(&key).is_none());
        // The torn entry moved aside (no longer counted, preserved on disk)
        // and a store + load cycle works again afterwards.
        assert!(cache.is_empty());
        let quarantined = dir.join(format!("{}.corrupt", key.to_hex()));
        assert_eq!(
            std::fs::read_to_string(&quarantined).unwrap(),
            "{not json",
            "quarantined bytes are preserved for post-mortems"
        );
        let report = table_report("x");
        cache.store(&key, &report);
        assert_eq!(cache.load(&key), Some(report));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn mem_cache_round_trips_reports() {
        let cache = MemCache::new();
        let key = ScenarioHash::of(&ScenarioSpec::new("y")).unwrap();
        assert!(cache.is_empty());
        assert!(cache.load(&key).is_none());
        cache.store(&key, &table_report("y"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load(&key).unwrap().scenario, "y");
    }
}
