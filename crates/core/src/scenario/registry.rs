//! Name → factory registry for run-time policies.
//!
//! Scenario specs reference policies by string name; a [`PolicyRegistry`]
//! resolves those names to [`Policy`] instances. The four paper policies are
//! pre-registered ([`PolicyRegistry::with_builtins`]); third-party policies
//! register with [`PolicyRegistry::register`] without touching any core
//! code:
//!
//! ```
//! use tbp_core::policy::{DvfsOnlyPolicy, Policy};
//! use tbp_core::scenario::{PolicyRegistry, PolicySpec};
//!
//! let mut registry = PolicyRegistry::with_builtins();
//! registry.register("my-policy", |spec| {
//!     let _band = spec.threshold_or_default();
//!     Ok(Box::new(DvfsOnlyPolicy::new()))
//! });
//! let policy = registry
//!     .instantiate(&PolicySpec::named("my-policy"))
//!     .expect("registered");
//! assert_eq!(policy.name(), "dvfs-only");
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use tbp_arch::freq::DvfsScale;

use crate::error::SimError;
use crate::policy::{
    DvfsOnlyPolicy, EnergyBalancingPolicy, Policy, StopGoPolicy, ThermalBalancingConfig,
    ThermalBalancingPolicy,
};
use crate::scenario::spec::PolicySpec;

/// A function building a policy from its spec.
pub type PolicyFactory =
    Box<dyn Fn(&PolicySpec) -> Result<Box<dyn Policy>, SimError> + Send + Sync>;

/// Registry mapping policy names to factories.
pub struct PolicyRegistry {
    factories: BTreeMap<String, PolicyFactory>,
}

impl PolicyRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        PolicyRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry pre-populated with the paper's four policies:
    /// `thermal-balancing`, `stop-and-go`, `energy-balancing`, `dvfs-only`.
    pub fn with_builtins() -> Self {
        let mut registry = PolicyRegistry::empty();
        registry.register("thermal-balancing", |spec: &PolicySpec| {
            Ok(Box::new(ThermalBalancingPolicy::new(
                DvfsScale::paper_default(),
                ThermalBalancingConfig::paper_default().with_threshold(spec.threshold_or_default()),
            )) as Box<dyn Policy>)
        });
        registry.register("stop-and-go", |spec: &PolicySpec| {
            Ok(Box::new(StopGoPolicy::new(spec.threshold_or_default())) as Box<dyn Policy>)
        });
        registry.register("energy-balancing", |_spec: &PolicySpec| {
            Ok(Box::new(EnergyBalancingPolicy::new()) as Box<dyn Policy>)
        });
        registry.register("dvfs-only", |_spec: &PolicySpec| {
            Ok(Box::new(DvfsOnlyPolicy::new()) as Box<dyn Policy>)
        });
        registry
    }

    /// The shared process-wide registry with the built-in policies.
    ///
    /// Custom policies cannot be added here; build your own registry with
    /// [`with_builtins`](Self::with_builtins) + [`register`](Self::register)
    /// and hand it to the runner or builder instead.
    pub fn global() -> Arc<PolicyRegistry> {
        static GLOBAL: OnceLock<Arc<PolicyRegistry>> = OnceLock::new();
        GLOBAL
            .get_or_init(|| Arc::new(PolicyRegistry::with_builtins()))
            .clone()
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&PolicySpec) -> Result<Box<dyn Policy>, SimError> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.factories.keys().cloned().collect()
    }

    /// Builds the policy a spec names.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownPolicy`] when the name is not registered,
    /// or whatever error the factory reports.
    pub fn instantiate(&self, spec: &PolicySpec) -> Result<Box<dyn Policy>, SimError> {
        match self.factories.get(&spec.name) {
            Some(factory) => factory(spec),
            None => Err(SimError::UnknownPolicy {
                name: spec.name.clone(),
                known: self.names(),
            }),
        }
    }
}

impl Default for PolicyRegistry {
    fn default() -> Self {
        PolicyRegistry::with_builtins()
    }
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_with_matching_names() {
        let registry = PolicyRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "dvfs-only".to_string(),
                "energy-balancing".to_string(),
                "stop-and-go".to_string(),
                "thermal-balancing".to_string(),
            ]
        );
        for name in registry.names() {
            let policy = registry
                .instantiate(&PolicySpec::named(&name).with_threshold(2.0))
                .expect("builtin instantiates");
            assert_eq!(policy.name(), name);
        }
    }

    #[test]
    fn unknown_names_error_and_list_known_policies() {
        let registry = PolicyRegistry::with_builtins();
        let err = match registry.instantiate(&PolicySpec::named("does-not-exist")) {
            Ok(_) => panic!("unknown policy must not instantiate"),
            Err(err) => err,
        };
        match &err {
            SimError::UnknownPolicy { name, known } => {
                assert_eq!(name, "does-not-exist");
                assert_eq!(known.len(), 4);
            }
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
        assert!(err.to_string().contains("thermal-balancing"));
    }

    #[test]
    fn third_party_registration() {
        let mut registry = PolicyRegistry::with_builtins();
        assert!(!registry.contains("custom"));
        registry.register("custom", |_| Ok(Box::new(DvfsOnlyPolicy::new())));
        assert!(registry.contains("custom"));
        assert!(registry.instantiate(&PolicySpec::named("custom")).is_ok());
        assert!(format!("{registry:?}").contains("custom"));
    }

    #[test]
    fn global_registry_is_shared() {
        let a = PolicyRegistry::global();
        let b = PolicyRegistry::global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.contains("thermal-balancing"));
    }
}
