//! Splitting a batch into shards and merging the partial reports back.
//!
//! A [`ShardPlan`] names one of `K` contiguous slices of an expanded batch.
//! Because [`ScenarioSpec::expand`](crate::scenario::ScenarioSpec::expand)
//! and the [`Runner`](crate::scenario::Runner) are deterministic and
//! order-stable, every worker that expands the same spec list sees the same
//! global run order; a plan is therefore just `(index, count)` — no
//! coordination, queue or scheduler is needed between workers.
//!
//! A worker executes its slice with
//! [`Runner::run_shard`](crate::scenario::Runner::run_shard) and emits a
//! [`PartialReport`]; [`PartialReport::merge`] validates that a set of
//! partials covers the batch exactly (same shard count, same total, no gaps,
//! no overlap) and reassembles a [`BatchReport`] that is byte-identical to a
//! single-process run.
//!
//! Shard indices are **1-based** — `--shard 1/4` … `--shard 4/4` — matching
//! the convention of CI matrix runners.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::scenario::runner::{BatchReport, RunReport};

/// One contiguous slice of an expanded batch: shard `index` of `count`
/// (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    index: usize,
    count: usize,
}

impl ShardPlan {
    /// Plan for shard `index` of `count` (1-based, so `1 <= index <= count`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when `count` is zero or `index` is out of
    /// range.
    pub fn new(index: usize, count: usize) -> Result<Self, SimError> {
        if count == 0 {
            return Err(SimError::Spec("shard count must be at least 1".into()));
        }
        if index == 0 || index > count {
            return Err(SimError::Spec(format!(
                "shard index {index} out of range (shards are 1-based: 1/{count} … {count}/{count})"
            )));
        }
        Ok(ShardPlan { index, count })
    }

    /// Parses the `i/k` notation of the `--shard` flag (e.g. `2/4`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on malformed text or an out-of-range index.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let malformed = || {
            SimError::Spec(format!(
                "malformed shard `{text}` (expected `i/k`, e.g. `2/4`)"
            ))
        };
        let (index, count) = text.split_once('/').ok_or_else(malformed)?;
        let index: usize = index.trim().parse().map_err(|_| malformed())?;
        let count: usize = count.trim().parse().map_err(|_| malformed())?;
        ShardPlan::new(index, count)
    }

    /// The 1-based shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The total number of shards.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The global index range this shard covers in a batch of `total` runs.
    ///
    /// Runs are distributed as evenly as possible: the first `total % count`
    /// shards receive one extra run. The ranges of all shards partition
    /// `0..total` contiguously and in index order.
    pub fn range(&self, total: usize) -> Range<usize> {
        let base = total / self.count;
        let extra = total % self.count;
        let i = self.index - 1;
        let start = i * base + i.min(extra);
        let len = base + usize::from(i < extra);
        start..(start + len)
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The reports of one shard, with enough positional metadata to validate and
/// merge a full set of partials back into a [`BatchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartialReport {
    /// 1-based index of the shard that produced these reports.
    pub shard_index: usize,
    /// Total number of shards the batch was split into.
    pub shard_count: usize,
    /// Global index (in expansion order) of the first report.
    pub start: usize,
    /// Total number of runs in the full expanded batch.
    pub total: usize,
    /// Hex digest identifying the expanded batch this shard belongs to
    /// ([`ScenarioHash::of_batch`](crate::scenario::ScenarioHash::of_batch)).
    /// Partials with disagreeing digests were produced from different spec
    /// lists (other scenario files, another duration, …) and refuse to merge.
    pub batch: String,
    /// The shard's reports, in expansion order.
    pub reports: Vec<RunReport>,
}

impl PartialReport {
    /// The shard plan this partial was produced under.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the stored indices are inconsistent
    /// (e.g. a hand-edited file).
    pub fn plan(&self) -> Result<ShardPlan, SimError> {
        ShardPlan::new(self.shard_index, self.shard_count)
    }

    /// Pretty-printed JSON of the partial (what `--shard` emits).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// Parses a partial back from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on malformed JSON.
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))
    }

    /// Merges a complete set of partials into the batch report a
    /// single-process run would have produced.
    ///
    /// The partials may arrive in any order. Every shard of the split must be
    /// present exactly once, all must agree on the shard count and batch
    /// total, and their ranges must tile `0..total` without gaps or overlap —
    /// anything else is an error, never a silently truncated batch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] describing the first inconsistency.
    pub fn merge(mut partials: Vec<PartialReport>) -> Result<BatchReport, SimError> {
        let Some(first) = partials.first() else {
            return Err(SimError::Spec("cannot merge zero partial reports".into()));
        };
        let (count, total) = (first.shard_count, first.total);
        let batch = first.batch.clone();
        for partial in &partials {
            partial.plan()?;
            if partial.shard_count != count {
                return Err(SimError::Spec(format!(
                    "partials disagree on the shard count ({count} vs {})",
                    partial.shard_count
                )));
            }
            if partial.total != total {
                return Err(SimError::Spec(format!(
                    "partials disagree on the batch total ({total} vs {})",
                    partial.total
                )));
            }
            if partial.batch != batch {
                return Err(SimError::Spec(format!(
                    "shard {}/{count} was produced from a different batch \
                     (digest {} vs {batch}); all partials must come from the \
                     same spec list, scenario files and durations",
                    partial.shard_index, partial.batch
                )));
            }
        }
        if partials.len() != count {
            return Err(SimError::Spec(format!(
                "expected {count} partial reports, got {}",
                partials.len()
            )));
        }
        partials.sort_by_key(|p| p.shard_index);
        let mut reports = Vec::with_capacity(total);
        for partial in partials {
            if partial.start != reports.len() {
                return Err(SimError::Spec(format!(
                    "shard {}/{count} starts at run {} but the merged batch has {} runs so far \
                     (missing, duplicated or overlapping shard)",
                    partial.shard_index,
                    partial.start,
                    reports.len()
                )));
            }
            reports.extend(partial.reports);
        }
        if reports.len() != total {
            return Err(SimError::Spec(format!(
                "merged batch has {} runs, expected {total}",
                reports.len()
            )));
        }
        Ok(BatchReport { reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_batch_contiguously() {
        for total in [0usize, 1, 7, 8, 23] {
            for count in 1..=6usize {
                let mut cursor = 0;
                for index in 1..=count {
                    let range = ShardPlan::new(index, count).unwrap().range(total);
                    assert_eq!(range.start, cursor, "total={total} count={count}");
                    cursor = range.end;
                    // Balanced: no shard is more than one run larger.
                    assert!(range.len() >= total / count);
                    assert!(range.len() <= total / count + 1);
                }
                assert_eq!(cursor, total);
            }
        }
    }

    #[test]
    fn parse_accepts_i_slash_k_and_rejects_garbage() {
        let plan = ShardPlan::parse("2/4").unwrap();
        assert_eq!((plan.index(), plan.count()), (2, 4));
        assert_eq!(plan.to_string(), "2/4");
        assert_eq!(ShardPlan::parse(" 1 / 1 ").unwrap().count(), 1);
        for bad in ["", "2", "0/4", "5/4", "a/b", "1/0", "-1/2", "1/4/2"] {
            assert!(ShardPlan::parse(bad).is_err(), "`{bad}` must not parse");
        }
    }

    fn partial(index: usize, count: usize, start: usize, total: usize, n: usize) -> PartialReport {
        use crate::scenario::runner::RunOutcome;
        use crate::scenario::spec::AnalysisKind;
        PartialReport {
            shard_index: index,
            shard_count: count,
            start,
            total,
            batch: "same-batch".to_string(),
            reports: (0..n)
                .map(|i| RunReport {
                    scenario: format!("run-{}", start + i),
                    group: "g".into(),
                    policy: None,
                    workload: None,
                    package: None,
                    threshold: None,
                    queue_capacity: None,
                    outcome: RunOutcome::Table(AnalysisKind::Table2Mapping.compute()),
                })
                .collect(),
        }
    }

    #[test]
    fn merge_reassembles_out_of_order_partials() {
        let merged = PartialReport::merge(vec![
            partial(3, 3, 4, 5, 1),
            partial(1, 3, 0, 5, 2),
            partial(2, 3, 2, 5, 2),
        ])
        .expect("complete set merges");
        assert_eq!(merged.len(), 5);
        let names: Vec<&str> = merged.reports.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, ["run-0", "run-1", "run-2", "run-3", "run-4"]);
    }

    #[test]
    fn merge_rejects_incomplete_or_inconsistent_sets() {
        assert!(PartialReport::merge(vec![]).is_err());
        // A missing shard.
        assert!(PartialReport::merge(vec![partial(1, 2, 0, 4, 2)]).is_err());
        // Duplicated shard index.
        assert!(
            PartialReport::merge(vec![partial(1, 2, 0, 4, 2), partial(1, 2, 0, 4, 2)]).is_err()
        );
        // Disagreeing totals.
        assert!(
            PartialReport::merge(vec![partial(1, 2, 0, 4, 2), partial(2, 2, 2, 5, 2)]).is_err()
        );
        // Disagreeing shard counts.
        assert!(
            PartialReport::merge(vec![partial(1, 2, 0, 4, 2), partial(2, 3, 2, 4, 2)]).is_err()
        );
        // A gap: shard 2 claims to start past shard 1's end.
        assert!(
            PartialReport::merge(vec![partial(1, 2, 0, 5, 2), partial(2, 2, 3, 5, 2)]).is_err()
        );
        // Short of the declared total.
        assert!(
            PartialReport::merge(vec![partial(1, 2, 0, 5, 2), partial(2, 2, 2, 5, 2)]).is_err()
        );
        // Partials from different batches (e.g. other durations or files).
        let mut foreign = partial(2, 2, 2, 4, 2);
        foreign.batch = "another-batch".to_string();
        let err = PartialReport::merge(vec![partial(1, 2, 0, 4, 2), foreign]).unwrap_err();
        assert!(err.to_string().contains("different batch"), "{err}");
    }

    #[test]
    fn partial_reports_round_trip_through_json() {
        let original = partial(2, 3, 2, 5, 2);
        let back = PartialReport::from_json_str(&original.to_json()).expect("JSON parses");
        assert_eq!(back, original);
        assert!(PartialReport::from_json_str("{").is_err());
    }
}
