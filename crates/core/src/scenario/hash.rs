//! Content addressing for concrete scenario specs.
//!
//! A [`ScenarioHash`] is a stable SHA-256 digest of the *semantic* content of
//! a concrete (post-expansion) [`ScenarioSpec`]: the platform, package,
//! workload, policy, schedule and analysis sections — everything that
//! influences what a run computes. Two specs that describe the same run hash
//! identically even when they were written differently:
//!
//! * **Field order does not matter.** The digest is taken over a canonical
//!   JSON rendering with recursively sorted map keys, so reordering TOML
//!   tables or keys changes nothing.
//! * **Labels do not matter.** The `name` and `description` fields are
//!   excluded; renaming a scenario never invalidates its cached reports.
//! * **Absent and defaulted sections are distinct.** Hashing happens on the
//!   spec as written (`[schedule] warmup = 8.0` hashes differently from an
//!   absent `[schedule]`, even though both resolve to the same run).
//! * **Changing a default invalidates every cache.** A fingerprint of the
//!   fully resolved default configuration (package, policy, threshold,
//!   schedule, platform, workload) is folded into every digest, so a spec
//!   that *relies* on a default cannot keep its hash while the default — and
//!   with it the run's semantics — changes underneath it. Editing any
//!   default misses every existing cache entry cleanly.
//!
//! The digest is domain-separated with a format-version prefix
//! ([`HASH_DOMAIN`]); bumping the version invalidates every existing cache
//! entry at once, which is the intended behaviour when the spec schema
//! changes incompatibly.
//!
//! ```
//! use tbp_core::scenario::{ScenarioHash, ScenarioSpec};
//!
//! let a = ScenarioSpec::from_toml_str(
//!     "name = \"a\"\n[policy]\nname = \"stop-and-go\"\nthreshold = 2.0\n",
//! )
//! .unwrap();
//! let b = ScenarioSpec::from_toml_str(
//!     "name = \"b\"\n[policy]\nthreshold = 2.0\nname = \"stop-and-go\"\n",
//! )
//! .unwrap();
//! // Different names, different field order — same semantic content.
//! assert_eq!(ScenarioHash::of(&a).unwrap(), ScenarioHash::of(&b).unwrap());
//! ```

use std::fmt;

use serde::{Serialize, Value};

use crate::error::SimError;
use crate::scenario::spec::{
    PlatformSpec, ScenarioSpec, WorkloadDecl, DEFAULT_DVFS, DEFAULT_MIGRATION, DEFAULT_SOLVER,
};

/// Format-version prefix mixed into every digest. Bump the version when the
/// spec schema (or the canonicalisation) changes incompatibly: every cache
/// keyed by the old digests then misses cleanly instead of replaying stale
/// reports.
///
/// History: `v2` — the workload subsystem landed (new `WorkloadKind`s, knob
/// tables, sweep axes) and `SplitMix64::below` switched to unbiased
/// rejection sampling, which shifts every seeded task stream; reports cached
/// under `v1` describe runs the current code would not reproduce.
///
/// `v3` ([`HASH_DOMAIN_PHASED`]) — live reconfiguration landed: specs that
/// declare a `[[phases]]` table hash under the `v3` domain, which covers the
/// phase deltas. Specs *without* phases keep hashing under `v2` (their
/// canonical JSON is unchanged — absent fields are dropped), so existing
/// caches of static scenarios stay valid and only phased specs get new keys.
/// One caveat rides along: the same change made `Simulation::run_for`'s step
/// count epsilon-robust, which runs one *fewer* step for schedules whose
/// `duration / time_step` quotient lands a few ULPs above an integer (none
/// of the shipped scenarios do). A pre-fix cache entry for such a schedule
/// describes a run that was one step too long — the bug this fixed — so
/// drop the cache directory if exact step counts matter for those entries.
pub const HASH_DOMAIN: &str = "tbp-scenario-spec-v2";

/// Format-version prefix of specs that declare live-reconfiguration phases.
/// See [`HASH_DOMAIN`] for the history.
pub const HASH_DOMAIN_PHASED: &str = "tbp-scenario-spec-v3";

/// Top-level spec fields that do not change what a run computes: labels,
/// and the `[trace]` table (tracing observes a run without changing it).
const NON_SEMANTIC_FIELDS: [&str; 3] = ["name", "description", "trace"];

/// A stable content hash of a concrete [`ScenarioSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ScenarioHash([u8; 32]);

impl ScenarioHash {
    /// Hashes the semantic content of a concrete spec.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the spec still carries a sweep: a
    /// sweep-carrying spec is a *family* of runs, not one run, and caching it
    /// under a single key would conflate all its grid points. Call
    /// [`ScenarioSpec::expand`] first.
    pub fn of(spec: &ScenarioSpec) -> Result<Self, SimError> {
        if spec.sweep.is_some() {
            return Err(SimError::Spec(format!(
                "scenario `{}` still carries a sweep and has no content hash; \
                 call expand() and hash the concrete runs",
                spec.name
            )));
        }
        let domain = if spec.has_phases() {
            HASH_DOMAIN_PHASED
        } else {
            HASH_DOMAIN
        };
        let mut sha = Sha256::new();
        sha.update(domain.as_bytes());
        sha.update(&[0]);
        sha.update(defaults_fingerprint().as_bytes());
        sha.update(&[0]);
        sha.update(canonical_json(spec).as_bytes());
        Ok(ScenarioHash(sha.finalize()))
    }

    /// Digest identifying one expanded batch: the ordered `(group, name,
    /// content hash)` triples of its runs. Shard workers stamp it into their
    /// partial reports so partials produced from *different* batches (other
    /// scenario files, another `TBP_DURATION`, …) refuse to merge instead of
    /// silently posing as the current configuration's results.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when a case still carries a sweep.
    pub fn of_batch<'a, I>(cases: I) -> Result<Self, SimError>
    where
        I: IntoIterator<Item = (&'a str, &'a ScenarioSpec)>,
    {
        let mut sha = Sha256::new();
        sha.update(b"tbp-scenario-batch-v1");
        for (group, case) in cases {
            sha.update(&[0]);
            sha.update(group.as_bytes());
            sha.update(&[0]);
            sha.update(case.name.as_bytes());
            sha.update(&[0]);
            sha.update(ScenarioHash::of(case)?.as_bytes());
        }
        Ok(ScenarioHash(sha.finalize()))
    }

    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// The digest as 64 lowercase hex characters (the cache file stem).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for byte in &self.0 {
            out.push_str(&format!("{byte:02x}"));
        }
        out
    }

    /// Parses a digest back from its 64-character hex form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when `text` is not exactly 64 hex digits.
    pub fn from_hex(text: &str) -> Result<Self, SimError> {
        let bytes = text.as_bytes();
        if bytes.len() != 64 {
            return Err(SimError::Spec(format!(
                "scenario hash must be 64 hex digits, got {} characters",
                bytes.len()
            )));
        }
        let digit = |c: u8| -> Result<u8, SimError> {
            match c {
                b'0'..=b'9' => Ok(c - b'0'),
                b'a'..=b'f' => Ok(c - b'a' + 10),
                b'A'..=b'F' => Ok(c - b'A' + 10),
                _ => Err(SimError::Spec(format!(
                    "invalid hex digit `{}` in scenario hash",
                    c as char
                ))),
            }
        };
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            out[i] = (digit(pair[0])? << 4) | digit(pair[1])?;
        }
        Ok(ScenarioHash(out))
    }
}

impl fmt::Display for ScenarioHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// A deterministic rendering of the fully resolved default configuration —
/// everything a spec inherits when it leaves a section out. Folded into
/// every digest so that editing a default (threshold, schedule, platform
/// parameters, the SDR benchmark setup, …) changes every hash and existing
/// caches miss cleanly rather than replaying reports computed under the old
/// semantics.
fn defaults_fingerprint() -> &'static str {
    static FINGERPRINT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    FINGERPRINT.get_or_init(|| {
        let defaults = ScenarioSpec::new(String::new());
        format!(
            "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}",
            defaults.package_kind(),
            defaults.policy_spec().name,
            defaults.threshold(),
            defaults.schedule(),
            PlatformSpec::default().to_config(),
            DEFAULT_SOLVER,
            DEFAULT_MIGRATION,
            DEFAULT_DVFS,
            WorkloadDecl::default().to_workload(),
            // Per-kind generator defaults: a spec selecting a workload kind
            // without a knob table relies on these resolved values.
            tbp_streaming::workloads::WorkloadParams::default(),
            tbp_streaming::workloads::VideoKnobs::default().resolve(),
            tbp_streaming::workloads::DagKnobs::default().resolve(),
        )
    })
}

/// The canonical JSON preimage of a spec's semantic content: top-level `name`
/// and `description` removed, map keys recursively sorted, absent (`None`)
/// values dropped, compact separators. This is what [`ScenarioHash::of`]
/// digests; it is exposed for debugging cache keys.
pub fn canonical_json(spec: &ScenarioSpec) -> String {
    let mut value = spec.to_value();
    if let Value::Map(entries) = &mut value {
        entries.retain(|(key, _)| !NON_SEMANTIC_FIELDS.contains(&key.as_str()));
    }
    let mut out = String::new();
    write_canonical(&mut out, &value);
    out
}

fn write_canonical(out: &mut String, value: &Value) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            // `{:?}` prints the shortest representation that round-trips, so
            // equal floats always canonicalise to equal text.
            if f.is_nan() {
                out.push_str("NaN");
            } else if f.is_infinite() {
                out.push_str(if *f > 0.0 { "Infinity" } else { "-Infinity" });
            } else {
                out.push_str(&format!("{f:?}"));
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            let mut sorted: Vec<&(String, Value)> = entries
                .iter()
                .filter(|(_, v)| !matches!(v, Value::Unit))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            out.push('{');
            for (i, (key, item)) in sorted.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_canonical(out, item);
            }
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Plain SHA-256 (FIPS 180-4). The workspace builds without a crates
/// registry, so the digest is implemented here rather than pulled in.
struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        while !data.is_empty() {
            let take = (64 - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        self.update(&bit_length.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, value) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *slot = slot.wrapping_add(value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::SweepSpec;

    fn sha256_hex(data: &[u8]) -> String {
        let mut sha = Sha256::new();
        sha.update(data);
        let digest = sha.finalize();
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn hash_domain_is_still_v2() {
        // The PR 4 hot-loop rework (compiled thermal kernel, reusable step
        // workspaces, zero-allocation stepping) is required to be invisible
        // in simulation output: reports stay byte-identical, so every cache
        // entry hashed under the v2 domain remains valid and the domain must
        // NOT be bumped. A failure here means someone changed the domain —
        // which invalidates all existing caches and must be deliberate.
        assert_eq!(HASH_DOMAIN, "tbp-scenario-spec-v2");
        assert_eq!(HASH_DOMAIN_PHASED, "tbp-scenario-spec-v3");
    }

    #[test]
    fn domain_v3_only_changes_hashes_of_specs_that_declare_phases() {
        use crate::scenario::spec::PhaseSpec;

        // Golden digests captured on the pre-phases tree: the v3 domain is
        // applied only to specs declaring `[[phases]]`, so every static
        // spec's hash — and with it every existing cache entry — must be
        // byte-for-byte what it was before live reconfiguration landed.
        let plain = ScenarioSpec::new("x");
        assert_eq!(
            ScenarioHash::of(&plain).unwrap().to_hex(),
            "60d4aae6e10604196a63b60328b0df34452c4854807eaf52d9d030cfb976f78e"
        );
        let with_policy = ScenarioSpec::new("y").with_policy("stop-and-go", 2.0);
        assert_eq!(
            ScenarioHash::of(&with_policy).unwrap().to_hex(),
            "7942bb21527cbece9c96b48686e675148b6f528b25f280c408cb832e59099a45"
        );

        // Declaring phases switches the spec to the v3 domain: even an empty
        // phase table hashes differently from the phase-free spec, and the
        // phase contents are covered by the digest.
        let empty_phases = ScenarioSpec::new("x").with_phases(Vec::new());
        assert_ne!(
            ScenarioHash::of(&plain).unwrap(),
            ScenarioHash::of(&empty_phases).unwrap()
        );
        let phased = ScenarioSpec::new("x").with_phases([PhaseSpec::at(5.0).with_threshold(2.0)]);
        let retimed = ScenarioSpec::new("x").with_phases([PhaseSpec::at(6.0).with_threshold(2.0)]);
        let retuned = ScenarioSpec::new("x").with_phases([PhaseSpec::at(5.0).with_threshold(1.0)]);
        let swapped =
            ScenarioSpec::new("x").with_phases([PhaseSpec::at(5.0).with_policy("stop-and-go")]);
        let all = [
            ScenarioHash::of(&phased).unwrap(),
            ScenarioHash::of(&retimed).unwrap(),
            ScenarioHash::of(&retuned).unwrap(),
            ScenarioHash::of(&swapped).unwrap(),
            ScenarioHash::of(&empty_phases).unwrap(),
        ];
        let mut uniq: Vec<String> = all.iter().map(|h| h.to_hex()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), all.len(), "every phase knob must hash");
    }

    #[test]
    fn sha256_matches_fips_test_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Exercise the multi-block and odd-boundary paths.
        assert_eq!(
            sha256_hex(&[b'a'; 1000]),
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
        let mut incremental = Sha256::new();
        for chunk in [b'a'; 1000].chunks(7) {
            incremental.update(chunk);
        }
        let digest: String = incremental
            .finalize()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_eq!(
            digest,
            "41edece42d63e8d9bf515a9ba6932e1c20cbc9f5a5d134645adb5db1b9737ea3"
        );
    }

    #[test]
    fn hex_round_trips() {
        let spec = ScenarioSpec::new("hex");
        let hash = ScenarioHash::of(&spec).unwrap();
        let hex = hash.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(ScenarioHash::from_hex(&hex).unwrap(), hash);
        assert_eq!(ScenarioHash::from_hex(&hex.to_uppercase()).unwrap(), hash);
        assert_eq!(format!("{hash}"), hex);
        assert!(ScenarioHash::from_hex("abc").is_err());
        assert!(ScenarioHash::from_hex(&"z".repeat(64)).is_err());
    }

    #[test]
    fn names_and_descriptions_do_not_hash() {
        let a = ScenarioSpec::new("a").with_policy("stop-and-go", 2.0);
        let b = ScenarioSpec::new("b")
            .with_description("same semantics, different label")
            .with_policy("stop-and-go", 2.0);
        assert_eq!(ScenarioHash::of(&a).unwrap(), ScenarioHash::of(&b).unwrap());
        assert_eq!(canonical_json(&a), canonical_json(&b));
    }

    #[test]
    fn trace_table_does_not_hash() {
        // The `[trace]` table configures observation, not simulation: adding
        // or editing it must keep cache keys (and cached results) valid.
        let plain = ScenarioSpec::new("t").with_policy("stop-and-go", 2.0);
        let mut traced = plain.clone();
        traced.trace = Some(crate::scenario::spec::TraceSpec {
            interval_ms: Some(50.0),
            tracks: Some(vec!["temperatures".into(), "reconfigs".into()]),
        });
        assert_eq!(
            ScenarioHash::of(&plain).unwrap(),
            ScenarioHash::of(&traced).unwrap()
        );
        assert_eq!(canonical_json(&plain), canonical_json(&traced));
    }

    #[test]
    fn every_workload_knob_changes_the_hash() {
        use crate::scenario::spec::{WorkloadDecl, WorkloadKind};

        let base = ScenarioSpec::new("wl").with_workload(WorkloadDecl::of_kind(WorkloadKind::Dag));
        let base_hash = ScenarioHash::of(&base).unwrap();
        let mutate = |f: &dyn Fn(&mut WorkloadDecl)| {
            let mut decl = WorkloadDecl::of_kind(WorkloadKind::Dag);
            f(&mut decl);
            ScenarioHash::of(&ScenarioSpec::new("wl").with_workload(decl)).unwrap()
        };
        let variants = [
            mutate(&|d| d.kind = Some(WorkloadKind::VideoAnalytics)),
            mutate(&|d| d.seed = Some(1)),
            mutate(&|d| d.queue_capacity = Some(9)),
            mutate(&|d| d.prefill = Some(2)),
            mutate(&|d| d.generator = Some("custom".into())),
            mutate(&|d| {
                d.dag = Some(tbp_streaming::workloads::DagKnobs {
                    depth: Some(5),
                    ..Default::default()
                })
            }),
            mutate(&|d| {
                d.dag = Some(tbp_streaming::workloads::DagKnobs {
                    skew: Some(0.9),
                    ..Default::default()
                })
            }),
            mutate(&|d| {
                d.video = Some(tbp_streaming::workloads::VideoKnobs {
                    streams: Some(3),
                    ..Default::default()
                })
            }),
        ];
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(
                base_hash, *variant,
                "workload knob change #{i} must change the content hash"
            );
        }
        // And distinct knob values hash distinctly from one another.
        let mut all: Vec<String> = variants.iter().map(|h| h.to_hex()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), variants.len());
    }

    #[test]
    fn sweep_specs_have_no_content_hash() {
        let spec =
            ScenarioSpec::new("swept").with_sweep(SweepSpec::default().with_thresholds([1.0]));
        assert!(matches!(ScenarioHash::of(&spec), Err(SimError::Spec(_))));
    }

    #[test]
    fn canonical_json_sorts_keys_and_drops_absent_fields() {
        let spec = ScenarioSpec::new("canon").with_policy("dvfs-only", 1.5);
        let json = canonical_json(&spec);
        assert!(!json.contains("name\":\"canon"), "{json}");
        assert!(!json.contains("null"), "{json}");
        assert_eq!(
            json,
            "{\"policy\":{\"name\":\"dvfs-only\",\"threshold\":1.5}}"
        );
    }
}
