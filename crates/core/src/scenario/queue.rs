//! A lease-friendly queue view over the deterministic sweep expansion.
//!
//! The shard layer ([`ShardPlan`](super::ShardPlan)) splits a batch into
//! contiguous ranges agreed on up front; that is the right shape for K
//! uncoordinated processes but not for a coordinator that hands work out one
//! scenario at a time and reclaims it when a worker dies. This module gives
//! that coordinator its two halves:
//!
//! - [`expand_work`] — the batch's expansion as an indexed list of
//!   [`WorkItem`]s. The index is the scenario's position in expansion order,
//!   which is also its position in the final [`BatchReport`]; any process
//!   that loads the same specs computes the same list.
//! - [`BatchAssembler`] — an order-preserving collector of out-of-order,
//!   possibly duplicated per-index [`RunReport`]s that produces a
//!   [`BatchReport`] byte-identical to a single-process
//!   [`Runner::run`](super::Runner::run) once every slot is filled.
//!
//! Both sides of a distributed run agree on the work list by comparing
//! [`batch_digest`] (carried in the handshake), never by shipping specs.

use super::runner::{batch_digest, expand_batch, BatchReport, RunReport};
use super::shard::PartialReport;
use super::spec::ScenarioSpec;
use crate::error::SimError;

/// One concrete (already expanded) scenario, tagged with its stable position
/// in the batch's expansion order.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkItem {
    /// Position in expansion order == position in the merged report.
    pub index: usize,
    /// Base name of the spec this case expanded from.
    pub group: String,
    /// The concrete scenario to run (sweep axes already substituted).
    pub case: ScenarioSpec,
}

/// Expands every spec into an indexed work list.
///
/// Deterministic: the same specs in the same order produce the same items in
/// the same order, on every host. Index `i` here is index `i` of
/// [`Runner::run`](super::Runner::run)'s report vector.
pub fn expand_work(specs: &[ScenarioSpec]) -> Vec<WorkItem> {
    expand_batch(specs)
        .into_iter()
        .enumerate()
        .map(|(index, (group, case))| WorkItem { index, group, case })
        .collect()
}

/// Collects per-index [`RunReport`]s — out of order, possibly more than once —
/// into a [`BatchReport`] identical to a single-process run.
///
/// Duplicates are accepted idempotently: scenario execution is deterministic
/// and content-addressed, so a report delivered twice (a worker that lost its
/// lease but finished anyway) is byte-identical to the copy already held and
/// is simply dropped.
#[derive(Debug, Clone)]
pub struct BatchAssembler {
    batch: String,
    slots: Vec<Option<RunReport>>,
    filled: usize,
}

impl BatchAssembler {
    /// Builds an empty assembler for `specs`, recording the batch digest and
    /// one slot per expanded scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when a spec cannot be hashed.
    pub fn new(specs: &[ScenarioSpec]) -> Result<Self, SimError> {
        let digest = batch_digest(specs)?;
        let total = expand_batch(specs).len();
        Ok(BatchAssembler {
            batch: digest.to_hex(),
            slots: vec![None; total],
            filled: 0,
        })
    }

    /// The batch content digest (hex), as exchanged in coordination
    /// handshakes.
    pub fn digest(&self) -> &str {
        &self.batch
    }

    /// Number of expanded scenarios in the batch.
    pub fn total(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots already filled.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// Whether the slot at `index` already holds a report (out-of-range
    /// indices are simply "not filled").
    pub fn is_filled(&self, index: usize) -> bool {
        self.slots.get(index).is_some_and(|slot| slot.is_some())
    }

    /// Indices still missing a report, in expansion order.
    pub fn missing(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.is_none().then_some(i))
            .collect()
    }

    /// True once every slot holds a report.
    pub fn is_complete(&self) -> bool {
        self.filled == self.slots.len()
    }

    /// Stores `report` at `index`. Returns `Ok(true)` when the slot was
    /// empty, `Ok(false)` for an idempotently dropped duplicate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when `index` is outside the batch.
    pub fn accept(&mut self, index: usize, report: RunReport) -> Result<bool, SimError> {
        let total = self.slots.len();
        let slot = self.slots.get_mut(index).ok_or_else(|| {
            SimError::Spec(format!(
                "work index {index} outside batch of {total} scenarios"
            ))
        })?;
        if slot.is_some() {
            return Ok(false);
        }
        *slot = Some(report);
        self.filled += 1;
        Ok(true)
    }

    /// Ingests every report of a shard's [`PartialReport`] — the bridge from
    /// the uncoordinated shard world: a coordinator can seed its slots from
    /// partials computed offline and only lease out what is still missing.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the partial's batch digest or total
    /// disagree with this assembler.
    pub fn accept_partial(&mut self, partial: &PartialReport) -> Result<usize, SimError> {
        if partial.batch != self.batch {
            return Err(SimError::Spec(format!(
                "partial report is from a different batch (digest {} != {})",
                partial.batch, self.batch
            )));
        }
        if partial.total != self.slots.len() {
            return Err(SimError::Spec(format!(
                "partial report expects a batch of {} scenarios, assembler holds {}",
                partial.total,
                self.slots.len()
            )));
        }
        let mut fresh = 0;
        for (offset, report) in partial.reports.iter().enumerate() {
            if self.accept(partial.start + offset, report.clone())? {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Finishes assembly.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] listing the missing indices when the batch
    /// is incomplete.
    pub fn into_batch(self) -> Result<BatchReport, SimError> {
        if !self.is_complete() {
            let missing = self.missing();
            return Err(SimError::Spec(format!(
                "batch incomplete: {} of {} scenarios missing (indices {:?})",
                missing.len(),
                self.slots.len(),
                missing
            )));
        }
        let reports = self.slots.into_iter().map(|slot| slot.unwrap()).collect();
        Ok(BatchReport { reports })
    }
}

#[cfg(test)]
mod tests {
    use super::super::runner::Runner;
    use super::super::spec::SweepSpec;
    use super::*;

    fn grid() -> Vec<ScenarioSpec> {
        vec![ScenarioSpec::new("queue-grid")
            .with_schedule(0.2, 0.5)
            .with_sweep(
                SweepSpec::default()
                    .with_policies(["thermal-balancing", "energy-balancing"])
                    .with_thresholds([1.0, 3.0]),
            )]
    }

    #[test]
    fn expansion_matches_runner_report_order() {
        let specs = grid();
        let items = expand_work(&specs);
        let batch = Runner::sequential().run(&specs).unwrap();
        assert_eq!(items.len(), batch.len());
        for (item, report) in items.iter().zip(&batch.reports) {
            assert_eq!(item.case.name, report.scenario);
            assert_eq!(item.group, report.group);
        }
        assert_eq!(items[0].index, 0);
        assert_eq!(items.last().unwrap().index, items.len() - 1);
    }

    #[test]
    fn out_of_order_and_duplicate_accepts_reassemble_identically() {
        let specs = grid();
        let solo = Runner::sequential().run(&specs).unwrap();
        let runner = Runner::sequential();
        let mut asm = BatchAssembler::new(&specs).unwrap();
        assert_eq!(asm.total(), solo.len());
        assert_eq!(asm.digest(), batch_digest(&specs).unwrap().to_hex());

        let mut items = expand_work(&specs);
        items.reverse(); // deliver out of order
        for item in &items {
            let report = runner.run_one(&item.group, &item.case).unwrap();
            assert!(asm.accept(item.index, report.clone()).unwrap());
            // A worker that lost its lease delivers the same bytes again.
            assert!(!asm.accept(item.index, report).unwrap());
        }
        assert!(asm.is_complete());
        let merged = asm.into_batch().unwrap();
        assert_eq!(merged.to_json(), solo.to_json());
        assert_eq!(merged.to_csv(), solo.to_csv());
    }

    #[test]
    fn incomplete_batch_reports_missing_indices() {
        let specs = grid();
        let asm = BatchAssembler::new(&specs).unwrap();
        assert!(!asm.is_complete());
        assert_eq!(asm.missing(), (0..asm.total()).collect::<Vec<_>>());
        let err = asm.into_batch().unwrap_err();
        assert!(matches!(err, SimError::Spec(msg) if msg.contains("incomplete")));
    }

    #[test]
    fn accept_rejects_out_of_range_indices() {
        let specs = grid();
        let runner = Runner::sequential();
        let item = &expand_work(&specs)[0];
        let report = runner.run_one(&item.group, &item.case).unwrap();
        let mut asm = BatchAssembler::new(&specs).unwrap();
        let err = asm.accept(asm.total(), report).unwrap_err();
        assert!(matches!(err, SimError::Spec(msg) if msg.contains("outside batch")));
    }

    #[test]
    fn shard_partials_seed_the_assembler() {
        let specs = grid();
        let solo = Runner::sequential().run(&specs).unwrap();
        let runner = Runner::sequential();
        let partial = runner
            .run_shard(&specs, super::super::shard::ShardPlan::new(1, 2).unwrap())
            .unwrap();
        let mut asm = BatchAssembler::new(&specs).unwrap();
        let fresh = asm.accept_partial(&partial).unwrap();
        assert_eq!(fresh, partial.reports.len());
        // Re-ingesting the same partial is a no-op.
        assert_eq!(asm.accept_partial(&partial).unwrap(), 0);
        for item in expand_work(&specs) {
            if asm.missing().contains(&item.index) {
                let report = runner.run_one(&item.group, &item.case).unwrap();
                asm.accept(item.index, report).unwrap();
            }
        }
        assert_eq!(asm.into_batch().unwrap().to_json(), solo.to_json());

        // A partial from a different batch is refused.
        let other = vec![ScenarioSpec::new("other-batch").with_schedule(0.2, 0.5)];
        let mut asm = BatchAssembler::new(&other).unwrap();
        let err = asm.accept_partial(&partial).unwrap_err();
        assert!(matches!(err, SimError::Spec(msg) if msg.contains("different batch")));
    }
}
