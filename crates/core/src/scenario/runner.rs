//! Batch execution of scenarios.
//!
//! A [`Runner`] expands the sweep axes of a batch of [`ScenarioSpec`]s into
//! concrete runs, executes them — in parallel by default, one [`Simulation`]
//! per worker — and returns a [`BatchReport`] of structured [`RunReport`]s
//! with JSON and CSV emission. Report order follows expansion order
//! regardless of execution order, so a parallel batch is byte-identical to a
//! sequential one.
//!
//! Two orthogonal extensions make re-running sweeps cheap and batches
//! distributable:
//!
//! * **Caching** ([`Runner::with_cache`]) — before building a simulation the
//!   runner looks the run up in a [`RunCache`] under its
//!   [`ScenarioHash`]; hits are returned
//!   directly (re-labelled for the requesting spec) and misses are stored
//!   after execution. A warm re-run of a fully cached batch performs zero
//!   simulations. [`Runner::stats`] reports the hit/simulate counts.
//! * **Sharding** ([`Runner::run_shard`]) — executes one contiguous slice of
//!   the expanded batch and returns a
//!   [`PartialReport`]; merging a complete
//!   set of partials reproduces the single-process [`BatchReport`]
//!   byte-for-byte.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use tbp_arch::freq::{Frequency, OperatingPoint, Voltage};
use tbp_arch::power::{ComponentKind, CoreClass, PowerModel};
use tbp_arch::units::{Bytes, Celsius, Seconds};
use tbp_obs::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use tbp_obs::FileSink;
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};
use tbp_streaming::sdr::SdrBenchmark;
use tbp_streaming::workloads::WorkloadRegistry;
use tbp_thermal::package::PackageKind;

use crate::error::SimError;
use crate::metrics::SimulationSummary;
use crate::scenario::cache::RunCache;
use crate::scenario::hash::ScenarioHash;
use crate::scenario::registry::PolicyRegistry;
use crate::scenario::shard::{PartialReport, ShardPlan};
use crate::scenario::spec::{AnalysisKind, ScenarioSpec, TraceSpec};
use crate::sim::{step_count, LaneBatch, SimMetrics, Simulation};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Executes batches of scenarios and collects their reports.
#[derive(Clone)]
pub struct Runner {
    registry: Arc<PolicyRegistry>,
    workloads: Arc<WorkloadRegistry>,
    parallel: bool,
    cache: Option<Arc<dyn RunCache>>,
    trace_dir: Option<Arc<PathBuf>>,
    counters: Arc<RunnerCounters>,
    /// Lanes per [`LaneBatch`] when executing simulation misses batched
    /// (1 = the classic one-simulation-per-run path).
    lanes: usize,
    metrics: Option<RunnerMetrics>,
}

#[derive(Debug, Default)]
struct RunnerCounters {
    simulated: AtomicU64,
    analytic: AtomicU64,
    cache_hits: AtomicU64,
}

/// Cumulative execution counters of a [`Runner`] (shared by its clones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunnerStats {
    /// Simulations actually executed (cache misses of simulation runs).
    pub simulated: u64,
    /// Analytic tables actually computed (cache misses of table runs).
    pub analytic: u64,
    /// Runs answered from the cache without executing anything.
    pub cache_hits: u64,
}

impl RunnerStats {
    /// Total runs that were executed rather than answered from the cache.
    pub fn misses(&self) -> u64 {
        self.simulated + self.analytic
    }
}

/// Live-metric handles a [`Runner`] updates while executing a batch,
/// registered in a [`MetricsRegistry`] so a snapshot emitter or progress
/// reporter can observe the run from another thread. Purely additive:
/// attaching metrics changes no report, CSV byte, or cache entry.
#[derive(Clone, Debug)]
pub struct RunnerMetrics {
    /// Scenarios in the current batch (`runner.scenarios_total`), set when
    /// execution starts.
    pub scenarios_total: Gauge,
    /// Scenarios resolved so far — hits and executed runs alike
    /// (`runner.scenarios_completed`).
    pub scenarios_completed: Counter,
    /// Runs answered from the cache (`runner.cache_hits`).
    pub cache_hits: Counter,
    /// Runs executed rather than answered from the cache — simulated or
    /// analytic, mirroring [`RunnerStats::misses`] (`runner.cache_misses`).
    pub cache_misses: Counter,
    /// Simulations per [`LaneBatch`] chunk (`runner.lane_occupancy`).
    pub lane_occupancy: Histogram,
    /// Per-simulation hot-path instruments, attached to every simulation
    /// the runner builds.
    pub sim: SimMetrics,
}

impl RunnerMetrics {
    /// Registers (or re-resolves) the runner instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        RunnerMetrics {
            scenarios_total: registry.gauge("runner.scenarios_total"),
            scenarios_completed: registry.counter("runner.scenarios_completed"),
            cache_hits: registry.counter("runner.cache_hits"),
            cache_misses: registry.counter("runner.cache_misses"),
            lane_occupancy: registry
                .histogram("runner.lane_occupancy", &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0]),
            sim: SimMetrics::register(registry),
        }
    }
}

impl Runner {
    /// A parallel runner using the global (built-in) policy and workload
    /// registries.
    pub fn new() -> Self {
        Runner {
            registry: PolicyRegistry::global(),
            workloads: WorkloadRegistry::global(),
            parallel: true,
            cache: None,
            trace_dir: None,
            counters: Arc::default(),
            lanes: 1,
            metrics: None,
        }
    }

    /// A sequential runner (single-threaded; useful for debugging and for
    /// verifying parallel determinism).
    pub fn sequential() -> Self {
        Runner {
            parallel: false,
            ..Runner::new()
        }
    }

    /// Resolves policies through `registry` instead of the global one.
    pub fn with_registry(mut self, registry: PolicyRegistry) -> Self {
        self.registry = Arc::new(registry);
        self
    }

    /// Resolves policies through an already-shared registry.
    pub fn with_registry_arc(mut self, registry: Arc<PolicyRegistry>) -> Self {
        self.registry = registry;
        self
    }

    /// Resolves workload generator names (the `[workload] generator` field
    /// and the generated kinds) through `registry` instead of the global
    /// (built-ins only) workload registry — the hook that lets third-party
    /// workloads run from TOML scenarios.
    pub fn with_workload_registry(mut self, registry: WorkloadRegistry) -> Self {
        self.workloads = Arc::new(registry);
        self
    }

    /// Resolves workload names through an already-shared registry.
    pub fn with_workload_registry_arc(mut self, registry: Arc<WorkloadRegistry>) -> Self {
        self.workloads = registry;
        self
    }

    /// Enables or disables parallel execution.
    pub fn with_parallelism(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Memoizes run reports in `cache`, keyed by scenario content hash.
    pub fn with_cache(self, cache: impl RunCache + 'static) -> Self {
        self.with_cache_arc(Arc::new(cache))
    }

    /// Memoizes run reports in an already-shared cache.
    pub fn with_cache_arc(mut self, cache: Arc<dyn RunCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Writes one binary trace per *simulated* run into `dir` (created on
    /// first use), named after the concrete scenario with a `.tbptrace`
    /// extension. The spec's `[trace]` table picks the sampling interval and
    /// track groups (all tracks every 100 ms when absent).
    ///
    /// Cache hits skip simulation entirely and therefore emit no trace:
    /// combine with a cold cache (or none) when the traces matter.
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(Arc::new(dir.into()));
        self
    }

    /// Steps up to `lanes` simulation misses in lockstep through a shared
    /// [`LaneBatch`] instead of one simulation per run (values below 1 are
    /// clamped to 1, the classic path).
    ///
    /// Batching only groups runs that share a platform fingerprint
    /// (platform, package/solver, time step, step count); everything
    /// observable — reports, CSV, cache entries under the same
    /// [`ScenarioHash`] domain, `.tbptrace` files — is byte-identical to the
    /// per-scenario path, because each lane performs the exact same
    /// floating-point work (see [`LaneBatch`]). Runs whose platform cannot
    /// be batched fall back to individual stepping automatically.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Number of lanes configured via [`with_lanes`](Self::with_lanes).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Publishes live progress through `metrics` while batches execute:
    /// scenario totals/completions, cache hits/misses, lane occupancy, and
    /// the per-simulation step/migration/reconfiguration counters. Reports
    /// and cache entries stay byte-identical — the handles are written, not
    /// read.
    pub fn with_metrics(mut self, metrics: RunnerMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Cumulative execution counters: how many runs were simulated, computed
    /// analytically, or answered from the cache. Counters are shared with
    /// clones of this runner and accumulate across [`run`](Self::run) calls.
    pub fn stats(&self) -> RunnerStats {
        RunnerStats {
            simulated: self.counters.simulated.load(Ordering::Relaxed),
            analytic: self.counters.analytic.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Expands every spec and executes all resulting runs.
    ///
    /// # Errors
    ///
    /// Returns the first error in expansion order; runs that already
    /// completed are discarded.
    ///
    /// # Example
    ///
    /// ```
    /// use tbp_core::scenario::{Runner, ScenarioSpec, SweepSpec};
    ///
    /// # fn main() -> Result<(), tbp_core::SimError> {
    /// let spec = ScenarioSpec::new("demo")
    ///     .with_schedule(0.2, 0.5) // short schedule to keep the doctest fast
    ///     .with_sweep(SweepSpec::default().with_thresholds([1.0, 3.0]));
    /// let batch = Runner::new().run(&[spec])?;
    /// assert_eq!(batch.len(), 2);
    /// assert_eq!(batch.reports[0].scenario, "demo[t1]");
    /// assert!(batch.reports[0].summary().is_some());
    /// # Ok(())
    /// # }
    /// ```
    pub fn run(&self, specs: &[ScenarioSpec]) -> Result<BatchReport, SimError> {
        let cases = expand_batch(specs);
        let reports = self.execute(cases)?;
        Ok(BatchReport { reports })
    }

    /// Runs a single spec (expanding its sweep) — convenience wrapper.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_spec(&self, spec: &ScenarioSpec) -> Result<BatchReport, SimError> {
        self.run(std::slice::from_ref(spec))
    }

    /// Executes one shard of the expanded batch — the contiguous slice of
    /// runs `plan` assigns to this worker — and returns a [`PartialReport`]
    /// for [`PartialReport::merge`] to reassemble.
    ///
    /// Every worker must be given the same `specs` in the same order;
    /// expansion is deterministic, so the workers agree on the global run
    /// order without coordinating.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_shard(
        &self,
        specs: &[ScenarioSpec],
        plan: ShardPlan,
    ) -> Result<PartialReport, SimError> {
        let mut cases = expand_batch(specs);
        let total = cases.len();
        let batch = ScenarioHash::of_batch(cases.iter().map(|(g, c)| (g.as_str(), c)))?;
        let range = plan.range(total);
        let slice: Vec<(String, ScenarioSpec)> = cases.drain(range.clone()).collect();
        let reports = self.execute(slice)?;
        Ok(PartialReport {
            shard_index: plan.index(),
            shard_count: plan.count(),
            start: range.start,
            total,
            batch: batch.to_hex(),
            reports,
        })
    }

    /// Expands every spec and executes the resulting runs through
    /// [`LaneBatch`]es of up to `lanes` simulations grouped by platform
    /// fingerprint — a convenience for
    /// `runner.clone().with_lanes(lanes).run(specs)`.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_batched(
        &self,
        specs: &[ScenarioSpec],
        lanes: usize,
    ) -> Result<BatchReport, SimError> {
        self.clone().with_lanes(lanes).run(specs)
    }

    /// Executes concrete cases (in parallel when enabled), preserving order.
    fn execute(&self, cases: Vec<(String, ScenarioSpec)>) -> Result<Vec<RunReport>, SimError> {
        if let Some(metrics) = &self.metrics {
            metrics.scenarios_total.set(cases.len() as f64);
        }
        if self.lanes > 1 {
            return self.execute_batched(cases);
        }
        let results: Vec<Result<RunReport, SimError>> = if self.parallel {
            cases
                .into_par_iter()
                .map(|(group, case)| self.run_case(group, &case))
                .collect()
        } else {
            cases
                .iter()
                .map(|(group, case)| self.run_case(group.clone(), case))
                .collect()
        };
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            reports.push(result?);
        }
        Ok(reports)
    }

    /// Executes one concrete (already expanded) scenario of the named group —
    /// the single-case entry point used by lease-granting distributed
    /// coordinators (see [`queue`](super::queue)), identical in every way
    /// (cache lookups, metrics, label re-stamping) to how [`run`](Self::run)
    /// executes that same case.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_one(&self, group: &str, case: &ScenarioSpec) -> Result<RunReport, SimError> {
        self.run_case(group.to_string(), case)
    }

    /// Executes one concrete (already expanded) scenario of the named group,
    /// consulting the cache first when one is configured.
    fn run_case(&self, group: String, case: &ScenarioSpec) -> Result<RunReport, SimError> {
        let key = match &self.cache {
            Some(cache) => {
                let key = ScenarioHash::of(case)?;
                if let Some(mut report) = cache.load(&key) {
                    // The hash covers semantic content only; re-stamp the
                    // labels so a renamed scenario reuses its cached runs.
                    report.scenario = case.name.clone();
                    report.group = group;
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(metrics) = &self.metrics {
                        metrics.cache_hits.inc();
                        metrics.scenarios_completed.inc();
                    }
                    return Ok(report);
                }
                Some((cache, key))
            }
            None => None,
        };
        let report = if let Some(kind) = case.analysis {
            self.counters.analytic.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &self.metrics {
                metrics.cache_misses.inc();
                metrics.scenarios_completed.inc();
            }
            RunReport {
                scenario: case.name.clone(),
                group,
                policy: None,
                workload: None,
                package: None,
                threshold: None,
                queue_capacity: None,
                outcome: RunOutcome::Table(kind.compute()),
            }
        } else {
            // Phases firing at t = 0 fold into the static sections first
            // (applying a delta before the first step is equivalent to
            // starting with it), so a phased spec whose only delta fires at
            // t = 0 runs — and reports — exactly like its static equivalent.
            let folded = case.fold_initial_phases()?;
            let mut sim: Simulation =
                folded.build_with_registries(&self.registry, self.workloads.clone())?;
            sim.set_policy_registry(self.registry.clone());
            if let Some(metrics) = &self.metrics {
                sim.attach_metrics(metrics.sim.clone());
            }
            if let Some(dir) = &self.trace_dir {
                attach_file_sink(&mut sim, dir, &case.name, case.trace.as_ref())?;
            }
            run_phased(&mut sim, &folded)?;
            sim.detach_trace_sink()?;
            self.counters.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &self.metrics {
                metrics.cache_misses.inc();
                metrics.scenarios_completed.inc();
            }
            RunReport {
                scenario: case.name.clone(),
                group,
                policy: Some(folded.policy_spec().name),
                workload: Some(folded.workload_label()),
                package: Some(folded.package_kind()),
                threshold: Some(folded.threshold()),
                queue_capacity: folded.queue_capacity(),
                outcome: RunOutcome::Simulation(Box::new(sim.summary())),
            }
        };
        if let Some((cache, key)) = key {
            cache.store(&key, &report);
        }
        Ok(report)
    }

    /// Lane-batched form of [`execute`](Self::execute): answers cache hits
    /// and analytic tables exactly like the per-case path, groups the
    /// remaining simulation misses by platform fingerprint, and steps each
    /// group through [`LaneBatch`]es of up to `self.lanes` simulations.
    /// Reports come back in expansion order regardless of grouping.
    fn execute_batched(
        &self,
        cases: Vec<(String, ScenarioSpec)>,
    ) -> Result<Vec<RunReport>, SimError> {
        // Pass 1 — cheap outcomes (cache hits, analytic tables) inline;
        // simulation misses become pending lane work.
        let mut slots: Vec<Option<RunReport>> = Vec::with_capacity(cases.len());
        slots.resize_with(cases.len(), || None);
        let mut pending: Vec<PendingLane> = Vec::new();
        for (idx, (group, case)) in cases.into_iter().enumerate() {
            let key = match &self.cache {
                Some(cache) => {
                    let key = ScenarioHash::of(&case)?;
                    if let Some(mut report) = cache.load(&key) {
                        report.scenario = case.name.clone();
                        report.group = group;
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        if let Some(metrics) = &self.metrics {
                            metrics.cache_hits.inc();
                            metrics.scenarios_completed.inc();
                        }
                        slots[idx] = Some(report);
                        continue;
                    }
                    Some(key)
                }
                None => None,
            };
            if let Some(kind) = case.analysis {
                self.counters.analytic.fetch_add(1, Ordering::Relaxed);
                if let Some(metrics) = &self.metrics {
                    metrics.cache_misses.inc();
                    metrics.scenarios_completed.inc();
                }
                let report = RunReport {
                    scenario: case.name.clone(),
                    group,
                    policy: None,
                    workload: None,
                    package: None,
                    threshold: None,
                    queue_capacity: None,
                    outcome: RunOutcome::Table(kind.compute()),
                };
                if let (Some(cache), Some(key)) = (&self.cache, &key) {
                    cache.store(key, &report);
                }
                slots[idx] = Some(report);
                continue;
            }
            let folded = case.fold_initial_phases()?;
            pending.push(PendingLane {
                idx,
                group,
                case,
                folded,
                key,
            });
        }

        // Group misses by platform fingerprint (preserving expansion order
        // within each group — grouping must not reorder reports), then cut
        // each group into chunks of at most `self.lanes`.
        let mut groups: Vec<(String, Vec<PendingLane>)> = Vec::new();
        for p in pending {
            let print = lane_fingerprint(&p.folded);
            match groups.iter_mut().find(|(g, _)| *g == print) {
                Some((_, members)) => members.push(p),
                None => groups.push((print, vec![p])),
            }
        }
        let mut chunks: Vec<Vec<PendingLane>> = Vec::new();
        for (_, mut members) in groups {
            while !members.is_empty() {
                let rest = members.split_off(members.len().min(self.lanes));
                chunks.push(std::mem::replace(&mut members, rest));
            }
        }

        // Execute the chunks; attribute a chunk-level error to its first
        // case so the earliest error in expansion order wins, like the
        // per-case path.
        type ChunkResult = Result<Vec<(usize, RunReport)>, (usize, SimError)>;
        let to_result = |chunk: Vec<PendingLane>| -> ChunkResult {
            let first_idx = chunk[0].idx;
            self.run_lane_chunk(chunk).map_err(|e| (first_idx, e))
        };
        let results: Vec<ChunkResult> = if self.parallel {
            chunks.into_par_iter().map(to_result).collect()
        } else {
            chunks.into_iter().map(to_result).collect()
        };
        let mut first_err: Option<(usize, SimError)> = None;
        for result in results {
            match result {
                Ok(reports) => {
                    for (idx, report) in reports {
                        slots[idx] = Some(report);
                    }
                }
                Err((idx, e)) => {
                    if first_err.as_ref().is_none_or(|(i, _)| idx < *i) {
                        first_err = Some((idx, e));
                    }
                }
            }
        }
        if let Some((_, e)) = first_err {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every case produced a report"))
            .collect())
    }

    /// Builds, steps, and reports one chunk of simulation misses that share
    /// a platform fingerprint. Uses a [`LaneBatch`] when the platforms
    /// verify as identical; otherwise falls back to stepping the already
    /// built simulations individually (byte-identical either way).
    fn run_lane_chunk(&self, chunk: Vec<PendingLane>) -> Result<Vec<(usize, RunReport)>, SimError> {
        if let Some(metrics) = &self.metrics {
            metrics.lane_occupancy.observe(chunk.len() as f64);
        }
        let mut sims = Vec::with_capacity(chunk.len());
        for p in &chunk {
            let mut sim: Simulation = p
                .folded
                .build_with_registries(&self.registry, self.workloads.clone())?;
            sim.set_policy_registry(self.registry.clone());
            if let Some(metrics) = &self.metrics {
                sim.attach_metrics(metrics.sim.clone());
            }
            if let Some(dir) = &self.trace_dir {
                attach_file_sink(&mut sim, dir, &p.case.name, p.case.trace.as_ref())?;
            }
            sims.push(sim);
        }
        let sims = match LaneBatch::new(sims) {
            Ok(mut batch) => {
                run_phased_batch(&mut batch, &chunk)?;
                batch.into_lanes()
            }
            Err(build_err) => {
                let mut sims = build_err.sims;
                for (sim, p) in sims.iter_mut().zip(&chunk) {
                    run_phased(sim, &p.folded)?;
                }
                sims
            }
        };
        let mut out = Vec::with_capacity(chunk.len());
        for (mut sim, p) in sims.into_iter().zip(chunk) {
            sim.detach_trace_sink()?;
            self.counters.simulated.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = &self.metrics {
                metrics.cache_misses.inc();
                metrics.scenarios_completed.inc();
            }
            let report = RunReport {
                scenario: p.case.name.clone(),
                group: p.group,
                policy: Some(p.folded.policy_spec().name),
                workload: Some(p.folded.workload_label()),
                package: Some(p.folded.package_kind()),
                threshold: Some(p.folded.threshold()),
                queue_capacity: p.folded.queue_capacity(),
                outcome: RunOutcome::Simulation(Box::new(sim.summary())),
            };
            if let (Some(cache), Some(key)) = (&self.cache, &p.key) {
                cache.store(key, &report);
            }
            out.push((p.idx, report));
        }
        Ok(out)
    }
}

/// A simulation miss awaiting lane-batched execution.
struct PendingLane {
    /// Position in the expanded batch (report order).
    idx: usize,
    group: String,
    /// The original expanded case (labels, trace table).
    case: ScenarioSpec,
    /// The case with t = 0 phases folded in — what actually builds and runs.
    folded: ScenarioSpec,
    /// Cache key computed in pass 1, stored after the simulation completes.
    key: Option<ScenarioHash>,
}

/// Coarse grouping key for lane batching: runs may share a [`LaneBatch`]
/// only when platform, package, solver, time step, and step count agree.
/// The fingerprint is an efficiency pre-filter — [`LaneBatch::new`] verifies
/// the built thermal platforms field-for-field and incompatible chunks fall
/// back to individual stepping, so a collision cannot corrupt results.
fn lane_fingerprint(folded: &ScenarioSpec) -> String {
    let schedule = folded.schedule();
    format!(
        "{:?}|{:?}|{:x}|{}",
        folded.platform,
        folded.package_kind(),
        schedule.time_step.as_secs().to_bits(),
        step_count(folded.total_duration(), schedule.time_step),
    )
}

/// Lane-batched form of [`run_phased`]: advances all lanes in lockstep,
/// pausing at every step index where any lane has a phase due and applying
/// that lane's deltas there — exactly where [`run_phased`] would apply them
/// when stepping the lane alone. Per-lane phase lists are truncated at the
/// first phase due at or past the end of the run, mirroring [`run_phased`]'s
/// early `break` (later phases never fire, even out-of-order ones).
fn run_phased_batch(batch: &mut LaneBatch, chunk: &[PendingLane]) -> Result<(), SimError> {
    let dt = batch.time_step();
    let total_steps = step_count(chunk[0].folded.total_duration(), dt);
    // The fingerprint groups by step count; re-verify rather than trust it.
    if let Some(p) = chunk
        .iter()
        .find(|p| step_count(p.folded.total_duration(), dt) != total_steps)
    {
        return Err(SimError::InvalidConfig(format!(
            "lane batch step counts diverge (case `{}`)",
            p.case.name
        )));
    }
    // Per lane: remaining (due step, delta) pairs plus a cursor.
    let mut cursors: Vec<(Vec<(u64, crate::scenario::spec::SpecDelta)>, usize)> = chunk
        .iter()
        .map(|p| {
            let mut list = Vec::new();
            if let Some(phases) = &p.folded.phases {
                for phase in phases {
                    let due = step_count(Seconds::new(phase.at), dt);
                    if due >= total_steps {
                        break;
                    }
                    list.push((due, phase.delta()));
                }
            }
            (list, 0)
        })
        .collect();
    let mut done: u64 = 0;
    loop {
        for (lane, (list, next)) in cursors.iter_mut().enumerate() {
            while *next < list.len() && list[*next].0 <= done {
                batch
                    .lane_mut(lane)
                    .expect("lane index within batch")
                    .apply_delta(&list[*next].1)?;
                *next += 1;
            }
        }
        if done >= total_steps {
            break;
        }
        let target = cursors
            .iter()
            .filter_map(|(list, next)| list.get(*next).map(|&(due, _)| due))
            .min()
            .map_or(total_steps, |due| due.min(total_steps));
        batch.run_steps(target - done)?;
        done = target;
    }
    Ok(())
}

/// File name of the binary trace of the named concrete scenario: characters
/// outside `[A-Za-z0-9._-]` (sweep expansion produces `[` and `]`) degrade
/// to `_`, extension `.tbptrace`.
fn trace_file_name(scenario: &str) -> String {
    let mut name: String = scenario
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if name.is_empty() {
        name.push('_');
    }
    name.push_str(".tbptrace");
    name
}

/// Attaches a file-backed observability sink to `sim`, honouring the spec's
/// `[trace]` table (all tracks every 100 ms when absent).
fn attach_file_sink(
    sim: &mut Simulation,
    dir: &Path,
    scenario: &str,
    spec: Option<&TraceSpec>,
) -> Result<(), SimError> {
    let default_spec = TraceSpec::default();
    let spec = spec.unwrap_or(&default_spec);
    let interval = spec.interval()?;
    let selection = spec.selection()?;
    std::fs::create_dir_all(dir)
        .map_err(|e| SimError::Trace(format!("create trace dir {}: {e}", dir.display())))?;
    let path = dir.join(trace_file_name(scenario));
    let sink = FileSink::create(&path)
        .map_err(|e| SimError::Trace(format!("create trace file {}: {e}", path.display())))?;
    sim.attach_trace_sink(Box::new(sink), interval, selection)
}

/// Executes one (possibly phased) concrete scenario to its end, applying
/// each remaining phase's delta at its due step.
///
/// Segment boundaries are computed as *step counts* from the declared phase
/// times — not by subtracting accumulated elapsed time, whose float error
/// would make boundary placement depend on execution history — so phased
/// runs are deterministic and a run with zero phases steps exactly as
/// [`Simulation::run_for`] would. Phases at or beyond the end of the run
/// never fire.
fn run_phased(sim: &mut Simulation, case: &ScenarioSpec) -> Result<(), SimError> {
    let dt = sim.config().time_step;
    let total_steps = step_count(case.total_duration(), dt);
    let mut done: u64 = 0;
    if let Some(phases) = &case.phases {
        for phase in phases {
            let due = step_count(Seconds::new(phase.at), dt);
            if due >= total_steps {
                break;
            }
            for _ in done..due {
                sim.step()?;
            }
            done = done.max(due);
            sim.apply_delta(&phase.delta())?;
        }
    }
    for _ in done..total_steps {
        sim.step()?;
    }
    Ok(())
}

/// The digest identifying the expanded batch of a spec list — what shard
/// workers stamp into their [`PartialReport`]s. Merge hosts compare it
/// against the partials they are handed to reject mixed-up batches.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when an expanded case cannot be hashed.
pub fn batch_digest(specs: &[ScenarioSpec]) -> Result<ScenarioHash, SimError> {
    let cases = expand_batch(specs);
    ScenarioHash::of_batch(cases.iter().map(|(group, case)| (group.as_str(), case)))
}

/// Expands a spec list into `(group, concrete case)` pairs in the global,
/// deterministic batch order shared by [`Runner::run`] and
/// [`Runner::run_shard`].
pub(crate) fn expand_batch(specs: &[ScenarioSpec]) -> Vec<(String, ScenarioSpec)> {
    specs
        .iter()
        .flat_map(|spec| {
            spec.expand()
                .into_iter()
                .map(|case| (spec.name.clone(), case))
        })
        .collect()
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

impl fmt::Debug for Runner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runner")
            .field("registry", &self.registry)
            .field("parallel", &self.parallel)
            .field("cached", &self.cache.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Structured result of one scenario run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Fully expanded scenario name (base name + swept coordinates).
    pub scenario: String,
    /// The base name of the spec this run expanded from (exactly; no name
    /// parsing is involved, so base names may contain any characters).
    pub group: String,
    /// Policy that ran (`None` for analytic tables).
    pub policy: Option<String>,
    /// Workload label the run executed (`None` for analytic tables); the
    /// custom generator name for registry-resolved third-party workloads.
    pub workload: Option<String>,
    /// Thermal package (`None` for analytic tables).
    pub package: Option<PackageKind>,
    /// Policy threshold in °C (`None` for analytic tables).
    pub threshold: Option<f64>,
    /// SDR queue capacity override, when the scenario set one.
    pub queue_capacity: Option<usize>,
    /// What the run produced.
    pub outcome: RunOutcome,
}

impl RunReport {
    /// The simulation summary, when the run was a simulation.
    pub fn summary(&self) -> Option<&SimulationSummary> {
        match &self.outcome {
            RunOutcome::Simulation(summary) => Some(summary),
            RunOutcome::Table(_) => None,
        }
    }

    /// The analytic table, when the run was one.
    pub fn table(&self) -> Option<&TableReport> {
        match &self.outcome {
            RunOutcome::Table(table) => Some(table),
            RunOutcome::Simulation(_) => None,
        }
    }
}

/// What one scenario run produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// A full co-simulation summary.
    Simulation(Box<SimulationSummary>),
    /// An analytic table.
    Table(TableReport),
}

/// A printable table produced by an analytic scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableReport {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

/// The ordered reports of one batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// One report per expanded run, in expansion order.
    pub reports: Vec<RunReport>,
}

impl BatchReport {
    /// Number of reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Reports belonging to the scenario whose base name is `group`.
    pub fn group(&self, group: &str) -> Vec<&RunReport> {
        self.reports.iter().filter(|r| r.group == group).collect()
    }

    /// Pretty-printed JSON of every report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("reports always serialize")
    }

    /// CSV of the simulation reports (analytic tables are skipped), one row
    /// per run with the headline metrics of the paper's evaluation.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,policy,workload,package,threshold_c,queue_capacity,sigma_spatial_c,\
             mean_spread_c,peak_c,frames_delivered,deadline_misses,miss_rate,migrations,\
             migrations_per_s,migrated_kib_per_s,halts,reconfigs,measured_s,trace_dropped\n",
        );
        for report in &self.reports {
            let Some(summary) = report.summary() else {
                continue;
            };
            let row = [
                csv_field(&report.scenario),
                csv_field(report.policy.as_deref().unwrap_or("")),
                csv_field(report.workload.as_deref().unwrap_or("")),
                csv_field(&report.package.map_or(String::new(), |p| p.to_string())),
                report.threshold.map_or(String::new(), |t| format!("{t}")),
                report
                    .queue_capacity
                    .map_or(String::new(), |q| q.to_string()),
                format!("{:.4}", summary.mean_spatial_std_dev()),
                format!("{:.4}", summary.mean_spread()),
                format!("{:.2}", summary.thermal.peak_temperature),
                summary.qos.frames_delivered.to_string(),
                summary.qos.deadline_misses.to_string(),
                format!("{:.4}", summary.qos.miss_rate()),
                summary.migration.migrations.to_string(),
                format!("{:.3}", summary.migrations_per_second()),
                format!("{:.1}", summary.migrated_kib_per_second()),
                summary.migration.halts.to_string(),
                summary.reconfigs.to_string(),
                format!("{:.2}", summary.measured_time.as_secs()),
                summary.trace_dropped.to_string(),
            ];
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

fn csv_field(raw: &str) -> String {
    if raw.contains(',') || raw.contains('"') || raw.contains('\n') {
        format!("\"{}\"", raw.replace('"', "\"\""))
    } else {
        raw.to_string()
    }
}

impl AnalysisKind {
    /// Computes the analytic table for this kind.
    pub fn compute(&self) -> TableReport {
        match self {
            AnalysisKind::Table1Power => table1_power(),
            AnalysisKind::Table2Mapping => table2_mapping(),
            AnalysisKind::Fig2MigrationCost => fig2_migration_cost(),
        }
    }
}

/// Table 1: component power at the reference and half operating points.
fn table1_power() -> TableReport {
    let model = PowerModel::new();
    let reference = OperatingPoint::new(Frequency::from_mhz(500.0), Voltage::new(1.2));
    let half = OperatingPoint::new(Frequency::from_mhz(266.0), Voltage::new(1.0));
    let t = Celsius::new(60.0);
    let core_row = |name: &str, class: CoreClass| {
        vec![
            name.to_string(),
            format!(
                "{}",
                model
                    .core_power(class, reference, 1.0, t)
                    .expect("full utilization is valid")
            ),
            format!(
                "{}",
                model
                    .core_power(class, half, 1.0, t)
                    .expect("full utilization is valid")
            ),
        ]
    };
    let component_row = |name: &str, kind: ComponentKind| {
        vec![
            name.to_string(),
            format!(
                "{}",
                model
                    .component_power(kind, reference, 1.0, t)
                    .expect("full utilization is valid")
            ),
            format!(
                "{}",
                model
                    .component_power(kind, half, 1.0, t)
                    .expect("full utilization is valid")
            ),
        ]
    };
    TableReport {
        title: "Table 1 — component power in 0.09 µm CMOS".to_string(),
        header: vec![
            "component".to_string(),
            "max power @500 MHz/1.2 V".to_string(),
            "power @266 MHz/1.0 V".to_string(),
        ],
        rows: vec![
            core_row("RISC32-streaming (Conf1)", CoreClass::Risc32Streaming),
            core_row("RISC32-ARM11 (Conf2)", CoreClass::Risc32Arm11),
            component_row("DCache 8kB/2way", ComponentKind::DCache),
            component_row("ICache 8kB/DM", ComponentKind::ICache),
            component_row("Memory 32kB", ComponentKind::Memory32k),
        ],
    }
}

/// Table 2: the SDR task set and its initial energy-balanced mapping.
fn table2_mapping() -> TableReport {
    let sdr = SdrBenchmark::paper_default();
    TableReport {
        title: "Table 2 — SDR application mapping".to_string(),
        header: vec![
            "core / freq.".to_string(),
            "task".to_string(),
            "load [%]".to_string(),
            "FSE load".to_string(),
        ],
        rows: sdr
            .mapping()
            .iter()
            .map(|entry| {
                vec![
                    format!(
                        "Core {} ({:.0} MHz)",
                        entry.core.index() + 1,
                        entry.core_frequency_mhz
                    ),
                    entry.name.clone(),
                    format!("{:.1}", entry.load_percent),
                    format!("{:.3}", entry.fse_load()),
                ]
            })
            .collect(),
    }
}

/// Figure 2: migration cost vs. task size for both migration back-ends.
fn fig2_migration_cost() -> TableReport {
    let model = MigrationCostModel::paper_default();
    let sizes_kib = [64u64, 96, 128, 192, 256, 384, 512, 640, 768, 896, 1024];
    TableReport {
        title: "Figure 2 — migration cost vs task size".to_string(),
        header: vec![
            "task size [KiB]".to_string(),
            "replication [kcycles]".to_string(),
            "re-creation [kcycles]".to_string(),
            "repl. slope [cyc/B]".to_string(),
            "recr. slope [cyc/B]".to_string(),
        ],
        rows: sizes_kib
            .iter()
            .map(|&kib| {
                let size = Bytes::from_kib(kib);
                let repl = model.cycles(MigrationStrategy::TaskReplication, size);
                let recr = model.cycles(MigrationStrategy::TaskRecreation, size);
                vec![
                    format!("{kib}"),
                    format!("{:.0}", repl / 1e3),
                    format!("{:.0}", recr / 1e3),
                    format!(
                        "{:.2}",
                        model.slope_at(MigrationStrategy::TaskReplication, size)
                    ),
                    format!(
                        "{:.2}",
                        model.slope_at(MigrationStrategy::TaskRecreation, size)
                    ),
                ]
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::spec::SweepSpec;

    fn quick_spec(name: &str) -> ScenarioSpec {
        ScenarioSpec::new(name)
            .with_package(PackageKind::HighPerformance)
            .with_schedule(0.5, 1.0)
    }

    #[test]
    fn analysis_scenarios_produce_tables() {
        let batch = Runner::sequential()
            .run(&[
                ScenarioSpec::analysis("table1", AnalysisKind::Table1Power),
                ScenarioSpec::analysis("table2", AnalysisKind::Table2Mapping),
                ScenarioSpec::analysis("fig2", AnalysisKind::Fig2MigrationCost),
            ])
            .expect("analysis runs");
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.reports[0].table().unwrap().rows.len(), 5);
        assert_eq!(batch.reports[1].table().unwrap().header.len(), 4);
        assert_eq!(batch.reports[2].table().unwrap().rows.len(), 11);
        assert!(batch.reports.iter().all(|r| r.summary().is_none()));
        // Tables are excluded from the CSV: only the header line remains.
        assert_eq!(batch.to_csv().lines().count(), 1);
    }

    #[test]
    fn simulation_reports_carry_the_expanded_coordinates() {
        let spec = quick_spec("mini").with_sweep(
            SweepSpec::default()
                .with_policies(["dvfs-only", "energy-balancing"])
                .with_thresholds([2.0]),
        );
        let batch = Runner::new().run_spec(&spec).expect("batch runs");
        assert_eq!(batch.len(), 2);
        let report = &batch.reports[0];
        assert_eq!(report.scenario, "mini[dvfs-only/t2]");
        assert_eq!(report.group, "mini");
        assert_eq!(report.policy.as_deref(), Some("dvfs-only"));
        assert_eq!(report.package, Some(PackageKind::HighPerformance));
        assert_eq!(report.threshold, Some(2.0));
        let summary = report.summary().expect("simulation outcome");
        assert!(summary.qos.frames_delivered > 0);
        assert_eq!(batch.group("mini").len(), 2);
        // CSV: header + one row per simulation.
        assert_eq!(batch.to_csv().lines().count(), 3);
    }

    #[test]
    fn unknown_policy_fails_the_batch() {
        let spec = quick_spec("bad").with_policy("not-a-policy", 1.0);
        let err = Runner::new().run_spec(&spec).unwrap_err();
        assert!(matches!(err, SimError::UnknownPolicy { .. }));
    }

    #[test]
    fn batched_execution_is_byte_identical_to_per_case() {
        // Mixed packages force two fingerprint groups; mixed policies and
        // thresholds exercise per-lane divergence inside a group.
        let spec = quick_spec("sweep").with_sweep(
            SweepSpec::default()
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
                .with_policies(["dvfs-only", "energy-balancing"])
                .with_thresholds([2.0, 3.0]),
        );
        let solo = Runner::sequential().run_spec(&spec).expect("solo runs");
        for lanes in [2, 4, 8] {
            let batched = Runner::sequential()
                .with_lanes(lanes)
                .run_spec(&spec)
                .expect("batched runs");
            assert_eq!(solo.to_csv(), batched.to_csv(), "{lanes}-lane CSV");
            assert_eq!(
                serde_json::to_string(&solo.reports).unwrap(),
                serde_json::to_string(&batched.reports).unwrap(),
                "{lanes}-lane reports"
            );
        }
    }

    #[test]
    fn run_batched_wrapper_and_lane_floor() {
        assert_eq!(Runner::new().with_lanes(0).lanes(), 1);
        assert_eq!(Runner::new().lanes(), 1);
        let spec = quick_spec("wrap").with_sweep(SweepSpec::default().with_thresholds([1.0, 2.0]));
        let solo = Runner::sequential().run_spec(&spec).expect("solo runs");
        let batched = Runner::sequential()
            .run_batched(std::slice::from_ref(&spec), 2)
            .expect("batched runs");
        assert_eq!(solo.to_csv(), batched.to_csv());
    }

    #[test]
    fn batched_execution_handles_analysis_and_simulation_mix() {
        let specs = [
            ScenarioSpec::analysis("table1", AnalysisKind::Table1Power),
            quick_spec("sim"),
        ];
        let solo = Runner::sequential().run(&specs).expect("solo runs");
        let batched = Runner::sequential()
            .with_lanes(4)
            .run(&specs)
            .expect("batched runs");
        assert_eq!(batched.reports[0].table().unwrap().rows.len(), 5);
        assert_eq!(solo.to_csv(), batched.to_csv());
    }

    #[test]
    fn csv_quotes_awkward_fields() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
