//! Declarative scenario specifications.
//!
//! A [`ScenarioSpec`] is a plain data value (serde-serializable, so TOML and
//! JSON files round-trip) describing everything one simulation run needs:
//! platform, thermal package, workload, policy and schedule. A spec may also
//! carry a [`SweepSpec`] whose axes expand one spec into a grid of concrete
//! runs ([`ScenarioSpec::expand`]).

use serde::{Deserialize, Serialize};

use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::Seconds;
use tbp_os::migration::MigrationStrategy;
use tbp_streaming::pipeline::PipelineConfig;
use tbp_streaming::sdr::SdrBenchmark;
use tbp_streaming::workload::WorkloadSpec;
use tbp_streaming::workloads::{DagKnobs, VideoKnobs, WorkloadParams, WorkloadRegistry};
use tbp_thermal::package::{Package, PackageKind};
use tbp_thermal::solver::SolverKind;

use crate::error::SimError;
use crate::scenario::registry::PolicyRegistry;
use crate::sim::builder::Workload;
use crate::sim::{Simulation, SimulationBuilder, SimulationConfig};
use crate::trace::TrackSelection;

/// Default policy threshold (°C) when a spec does not name one.
pub const DEFAULT_THRESHOLD: f64 = 3.0;

/// Default thermal solver when the platform section does not name one.
pub const DEFAULT_SOLVER: SolverKind = SolverKind::ForwardEuler;

/// Default migration back-end when the platform section does not name one
/// (task replication is the strategy the paper deploys).
pub const DEFAULT_MIGRATION: MigrationStrategy = MigrationStrategy::TaskReplication;

/// Default DVFS-governor setting when the platform section does not name one.
pub const DEFAULT_DVFS: bool = true;

/// A declarative description of one experiment (or, with a sweep, a grid of
/// experiments).
///
/// All sections are optional and default to the paper's headline setup: the
/// 3-core platform, mobile-embedded package, SDR workload and the thermal
/// balancing policy at ±3 °C, simulated for 8 s of warm-up + 20 s measured.
///
/// ```
/// use tbp_core::scenario::ScenarioSpec;
///
/// let spec: ScenarioSpec = toml::from_str(
///     r#"
///     name = "demo"
///
///     [policy]
///     name = "thermal-balancing"
///     threshold = 2.0
///
///     [schedule]
///     warmup = 1.0
///     duration = 2.0
///
///     [sweep]
///     thresholds = [1.0, 2.0]
///     policies = ["thermal-balancing", "stop-and-go"]
///     "#,
/// )
/// .expect("valid TOML");
/// assert_eq!(spec.expand().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Name of the scenario (used in reports; sweep expansion suffixes it).
    pub name: String,
    /// Free-form description.
    pub description: Option<String>,
    /// When set, the scenario is an analytic table (no simulation runs).
    pub analysis: Option<AnalysisKind>,
    /// Platform overrides.
    pub platform: Option<PlatformSpec>,
    /// Thermal package selection.
    pub package: Option<PackageKind>,
    /// Workload selection.
    pub workload: Option<WorkloadDecl>,
    /// Policy selection (resolved through a [`PolicyRegistry`]).
    pub policy: Option<PolicySpec>,
    /// Timing of the run.
    pub schedule: Option<ScheduleSpec>,
    /// Sweep axes expanding this spec into a grid of concrete runs.
    pub sweep: Option<SweepSpec>,
    /// Live-reconfiguration phases (`[[phases]]` in TOML): validated,
    /// time-ordered deltas the runner applies to the *running* simulation.
    pub phases: Option<Vec<PhaseSpec>>,
    /// Observability-sink settings (`[trace]` in TOML). Tracing observes a
    /// run without changing it, so this section is excluded from the
    /// scenario hash.
    pub trace: Option<TraceSpec>,
}

impl ScenarioSpec {
    /// A spec with every section defaulted (the paper's headline setup).
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            description: None,
            analysis: None,
            platform: None,
            package: None,
            workload: None,
            policy: None,
            schedule: None,
            sweep: None,
            phases: None,
            trace: None,
        }
    }

    /// An analytic-table scenario (no simulation).
    pub fn analysis(name: impl Into<String>, kind: AnalysisKind) -> Self {
        let mut spec = ScenarioSpec::new(name);
        spec.analysis = Some(kind);
        spec
    }

    /// Sets the description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = Some(description.into());
        self
    }

    /// Sets the thermal package.
    pub fn with_package(mut self, package: PackageKind) -> Self {
        self.package = Some(package);
        self
    }

    /// Sets the policy by name and threshold.
    pub fn with_policy(mut self, name: impl Into<String>, threshold: f64) -> Self {
        self.policy = Some(PolicySpec::named(name).with_threshold(threshold));
        self
    }

    /// Sets warm-up and measured duration (seconds).
    pub fn with_schedule(mut self, warmup: f64, duration: f64) -> Self {
        let mut schedule = self.schedule.unwrap_or_default();
        schedule.warmup = Some(warmup);
        schedule.duration = Some(duration);
        self.schedule = Some(schedule);
        self
    }

    /// Sets the workload declaration.
    pub fn with_workload(mut self, workload: WorkloadDecl) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the sweep axes.
    pub fn with_sweep(mut self, sweep: SweepSpec) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Sets the live-reconfiguration phases.
    pub fn with_phases(mut self, phases: impl Into<Vec<PhaseSpec>>) -> Self {
        self.phases = Some(phases.into());
        self
    }

    /// Whether the spec declares a `[[phases]]` table (even an empty one).
    /// Phased specs hash under the `v3` domain; see
    /// [`ScenarioHash`](crate::scenario::ScenarioHash).
    pub fn has_phases(&self) -> bool {
        self.phases.is_some()
    }

    /// Validates the `[[phases]]` table:
    ///
    /// * phase times are finite, non-negative and strictly ascending;
    /// * every phase carries at least one override;
    /// * thresholds are finite and positive, periods are positive.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] naming the offending phase.
    pub fn validate_phases(&self) -> Result<(), SimError> {
        let Some(phases) = &self.phases else {
            return Ok(());
        };
        let mut prev = f64::NEG_INFINITY;
        for (i, phase) in phases.iter().enumerate() {
            let place = format!("scenario `{}` phase #{i}", self.name);
            if !phase.at.is_finite() || phase.at < 0.0 {
                return Err(SimError::Spec(format!(
                    "{place}: `at` must be a finite, non-negative time (got {})",
                    phase.at
                )));
            }
            if phase.at <= prev {
                return Err(SimError::Spec(format!(
                    "{place}: phase times must be strictly ascending ({} after {prev})",
                    phase.at
                )));
            }
            prev = phase.at;
            if phase.delta().is_empty() {
                return Err(SimError::Spec(format!(
                    "{place}: a phase must override at least one of \
                     policy/threshold/policy_period_ms/sensor_period_ms"
                )));
            }
            if let Some(t) = phase.threshold {
                if !t.is_finite() || t <= 0.0 {
                    return Err(SimError::Spec(format!(
                        "{place}: threshold must be finite and positive (got {t})"
                    )));
                }
            }
            for (knob, value) in [
                ("policy_period_ms", phase.policy_period_ms),
                ("sensor_period_ms", phase.sensor_period_ms),
            ] {
                if let Some(ms) = value {
                    if !ms.is_finite() || ms <= 0.0 {
                        return Err(SimError::Spec(format!(
                            "{place}: {knob} must be finite and positive (got {ms})"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds phases firing at `t = 0` into the spec's static sections and
    /// returns the normalized spec — the form the runner builds and reports.
    ///
    /// Applying a delta before the first simulation step is equivalent to
    /// starting with it, so a phased spec whose only delta fires at `t = 0`
    /// normalizes to the corresponding *static* spec and produces a
    /// byte-identical [`RunReport`](crate::scenario::RunReport). A `t = 0`
    /// phase that changes the sensor period is kept live (the schedule has no
    /// static sensor-period knob to fold into).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] when the phase table fails validation.
    pub fn fold_initial_phases(&self) -> Result<ScenarioSpec, SimError> {
        self.validate_phases()?;
        let Some(phases) = &self.phases else {
            return Ok(self.clone());
        };
        let mut folded = self.clone();
        let mut remaining = Vec::new();
        for phase in phases {
            // Strict ascent means only the first phase can sit at t = 0.
            if phase.at == 0.0 && phase.sensor_period_ms.is_none() {
                let mut policy_spec = folded.policy_spec();
                if let Some(name) = &phase.policy {
                    policy_spec.name = name.clone();
                }
                if let Some(threshold) = phase.threshold {
                    policy_spec.threshold = Some(threshold);
                }
                folded.policy = Some(policy_spec);
                if let Some(period) = phase.policy_period_ms {
                    let mut schedule = folded.schedule.take().unwrap_or_default();
                    schedule.policy_period_ms = Some(period);
                    folded.schedule = Some(schedule);
                }
            } else {
                remaining.push(phase.clone());
            }
        }
        folded.phases = if remaining.is_empty() {
            None
        } else {
            Some(remaining)
        };
        Ok(folded)
    }

    /// The effective package kind ([`PackageKind::MobileEmbedded`] default).
    pub fn package_kind(&self) -> PackageKind {
        self.package.unwrap_or(PackageKind::MobileEmbedded)
    }

    /// The package object for the effective kind (`Custom` falls back to the
    /// mobile parameterisation, matching the historical behaviour).
    pub fn package_object(&self) -> Package {
        match self.package_kind() {
            PackageKind::HighPerformance => Package::high_performance(),
            _ => Package::mobile_embedded(),
        }
    }

    /// The effective policy spec (thermal balancing at ±3 °C by default).
    pub fn policy_spec(&self) -> PolicySpec {
        self.policy
            .clone()
            .unwrap_or_else(|| PolicySpec::named("thermal-balancing"))
    }

    /// The effective policy threshold.
    pub fn threshold(&self) -> f64 {
        self.policy_spec().threshold.unwrap_or(DEFAULT_THRESHOLD)
    }

    /// The effective schedule with all defaults applied.
    pub fn schedule(&self) -> ResolvedSchedule {
        self.schedule.clone().unwrap_or_default().resolve()
    }

    /// Warm-up plus measured duration.
    pub fn total_duration(&self) -> Seconds {
        let schedule = self.schedule();
        schedule.warmup + schedule.duration
    }

    /// The queue capacity override of the workload, if any.
    pub fn queue_capacity(&self) -> Option<usize> {
        self.workload.as_ref().and_then(|w| w.queue_capacity)
    }

    /// The label of the effective workload (`"sdr"` when the section is
    /// absent) — what run reports carry in their `workload` column.
    pub fn workload_label(&self) -> String {
        self.workload
            .as_ref()
            .map(WorkloadDecl::label)
            .unwrap_or_else(|| workload_kind_label(WorkloadKind::Sdr).to_string())
    }

    /// Expands the sweep axes into concrete specs (one per grid point).
    ///
    /// Axis order (outermost to innermost): packages, workloads, policies,
    /// thresholds, queue capacities, seeds. A spec without a sweep expands
    /// to itself. Expanded specs carry no sweep and a name suffixed with the
    /// swept coordinates, e.g. `fig7[stop-and-go/t2]` or
    /// `matrix[dag/thermal-balancing]`.
    pub fn expand(&self) -> Vec<ScenarioSpec> {
        let Some(sweep) = &self.sweep else {
            return vec![self.clone()];
        };
        // An explicitly empty axis behaves like an absent one (matching
        // `SweepSpec::cardinality`); expanding it to zero runs would silently
        // drop the whole scenario.
        fn axis<T: Clone>(values: &Option<Vec<T>>) -> Vec<Option<T>> {
            match values {
                Some(values) if !values.is_empty() => values.iter().cloned().map(Some).collect(),
                _ => vec![None],
            }
        }
        let packages = axis(&sweep.packages);
        let workloads = axis(&sweep.workloads);
        let policies = axis(&sweep.policies);
        let thresholds = axis(&sweep.thresholds);
        let queues = axis(&sweep.queue_capacities);
        let seeds = axis(&sweep.seeds);
        let mut cases = Vec::new();
        for package in &packages {
            for workload_kind in &workloads {
                for policy in &policies {
                    for threshold in &thresholds {
                        for queue in &queues {
                            for seed in &seeds {
                                let mut case = self.clone();
                                case.sweep = None;
                                let mut suffix: Vec<String> = Vec::new();
                                if let Some(package) = package {
                                    case.package = Some(*package);
                                    suffix.push(package_label(*package).to_string());
                                }
                                if let Some(kind) = workload_kind {
                                    let mut workload = case.workload.take().unwrap_or_default();
                                    workload.kind = Some(*kind);
                                    // A spec-level custom generator would
                                    // silently override every point of the
                                    // axis (generator takes precedence over
                                    // kind); the axis is the explicit choice
                                    // here, so it wins.
                                    workload.generator = None;
                                    case.workload = Some(workload);
                                    suffix.push(workload_kind_label(*kind).to_string());
                                }
                                let mut policy_spec = self.policy_spec();
                                if let Some(policy) = policy {
                                    policy_spec.name = policy.clone();
                                    suffix.push(policy.clone());
                                }
                                if let Some(threshold) = threshold {
                                    policy_spec.threshold = Some(*threshold);
                                    suffix.push(format!("t{threshold}"));
                                }
                                case.policy = Some(policy_spec);
                                if let Some(queue) = queue {
                                    let mut workload = case.workload.take().unwrap_or_default();
                                    workload.queue_capacity = Some(*queue);
                                    case.workload = Some(workload);
                                    suffix.push(format!("q{queue}"));
                                }
                                if let Some(seed) = seed {
                                    let mut workload = case.workload.take().unwrap_or_default();
                                    workload.seed = Some(*seed);
                                    case.workload = Some(workload);
                                    suffix.push(format!("s{seed}"));
                                }
                                if !suffix.is_empty() {
                                    case.name = format!("{}[{}]", self.name, suffix.join("/"));
                                }
                                cases.push(case);
                            }
                        }
                    }
                }
            }
        }
        cases
    }

    /// Builds the simulation for a concrete spec using the global (built-in)
    /// policy registry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for sweep-carrying or analysis specs, unknown
    /// policies, or invalid configurations.
    pub fn build(&self) -> Result<Simulation, SimError> {
        self.build_with(&PolicyRegistry::global())
    }

    /// Builds the simulation for a concrete spec resolving the policy through
    /// `registry` (workload names resolve through the global workload
    /// registry; see
    /// [`build_with_registries`](Self::build_with_registries) to supply a
    /// custom one).
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with(&self, registry: &PolicyRegistry) -> Result<Simulation, SimError> {
        self.build_with_registries(registry, WorkloadRegistry::global())
    }

    /// Builds the simulation for a concrete spec, resolving the policy
    /// through `policies` and [`Workload::Generated`] names (the
    /// `generator` field, `VideoAnalytics`, `Dag`) through `workloads` —
    /// the hook that makes third-party workloads selectable from TOML.
    ///
    /// # Errors
    ///
    /// See [`build`](Self::build).
    pub fn build_with_registries(
        &self,
        policies: &PolicyRegistry,
        workloads: std::sync::Arc<WorkloadRegistry>,
    ) -> Result<Simulation, SimError> {
        if self.sweep.is_some() {
            return Err(SimError::Spec(format!(
                "scenario `{}` still carries a sweep; call expand() first",
                self.name
            )));
        }
        if self.analysis.is_some() {
            return Err(SimError::Spec(format!(
                "scenario `{}` is an analytic table and has no simulation",
                self.name
            )));
        }
        // Phases are validated here but *executed* by the Runner (which folds
        // `t = 0` phases into the static sections first): building a phased
        // spec yields its initial configuration.
        self.validate_phases()?;
        let threshold = self.threshold();
        let schedule = self.schedule();
        let platform = self.platform.clone().unwrap_or_default();
        let policy = policies.instantiate(&self.policy_spec())?;
        SimulationBuilder::new()
            .with_platform(platform.to_config())
            .with_package(self.package_object())
            .with_solver(platform.solver.unwrap_or(DEFAULT_SOLVER))
            .with_migration_strategy(platform.migration.unwrap_or(DEFAULT_MIGRATION))
            .with_dvfs(platform.dvfs.unwrap_or(DEFAULT_DVFS))
            .with_workload(self.workload.clone().unwrap_or_default().to_workload()?)
            .with_workload_registry(workloads)
            .with_policy_box(policy)
            .with_threshold(threshold)
            .with_config(SimulationConfig {
                time_step: schedule.time_step,
                policy_period: schedule.policy_period,
                warmup: schedule.warmup,
                metrics_threshold: threshold,
                trace_interval: schedule.trace_interval,
                ..SimulationConfig::default()
            })
            .build()
    }

    /// The stable content hash of this concrete spec — the key run caches
    /// memoize reports under. See
    /// [`ScenarioHash`](crate::scenario::ScenarioHash) for what is (and is
    /// not) hashed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] for sweep-carrying specs; call
    /// [`expand`](Self::expand) first and hash the concrete runs.
    pub fn content_hash(&self) -> Result<crate::scenario::ScenarioHash, SimError> {
        crate::scenario::ScenarioHash::of(self)
    }

    /// Parses a spec from TOML text.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on malformed TOML.
    pub fn from_toml_str(text: &str) -> Result<Self, SimError> {
        toml::from_str(text).map_err(|e| SimError::Spec(e.to_string()))
    }

    /// Renders the spec as a TOML document.
    pub fn to_toml_string(&self) -> String {
        toml::to_string(self).expect("scenario specs always serialize to a table")
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] on malformed JSON.
    pub fn from_json_str(text: &str) -> Result<Self, SimError> {
        serde_json::from_str(text).map_err(|e| SimError::Spec(e.to_string()))
    }

    /// Renders the spec as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario specs always serialize")
    }
}

/// Short human label for a package kind (used in expanded scenario names).
pub fn package_label(kind: PackageKind) -> &'static str {
    match kind {
        PackageKind::MobileEmbedded => "mobile",
        PackageKind::HighPerformance => "hiperf",
        PackageKind::Custom => "custom",
    }
}

/// Platform overrides of a scenario.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of cores (default 3, the paper's platform).
    pub cores: Option<usize>,
    /// Use the lower-power ARM11-class core configuration (Conf2 of
    /// Table 1) instead of the streaming configuration.
    pub arm11: Option<bool>,
    /// Enable the DVFS governor (default true).
    pub dvfs: Option<bool>,
    /// Migration back-end strategy (default task replication).
    pub migration: Option<MigrationStrategy>,
    /// Thermal solver (default forward Euler).
    pub solver: Option<SolverKind>,
}

impl PlatformSpec {
    /// The platform configuration this spec describes.
    pub fn to_config(&self) -> PlatformConfig {
        let base = if self.arm11.unwrap_or(false) {
            PlatformConfig::paper_arm11()
        } else {
            PlatformConfig::paper_default()
        };
        match self.cores {
            Some(cores) => base.with_cores(cores),
            None => base,
        }
    }
}

/// Which application the scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// The paper's Software Defined Radio benchmark.
    Sdr,
    /// A synthetic task set without a pipeline.
    Synthetic,
    /// Video analytics: decode → detect → track → sink chains, one per
    /// camera stream (knobs in the `[workload.video]` table).
    VideoAnalytics,
    /// A parameterised fork-join pipeline with depth/width/skew knobs and
    /// configurable arrivals (knobs in the `[workload.dag]` table).
    Dag,
    /// No tasks at all.
    Idle,
}

/// Short human label for a workload kind (used in expanded scenario names
/// and run reports).
pub fn workload_kind_label(kind: WorkloadKind) -> &'static str {
    match kind {
        WorkloadKind::Sdr => "sdr",
        WorkloadKind::Synthetic => "synthetic",
        WorkloadKind::VideoAnalytics => "video-analytics",
        WorkloadKind::Dag => "dag",
        WorkloadKind::Idle => "idle",
    }
}

/// Workload selection and its knobs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadDecl {
    /// Workload family (default [`WorkloadKind::Sdr`]).
    pub kind: Option<WorkloadKind>,
    /// Third-party generator name resolved through the workload registry;
    /// takes precedence over `kind` when set.
    pub generator: Option<String>,
    /// Inter-stage queue capacity in frames (pipeline workloads).
    pub queue_capacity: Option<usize>,
    /// Frames buffered before playback starts (pipeline workloads; defaults
    /// to half the queue capacity when a capacity is given).
    pub prefill: Option<usize>,
    /// Number of tasks (synthetic only).
    pub num_tasks: Option<usize>,
    /// Number of cores the synthetic placement targets (synthetic only).
    pub num_cores: Option<usize>,
    /// Total full-speed-equivalent load (synthetic only).
    pub total_fse_load: Option<f64>,
    /// PRNG seed (all seeded workloads).
    pub seed: Option<u64>,
    /// Knobs of the video-analytics workload (`[workload.video]`).
    pub video: Option<VideoKnobs>,
    /// Knobs of the fork-join DAG workload (`[workload.dag]`).
    pub dag: Option<DagKnobs>,
}

impl WorkloadDecl {
    /// An SDR workload with a specific queue capacity.
    pub fn sdr_with_queue(queue_capacity: usize) -> Self {
        WorkloadDecl {
            queue_capacity: Some(queue_capacity),
            ..WorkloadDecl::default()
        }
    }

    /// A declaration of the given kind with default knobs.
    pub fn of_kind(kind: WorkloadKind) -> Self {
        WorkloadDecl {
            kind: Some(kind),
            ..WorkloadDecl::default()
        }
    }

    /// The label naming the effective workload: the custom generator name
    /// when one is set, the kind's label otherwise.
    pub fn label(&self) -> String {
        match &self.generator {
            Some(name) => name.clone(),
            None => workload_kind_label(self.kind.unwrap_or(WorkloadKind::Sdr)).to_string(),
        }
    }

    /// The generator parameters this declaration describes: the shared
    /// seed/queue knobs plus the per-kind knob tables.
    pub fn to_params(&self) -> WorkloadParams {
        let mut params = WorkloadParams::default();
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        if let Some(num_cores) = self.num_cores {
            params.num_cores = num_cores;
        }
        params.queue_capacity = self.queue_capacity;
        params.prefill = self.prefill;
        if let Some(num_tasks) = self.num_tasks {
            params.synthetic.num_tasks = num_tasks;
        }
        if let Some(total) = self.total_fse_load {
            params.synthetic.total_fse_load = total;
        }
        if let Some(video) = &self.video {
            params.video = video.clone();
        }
        if let Some(dag) = &self.dag {
            params.dag = dag.clone();
        }
        params
    }

    /// Converts the declaration into the builder's workload value.
    ///
    /// `video-analytics`, `dag` and custom `generator` workloads resolve
    /// by name through the [`WorkloadRegistry`]
    /// at build time; the SDR and synthetic kinds keep their direct
    /// constructions (their knobs predate the registry).
    ///
    /// [`WorkloadRegistry`]: tbp_streaming::workloads::WorkloadRegistry
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] for inconsistent knobs (e.g. synthetic
    /// parameters on an SDR workload are ignored, but a prefill larger than
    /// the queue capacity is rejected by the pipeline at build time).
    pub fn to_workload(&self) -> Result<Workload, SimError> {
        if let Some(generator) = &self.generator {
            return Ok(Workload::Generated {
                generator: generator.clone(),
                params: Box::new(self.to_params()),
            });
        }
        match self.kind.unwrap_or(WorkloadKind::Sdr) {
            WorkloadKind::Sdr => {
                let mut sdr = SdrBenchmark::paper_default();
                if let Some(capacity) = self.queue_capacity {
                    let config = PipelineConfig {
                        queue_capacity: capacity,
                        prefill: self.prefill.unwrap_or(capacity / 2),
                        ..*sdr.pipeline_config()
                    };
                    sdr = sdr.with_pipeline_config(config);
                } else if let Some(prefill) = self.prefill {
                    let config = PipelineConfig {
                        prefill,
                        ..*sdr.pipeline_config()
                    };
                    sdr = sdr.with_pipeline_config(config);
                }
                Ok(Workload::Sdr(sdr))
            }
            WorkloadKind::Synthetic => {
                let mut spec = WorkloadSpec::default_mixed();
                if let Some(num_tasks) = self.num_tasks {
                    spec.num_tasks = num_tasks;
                }
                if let Some(num_cores) = self.num_cores {
                    spec.num_cores = num_cores;
                }
                if let Some(total) = self.total_fse_load {
                    spec.total_fse_load = total;
                }
                if let Some(seed) = self.seed {
                    spec.seed = seed;
                }
                Ok(Workload::Synthetic(spec))
            }
            WorkloadKind::VideoAnalytics => Ok(Workload::Generated {
                generator: "video-analytics".to_string(),
                params: Box::new(self.to_params()),
            }),
            WorkloadKind::Dag => Ok(Workload::Generated {
                generator: "dag".to_string(),
                params: Box::new(self.to_params()),
            }),
            WorkloadKind::Idle => Ok(Workload::Idle),
        }
    }
}

/// Policy selection: a registry name plus its threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Registry name of the policy (e.g. `"thermal-balancing"`).
    pub name: String,
    /// Balancing threshold in °C (policies that take one; default ±3 °C).
    pub threshold: Option<f64>,
}

impl PolicySpec {
    /// A policy spec with the default threshold.
    pub fn named(name: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            threshold: None,
        }
    }

    /// Sets the threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// The threshold, defaulted to ±3 °C.
    pub fn threshold_or_default(&self) -> f64 {
        self.threshold.unwrap_or(DEFAULT_THRESHOLD)
    }
}

/// One live-reconfiguration phase of a scenario (`[[phases]]` in TOML): a
/// time plus the overrides applied to the *running* simulation at that time.
///
/// ```
/// use tbp_core::scenario::ScenarioSpec;
///
/// let spec: ScenarioSpec = toml::from_str(
///     r#"
///     name = "phased"
///
///     [[phases]]
///     at = 10.0
///     threshold = 2.0
///
///     [[phases]]
///     at = 14.0
///     policy = "stop-and-go"
///     policy_period_ms = 20.0
///     "#,
/// )
/// .expect("valid TOML");
/// assert!(spec.validate_phases().is_ok());
/// assert_eq!(spec.phases.as_ref().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Simulated time (seconds from simulation start, warm-up included) the
    /// delta applies at. Phase times must be strictly ascending; a phase at
    /// `0.0` is folded into the static spec sections
    /// ([`ScenarioSpec::fold_initial_phases`]).
    pub at: f64,
    /// Swap the active policy to this registry name.
    pub policy: Option<String>,
    /// Retune the balancing threshold (°C); also moves the metric band.
    pub threshold: Option<f64>,
    /// Change the policy invocation period (milliseconds).
    pub policy_period_ms: Option<f64>,
    /// Change the thermal-sensor sampling period (milliseconds).
    pub sensor_period_ms: Option<f64>,
}

impl PhaseSpec {
    /// A phase at `at` seconds with no overrides yet (add some before
    /// validating — an empty phase is rejected).
    pub fn at(at: f64) -> Self {
        PhaseSpec {
            at,
            policy: None,
            threshold: None,
            policy_period_ms: None,
            sensor_period_ms: None,
        }
    }

    /// Sets the policy swap.
    pub fn with_policy(mut self, name: impl Into<String>) -> Self {
        self.policy = Some(name.into());
        self
    }

    /// Sets the threshold retune.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Sets the policy-period change (milliseconds).
    pub fn with_policy_period_ms(mut self, ms: f64) -> Self {
        self.policy_period_ms = Some(ms);
        self
    }

    /// Sets the sensor-period change (milliseconds).
    pub fn with_sensor_period_ms(mut self, ms: f64) -> Self {
        self.sensor_period_ms = Some(ms);
        self
    }

    /// The runtime delta this phase applies.
    pub fn delta(&self) -> SpecDelta {
        SpecDelta {
            policy: self.policy.clone(),
            threshold: self.threshold,
            policy_period: self.policy_period_ms.map(Seconds::from_millis),
            sensor_period: self.sensor_period_ms.map(Seconds::from_millis),
        }
    }
}

/// A reconfiguration delta applied to a *running* simulation
/// (`Simulation::apply_delta`): the dynamic subset of a [`ScenarioSpec`] —
/// policy, threshold and the two periods — without disturbing thermal or OS
/// state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpecDelta {
    /// Swap the active policy to this registry name (resolved through the
    /// simulation's [`PolicyRegistry`]).
    /// The new instance starts with fresh internal state.
    pub policy: Option<String>,
    /// Retune the balancing threshold (°C). Applied in place (keeping policy
    /// state) when the active policy supports it, and always moved into the
    /// metric band.
    pub threshold: Option<f64>,
    /// New policy invocation period.
    pub policy_period: Option<Seconds>,
    /// New thermal-sensor sampling period.
    pub sensor_period: Option<Seconds>,
}

impl SpecDelta {
    /// A delta with no overrides (applying it is an error).
    pub fn new() -> Self {
        SpecDelta::default()
    }

    /// Sets the policy swap.
    pub fn with_policy(mut self, name: impl Into<String>) -> Self {
        self.policy = Some(name.into());
        self
    }

    /// Sets the threshold retune.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Sets the policy-period change.
    pub fn with_policy_period(mut self, period: Seconds) -> Self {
        self.policy_period = Some(period);
        self
    }

    /// Sets the sensor-period change.
    pub fn with_sensor_period(mut self, period: Seconds) -> Self {
        self.sensor_period = Some(period);
        self
    }

    /// Whether the delta carries no override at all.
    pub fn is_empty(&self) -> bool {
        self.policy.is_none()
            && self.threshold.is_none()
            && self.policy_period.is_none()
            && self.sensor_period.is_none()
    }

    /// Deterministic human-readable rendering (recorded as the trace's
    /// reconfiguration-event description).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if let Some(policy) = &self.policy {
            parts.push(format!("policy={policy}"));
        }
        if let Some(threshold) = self.threshold {
            parts.push(format!("threshold={threshold}"));
        }
        if let Some(period) = self.policy_period {
            parts.push(format!("policy_period_ms={}", period.as_millis()));
        }
        if let Some(period) = self.sensor_period {
            parts.push(format!("sensor_period_ms={}", period.as_millis()));
        }
        parts.join(" ")
    }
}

/// Timing of a scenario, in seconds (milliseconds where noted).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ScheduleSpec {
    /// Warm-up (policy disabled, unmeasured). Default 8 s.
    pub warmup: Option<f64>,
    /// Measured duration after warm-up. Default 20 s.
    pub duration: Option<f64>,
    /// Co-simulation step in milliseconds. Default 5 ms.
    pub time_step_ms: Option<f64>,
    /// Policy invocation period in milliseconds. Default 10 ms.
    pub policy_period_ms: Option<f64>,
    /// Trace sampling period in milliseconds; 0 disables tracing.
    /// Default 100 ms.
    pub trace_interval_ms: Option<f64>,
}

impl ScheduleSpec {
    /// Applies defaults, producing concrete timing values.
    pub fn resolve(&self) -> ResolvedSchedule {
        ResolvedSchedule {
            warmup: Seconds::new(self.warmup.unwrap_or(8.0)),
            duration: Seconds::new(self.duration.unwrap_or(20.0)),
            time_step: Seconds::from_millis(self.time_step_ms.unwrap_or(5.0)),
            policy_period: Seconds::from_millis(self.policy_period_ms.unwrap_or(10.0)),
            trace_interval: match self.trace_interval_ms {
                Some(ms) if ms <= 0.0 => None,
                Some(ms) => Some(Seconds::from_millis(ms)),
                None => Some(Seconds::from_millis(100.0)),
            },
        }
    }
}

/// A [`ScheduleSpec`] with all defaults applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedSchedule {
    /// Warm-up time.
    pub warmup: Seconds,
    /// Measured duration.
    pub duration: Seconds,
    /// Co-simulation step.
    pub time_step: Seconds,
    /// Policy period.
    pub policy_period: Seconds,
    /// Trace interval (`None` disables tracing).
    pub trace_interval: Option<Seconds>,
}

/// Observability-sink settings (`[trace]` in TOML): the sampling interval
/// and track groups of the binary trace a run emits when the runner is given
/// a trace directory.
///
/// Tracing observes a run without changing its dynamics, so this table is a
/// non-semantic field of the spec: adding or editing it never changes the
/// scenario hash (cache keys and cached results stay valid).
///
/// ```
/// use tbp_core::scenario::ScenarioSpec;
///
/// let spec: ScenarioSpec = toml::from_str(
///     r#"
///     name = "traced"
///
///     [trace]
///     interval_ms = 50.0
///     tracks = ["temperatures", "migrations", "reconfigs"]
///     "#,
/// )
/// .expect("valid TOML");
/// let trace = spec.trace.as_ref().unwrap();
/// assert!(trace.selection().unwrap().temperatures);
/// assert!(!trace.selection().unwrap().frequencies);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Sink sampling interval in milliseconds (default 100 ms).
    pub interval_ms: Option<f64>,
    /// Track groups to record; absent means all. Known names:
    /// `temperatures`, `frequencies`, `migrations`, `deadline_misses`,
    /// `queue_depths`, `reconfigs`.
    pub tracks: Option<Vec<String>>,
}

impl TraceSpec {
    /// The sink sampling interval, defaulted to 100 ms.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] for a non-finite or non-positive interval.
    pub fn interval(&self) -> Result<Seconds, SimError> {
        let ms = self.interval_ms.unwrap_or(100.0);
        if !ms.is_finite() || ms <= 0.0 {
            return Err(SimError::Spec(format!(
                "[trace] interval_ms must be finite and positive (got {ms})"
            )));
        }
        Ok(Seconds::from_millis(ms))
    }

    /// The track selection this spec names (all groups when `tracks` is
    /// absent).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Spec`] for an unknown track-group name.
    pub fn selection(&self) -> Result<TrackSelection, SimError> {
        let Some(tracks) = &self.tracks else {
            return Ok(TrackSelection::all());
        };
        let mut selection = TrackSelection::none();
        for name in tracks {
            match name.as_str() {
                "temperatures" => selection.temperatures = true,
                "frequencies" => selection.frequencies = true,
                "migrations" => selection.migrations = true,
                "deadline_misses" => selection.deadline_misses = true,
                "queue_depths" => selection.queue_depths = true,
                "reconfigs" => selection.reconfigs = true,
                other => {
                    return Err(SimError::Spec(format!(
                        "[trace] unknown track group `{other}` (known: temperatures, \
                         frequencies, migrations, deadline_misses, queue_depths, reconfigs)"
                    )))
                }
            }
        }
        Ok(selection)
    }
}

/// Sweep axes: the cartesian product of all present axes expands a spec into
/// a grid of concrete runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Thermal packages to sweep.
    pub packages: Option<Vec<PackageKind>>,
    /// Workload kinds to sweep (cross-workload comparisons; per-kind knobs
    /// come from the spec's `[workload]` section).
    pub workloads: Option<Vec<WorkloadKind>>,
    /// Policy registry names to sweep.
    pub policies: Option<Vec<String>>,
    /// Policy thresholds (°C) to sweep.
    pub thresholds: Option<Vec<f64>>,
    /// Inter-stage queue capacities to sweep (pipeline workloads).
    pub queue_capacities: Option<Vec<usize>>,
    /// Workload PRNG seeds to sweep (statistical replication of seeded
    /// workloads).
    pub seeds: Option<Vec<u64>>,
}

impl SweepSpec {
    /// Number of grid points the sweep expands to.
    pub fn cardinality(&self) -> usize {
        let len = |n: Option<usize>| n.filter(|&n| n > 0).unwrap_or(1);
        len(self.packages.as_ref().map(Vec::len))
            * len(self.workloads.as_ref().map(Vec::len))
            * len(self.policies.as_ref().map(Vec::len))
            * len(self.thresholds.as_ref().map(Vec::len))
            * len(self.queue_capacities.as_ref().map(Vec::len))
            * len(self.seeds.as_ref().map(Vec::len))
    }

    /// Sets the threshold axis.
    pub fn with_thresholds(mut self, thresholds: impl Into<Vec<f64>>) -> Self {
        self.thresholds = Some(thresholds.into());
        self
    }

    /// Sets the policy axis.
    pub fn with_policies<I, S>(mut self, policies: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.policies = Some(policies.into_iter().map(Into::into).collect());
        self
    }

    /// Sets the package axis.
    pub fn with_packages(mut self, packages: impl Into<Vec<PackageKind>>) -> Self {
        self.packages = Some(packages.into());
        self
    }

    /// Sets the queue-capacity axis.
    pub fn with_queue_capacities(mut self, capacities: impl Into<Vec<usize>>) -> Self {
        self.queue_capacities = Some(capacities.into());
        self
    }

    /// Sets the workload-kind axis.
    pub fn with_workloads(mut self, workloads: impl Into<Vec<WorkloadKind>>) -> Self {
        self.workloads = Some(workloads.into());
        self
    }

    /// Sets the workload-seed axis.
    pub fn with_seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = Some(seeds.into());
        self
    }
}

/// Analytic tables of the paper that need no simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnalysisKind {
    /// Table 1: component power at the reference operating points.
    Table1Power,
    /// Table 2: the SDR task set and its initial mapping.
    Table2Mapping,
    /// Figure 2: migration cost vs. task size for both back-ends.
    Fig2MigrationCost,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let spec = ScenarioSpec::new("default");
        assert_eq!(spec.package_kind(), PackageKind::MobileEmbedded);
        assert_eq!(spec.policy_spec().name, "thermal-balancing");
        assert_eq!(spec.threshold(), DEFAULT_THRESHOLD);
        let schedule = spec.schedule();
        assert_eq!(schedule.warmup, Seconds::new(8.0));
        assert_eq!(schedule.duration, Seconds::new(20.0));
        assert_eq!(schedule.time_step, Seconds::from_millis(5.0));
        assert_eq!(spec.total_duration(), Seconds::new(28.0));
    }

    #[test]
    fn sweep_expansion_covers_the_grid_in_order() {
        let spec = ScenarioSpec::new("grid").with_sweep(
            SweepSpec::default()
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
                .with_policies(["thermal-balancing", "stop-and-go"])
                .with_thresholds([1.0, 2.0, 3.0]),
        );
        let cases = spec.expand();
        assert_eq!(cases.len(), 12);
        assert_eq!(spec.sweep.as_ref().unwrap().cardinality(), 12);
        // Outermost axis first: the first half is all mobile.
        assert!(cases[..6]
            .iter()
            .all(|c| c.package_kind() == PackageKind::MobileEmbedded));
        // Policies before thresholds.
        assert_eq!(cases[0].policy_spec().name, "thermal-balancing");
        assert_eq!(cases[3].policy_spec().name, "stop-and-go");
        assert_eq!(cases[0].threshold(), 1.0);
        assert_eq!(cases[1].threshold(), 2.0);
        // Expanded specs are concrete and uniquely named.
        let mut names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        assert!(cases.iter().all(|c| c.sweep.is_none()));
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert_eq!(cases[0].name, "grid[mobile/thermal-balancing/t1]");
    }

    #[test]
    fn empty_sweep_axes_behave_like_absent_ones() {
        let spec = ScenarioSpec::new("empty-axis").with_sweep(
            SweepSpec::default()
                .with_thresholds(Vec::new())
                .with_policies(["thermal-balancing", "stop-and-go"]),
        );
        // The empty thresholds axis must not wipe out the grid, and the two
        // cardinality APIs must agree.
        assert_eq!(spec.expand().len(), 2);
        assert_eq!(spec.sweep.as_ref().unwrap().cardinality(), 2);
        let all_empty = ScenarioSpec::new("all-empty")
            .with_sweep(SweepSpec::default().with_queue_capacities(Vec::new()));
        assert_eq!(all_empty.expand().len(), 1);
        assert_eq!(all_empty.sweep.as_ref().unwrap().cardinality(), 1);
    }

    #[test]
    fn specs_without_sweep_expand_to_themselves() {
        let spec = ScenarioSpec::new("solo").with_policy("stop-and-go", 2.0);
        let cases = spec.expand();
        assert_eq!(cases, vec![spec]);
    }

    #[test]
    fn sweep_carrying_specs_do_not_build() {
        let spec =
            ScenarioSpec::new("x").with_sweep(SweepSpec::default().with_thresholds([1.0, 2.0]));
        assert!(matches!(spec.build(), Err(SimError::Spec(_))));
        let table = ScenarioSpec::analysis("t", AnalysisKind::Table1Power);
        assert!(matches!(table.build(), Err(SimError::Spec(_))));
    }

    #[test]
    fn concrete_specs_build_simulations() {
        let spec = ScenarioSpec::new("buildable")
            .with_package(PackageKind::HighPerformance)
            .with_policy("dvfs-only", 2.0)
            .with_workload(WorkloadDecl::sdr_with_queue(11))
            .with_schedule(0.5, 1.0);
        let sim = spec.build().expect("spec builds");
        assert_eq!(sim.platform().num_cores(), 3);
        assert_eq!(sim.policy_name(), "dvfs-only");
        assert_eq!(sim.config().metrics_threshold, 2.0);
    }

    #[test]
    fn workload_decl_variants() {
        let sdr = WorkloadDecl::default().to_workload().unwrap();
        assert!(matches!(sdr, Workload::Sdr(_)));
        let synthetic = WorkloadDecl {
            kind: Some(WorkloadKind::Synthetic),
            num_tasks: Some(5),
            num_cores: Some(2),
            ..WorkloadDecl::default()
        }
        .to_workload()
        .unwrap();
        match synthetic {
            Workload::Synthetic(spec) => {
                assert_eq!(spec.num_tasks, 5);
                assert_eq!(spec.num_cores, 2);
            }
            other => panic!("expected synthetic, got {other:?}"),
        }
        assert!(matches!(
            WorkloadDecl {
                kind: Some(WorkloadKind::Idle),
                ..WorkloadDecl::default()
            }
            .to_workload()
            .unwrap(),
            Workload::Idle
        ));
    }

    #[test]
    fn generated_workload_kinds_resolve_by_registry_name() {
        let video = WorkloadDecl::of_kind(WorkloadKind::VideoAnalytics)
            .to_workload()
            .unwrap();
        match video {
            Workload::Generated { generator, .. } => assert_eq!(generator, "video-analytics"),
            other => panic!("expected generated workload, got {other:?}"),
        }
        let mut decl = WorkloadDecl::of_kind(WorkloadKind::Dag);
        decl.seed = Some(7);
        decl.queue_capacity = Some(6);
        match decl.to_workload().unwrap() {
            Workload::Generated { generator, params } => {
                assert_eq!(generator, "dag");
                assert_eq!(params.seed, 7);
                assert_eq!(params.queue_capacity, Some(6));
            }
            other => panic!("expected generated workload, got {other:?}"),
        }
        // A custom generator name takes precedence over the kind.
        let custom = WorkloadDecl {
            kind: Some(WorkloadKind::Sdr),
            generator: Some("my-workload".into()),
            ..WorkloadDecl::default()
        };
        assert_eq!(custom.label(), "my-workload");
        match custom.to_workload().unwrap() {
            Workload::Generated { generator, .. } => assert_eq!(generator, "my-workload"),
            other => panic!("expected generated workload, got {other:?}"),
        }
        assert_eq!(WorkloadDecl::default().label(), "sdr");
        assert_eq!(
            WorkloadDecl::of_kind(WorkloadKind::VideoAnalytics).label(),
            "video-analytics"
        );
        assert_eq!(ScenarioSpec::new("x").workload_label(), "sdr");
    }

    #[test]
    fn video_and_dag_scenarios_build_from_toml_only() {
        let spec: ScenarioSpec = toml::from_str(
            r#"
            name = "video"

            [workload]
            kind = "VideoAnalytics"
            seed = 99

            [workload.video]
            streams = 2
            detect_load = 0.4

            [schedule]
            warmup = 0.2
            duration = 0.5
            "#,
        )
        .expect("valid TOML");
        let decl = spec.workload.as_ref().unwrap();
        assert_eq!(decl.video.as_ref().unwrap().streams, Some(2));
        let sim = spec.build().expect("video scenario builds");
        assert!(sim.pipeline().is_some());
        assert_eq!(sim.os().tasks().len(), 9);

        let spec: ScenarioSpec = toml::from_str(
            r#"
            name = "dag"

            [workload]
            kind = "Dag"

            [workload.dag]
            depth = 2
            width = 2
            arrivals = "Bursty"
            burst = 3

            [schedule]
            warmup = 0.2
            duration = 0.5
            "#,
        )
        .expect("valid TOML");
        let sim = spec.build().expect("dag scenario builds");
        assert_eq!(sim.os().tasks().len(), 6);
        // The spec round-trips through TOML with its knob tables intact.
        let text = spec.to_toml_string();
        let reparsed = ScenarioSpec::from_toml_str(&text).unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn workload_and_seed_axes_expand_the_grid() {
        let spec = ScenarioSpec::new("matrix").with_sweep(
            SweepSpec::default()
                .with_workloads([WorkloadKind::Sdr, WorkloadKind::Dag])
                .with_policies(["thermal-balancing", "stop-and-go"])
                .with_seeds([1, 2, 3]),
        );
        let cases = spec.expand();
        assert_eq!(cases.len(), 12);
        assert_eq!(spec.sweep.as_ref().unwrap().cardinality(), 12);
        // Workloads are an outer axis relative to policies and seeds.
        assert_eq!(cases[0].name, "matrix[sdr/thermal-balancing/s1]");
        assert!(cases[..6].iter().all(|c| c.workload_label() == "sdr"));
        assert!(cases[6..].iter().all(|c| c.workload_label() == "dag"));
        // Seeds land in the workload declaration.
        assert_eq!(cases[1].workload.as_ref().unwrap().seed, Some(2));
        // All names are unique and concrete.
        let mut names: Vec<&str> = cases.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
        assert!(cases.iter().all(|c| c.sweep.is_none()));
    }

    #[test]
    fn trace_interval_zero_disables_tracing() {
        let schedule = ScheduleSpec {
            trace_interval_ms: Some(0.0),
            ..ScheduleSpec::default()
        }
        .resolve();
        assert_eq!(schedule.trace_interval, None);
    }
}
