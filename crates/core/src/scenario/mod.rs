//! The declarative Scenario API.
//!
//! This module turns the reproduction into a data-driven experiment
//! platform. Three pieces cooperate:
//!
//! 1. [`ScenarioSpec`] — a serde-serializable description of one experiment
//!    (platform, thermal package, workload, policy, schedule), optionally
//!    carrying [`SweepSpec`] axes that expand a single spec into a grid of
//!    concrete runs (e.g. threshold × package × policy). TOML and JSON specs
//!    round-trip; the workspace ships the whole paper as TOML files under
//!    `scenarios/`.
//! 2. [`PolicyRegistry`] — a name → factory registry resolving the policy
//!    names specs use. The paper's four policies are built in; third-party
//!    policies register without touching core code.
//! 3. [`Runner`] — expands and executes a batch of scenarios (in parallel by
//!    default, one simulation per worker) and returns a [`BatchReport`] of
//!    structured [`RunReport`]s with JSON/CSV emission. Report order follows
//!    expansion order, so parallel and sequential execution produce
//!    byte-identical reports.
//!
//! Two further pieces make large sweeps cheap to re-run and distributable
//! across processes:
//!
//! 4. [`ScenarioHash`] + [`RunCache`] — a concrete (post-expansion) spec has
//!    a stable content hash of its semantic fields; a cache ([`FsCache`] on
//!    disk, [`MemCache`] in process) memoizes each run's report under that
//!    hash, so a warm re-run of a sweep performs zero simulations
//!    ([`Runner::with_cache`]).
//! 5. [`ShardPlan`] + [`PartialReport`] — a batch splits into `K` contiguous
//!    shards executed by independent workers ([`Runner::run_shard`]);
//!    [`PartialReport::merge`] reassembles the partials into a
//!    [`BatchReport`] byte-identical to a single-process run.
//! 6. [`expand_work`] + [`BatchAssembler`] (the [`queue`] module) — the
//!    lease-friendly view of the same expansion: an indexed work list plus an
//!    out-of-order, duplicate-tolerant collector. These are the building
//!    blocks of the `tbp-sweepd` coordinator/worker service
//!    (`docs/DISTRIBUTED.md`).
//!
//! The spec → expand → run → report pipeline, and where the cache and shard
//! layers sit in it, is drawn out in `docs/ARCHITECTURE.md`; the TOML schema
//! specs are written in is documented field by field in
//! `docs/SCENARIO_FORMAT.md`.
//!
//! # Example
//!
//! ```
//! use tbp_core::scenario::{Runner, ScenarioSpec, SweepSpec};
//! use tbp_thermal::package::PackageKind;
//!
//! # fn main() -> Result<(), tbp_core::SimError> {
//! // Figures 7+8 in four lines: three policies × four thresholds.
//! let spec = ScenarioSpec::new("fig7")
//!     .with_package(PackageKind::MobileEmbedded)
//!     .with_schedule(0.5, 1.0) // short for the doc test; the paper uses 8+20 s
//!     .with_sweep(
//!         SweepSpec::default()
//!             .with_policies(["thermal-balancing", "energy-balancing"])
//!             .with_thresholds([2.0, 4.0]),
//!     );
//! let batch = Runner::new().run_spec(&spec)?;
//! assert_eq!(batch.len(), 4);
//! println!("{}", batch.to_csv());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod hash;
pub mod queue;
pub mod registry;
pub mod runner;
pub mod shard;
pub mod spec;

pub use cache::{CacheMetrics, FsCache, MemCache, RunCache};
pub use hash::{canonical_json, ScenarioHash, HASH_DOMAIN, HASH_DOMAIN_PHASED};
pub use queue::{expand_work, BatchAssembler, WorkItem};
pub use registry::{PolicyFactory, PolicyRegistry};
pub use runner::{
    batch_digest, BatchReport, RunOutcome, RunReport, Runner, RunnerMetrics, RunnerStats,
    TableReport,
};
pub use shard::{PartialReport, ShardPlan};
pub use spec::{
    package_label, workload_kind_label, AnalysisKind, PhaseSpec, PlatformSpec, PolicySpec,
    ResolvedSchedule, ScenarioSpec, ScheduleSpec, SpecDelta, SweepSpec, TraceSpec, WorkloadDecl,
    WorkloadKind, DEFAULT_THRESHOLD,
};

use crate::error::SimError;
use std::path::Path;

/// Loads one scenario from a TOML file.
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the file cannot be read or parsed.
pub fn load_toml_file(path: impl AsRef<Path>) -> Result<ScenarioSpec, SimError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Spec(format!("cannot read {}: {e}", path.display())))?;
    ScenarioSpec::from_toml_str(&text)
        .map_err(|e| SimError::Spec(format!("{}: {e}", path.display())))
}

/// Loads every `*.toml` scenario in a directory, sorted by file name (the
/// shipped files use numeric prefixes to fix the paper's order).
///
/// # Errors
///
/// Returns [`SimError::Spec`] when the directory cannot be read or any file
/// fails to parse.
pub fn load_dir(path: impl AsRef<Path>) -> Result<Vec<ScenarioSpec>, SimError> {
    let path = path.as_ref();
    let entries = std::fs::read_dir(path)
        .map_err(|e| SimError::Spec(format!("cannot read {}: {e}", path.display())))?;
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    files.into_iter().map(load_toml_file).collect()
}
