//! Builder wiring the platform, thermal model, OS, workload and policy into a
//! runnable [`Simulation`].

use tbp_arch::freq::DvfsScale;
use tbp_arch::platform::{MpsocPlatform, PlatformConfig};
use tbp_os::migration::MigrationStrategy;
use tbp_os::mpos::Mpos;
use tbp_streaming::pipeline::PipelineRuntime;
use tbp_streaming::sdr::SdrBenchmark;
use tbp_streaming::workload::{SyntheticWorkload, WorkloadSpec};
use tbp_streaming::workloads::{WorkloadParams, WorkloadRegistry};
use tbp_thermal::package::Package;
use tbp_thermal::solver::SolverKind;
use tbp_thermal::{SensorBank, ThermalModel};

use std::sync::Arc;

use crate::error::SimError;
use crate::policy::Policy;
use crate::scenario::registry::PolicyRegistry;
use crate::scenario::spec::PolicySpec;
use crate::sim::{Simulation, SimulationConfig};

/// The application the simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// The paper's Software Defined Radio benchmark (with its pipeline and
    /// frame deadlines).
    Sdr(SdrBenchmark),
    /// A synthetic task set without a pipeline (no QoS accounting).
    Synthetic(WorkloadSpec),
    /// A workload resolved by name through a
    /// [`WorkloadRegistry`] at build time — the route
    /// every scenario-file workload (including `video-analytics` and `dag`)
    /// takes, and the extension point for third-party generators.
    Generated {
        /// Registry name of the generator (e.g. `"video-analytics"`).
        generator: String,
        /// The generator's knobs (boxed: the knob tables dwarf the other
        /// variants). The builder overrides [`WorkloadParams::num_cores`]
        /// with the actual platform core count, so placements always target
        /// the platform being built.
        params: Box<WorkloadParams>,
    },
    /// No tasks at all (idle platform; useful for calibration).
    Idle,
}

impl Workload {
    /// The paper's SDR benchmark with default parameters.
    pub fn sdr() -> Self {
        Workload::Sdr(SdrBenchmark::paper_default())
    }

    /// A registry-resolved workload by name with default knobs.
    pub fn generated(generator: impl Into<String>) -> Self {
        Workload::Generated {
            generator: generator.into(),
            params: Box::new(WorkloadParams::default()),
        }
    }
}

/// Builder for [`Simulation`].
///
/// ```
/// use tbp_core::sim::{SimulationBuilder, builder::Workload};
/// use tbp_thermal::package::Package;
///
/// # fn main() -> Result<(), tbp_core::SimError> {
/// let mut sim = SimulationBuilder::new()
///     .with_package(Package::mobile_embedded())
///     .with_workload(Workload::sdr())
///     .with_threshold(3.0)
///     .build()?;
/// sim.run_for(tbp_arch::units::Seconds::new(1.0))?;
/// # Ok(())
/// # }
/// ```
pub struct SimulationBuilder {
    platform_config: PlatformConfig,
    package: Package,
    solver: SolverKind,
    policy: PolicyChoice,
    registry: Option<Arc<PolicyRegistry>>,
    workload_registry: Option<Arc<WorkloadRegistry>>,
    threshold: f64,
    config: SimulationConfig,
    workload: Workload,
    migration_strategy: MigrationStrategy,
    dvfs_enabled: bool,
}

/// How the builder obtains its policy.
enum PolicyChoice {
    /// The default thermal balancing policy at the builder's threshold.
    Default,
    /// An explicit policy object.
    Boxed(Box<dyn Policy>),
    /// A name resolved through the policy registry at build time.
    Named(PolicySpec),
}

impl SimulationBuilder {
    /// Creates a builder with the paper's defaults: the 3-core platform, the
    /// mobile embedded package, the SDR workload and the thermal balancing
    /// policy at a 3 °C threshold.
    pub fn new() -> Self {
        SimulationBuilder {
            platform_config: PlatformConfig::paper_default(),
            package: Package::mobile_embedded(),
            solver: SolverKind::ForwardEuler,
            policy: PolicyChoice::Default,
            registry: None,
            workload_registry: None,
            threshold: 3.0,
            config: SimulationConfig::paper_default(),
            workload: Workload::sdr(),
            migration_strategy: MigrationStrategy::TaskReplication,
            dvfs_enabled: true,
        }
    }

    /// Overrides the platform configuration.
    pub fn with_platform(mut self, config: PlatformConfig) -> Self {
        self.platform_config = config;
        self
    }

    /// Overrides the thermal package.
    pub fn with_package(mut self, package: Package) -> Self {
        self.package = package;
        self
    }

    /// Overrides the thermal solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Uses an explicit policy object.
    pub fn with_policy_box(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = PolicyChoice::Boxed(policy);
        self
    }

    /// Uses a policy resolved by name through the policy registry at build
    /// time (the spec's threshold defaults to the builder's threshold).
    pub fn with_policy_spec(mut self, spec: PolicySpec) -> Self {
        self.policy = PolicyChoice::Named(spec);
        self
    }

    /// Uses a registry-resolved policy by bare name.
    pub fn with_policy_name(self, name: impl Into<String>) -> Self {
        self.with_policy_spec(PolicySpec::named(name))
    }

    /// Resolves named policies through `registry` instead of the global
    /// (built-ins only) registry.
    pub fn with_registry(mut self, registry: Arc<PolicyRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Resolves [`Workload::Generated`] names through `registry` instead of
    /// the global (built-ins only) workload registry.
    pub fn with_workload_registry(mut self, registry: Arc<WorkloadRegistry>) -> Self {
        self.workload_registry = Some(registry);
        self
    }

    /// Uses the thermal balancing policy with the given threshold (also sets
    /// the metric band to the same value).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self.config.metrics_threshold = threshold;
        self
    }

    /// Overrides the timing configuration.
    pub fn with_config(mut self, config: SimulationConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the workload.
    pub fn with_workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Overrides the migration back-end strategy.
    pub fn with_migration_strategy(mut self, strategy: MigrationStrategy) -> Self {
        self.migration_strategy = strategy;
        self
    }

    /// Enables or disables the DVFS governor (enabled by default).
    pub fn with_dvfs(mut self, enabled: bool) -> Self {
        self.dvfs_enabled = enabled;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when any layer rejects its configuration.
    pub fn build(self) -> Result<Simulation, SimError> {
        self.config.validate()?;
        let platform = MpsocPlatform::new(self.platform_config.clone())?;
        let thermal = ThermalModel::with_solver(platform.floorplan(), self.package, self.solver)?;
        let sensors = SensorBank::paper_default(platform.num_cores());
        let scale: DvfsScale = self.platform_config.dvfs.clone();
        let mut os = Mpos::new(platform.num_cores(), scale)
            .with_strategy(self.migration_strategy)
            .with_dvfs(self.dvfs_enabled);

        let pipeline = match &self.workload {
            Workload::Sdr(sdr) => {
                let descriptors = sdr.tasks();
                let placement = sdr.initial_placement();
                let mut ids = Vec::with_capacity(descriptors.len());
                for (descriptor, core) in descriptors.into_iter().zip(placement) {
                    ids.push(os.spawn(descriptor, core)?);
                }
                let graph = sdr.build_graph(&ids)?;
                Some(PipelineRuntime::new(graph, *sdr.pipeline_config())?)
            }
            Workload::Synthetic(spec) => {
                let workload = SyntheticWorkload::generate(spec)?;
                for (descriptor, core) in workload.tasks.into_iter().zip(workload.placement) {
                    os.spawn(descriptor, core)?;
                }
                None
            }
            Workload::Generated { generator, params } => {
                let registry = self
                    .workload_registry
                    .clone()
                    .unwrap_or_else(WorkloadRegistry::global);
                // Placements must target the platform actually being built,
                // whatever core count the params carried.
                let params = WorkloadParams {
                    num_cores: platform.num_cores(),
                    ..(**params).clone()
                };
                let generated = registry.generate(generator, &params)?;
                let mut ids = Vec::with_capacity(generated.tasks.len());
                for (descriptor, core) in generated.tasks.into_iter().zip(generated.placement) {
                    ids.push(os.spawn(descriptor, core)?);
                }
                match generated.pipeline {
                    Some(plan) => {
                        let graph = plan.instantiate(&ids)?;
                        Some(
                            PipelineRuntime::new(graph, plan.config)?
                                .with_arrivals(plan.arrivals)?,
                        )
                    }
                    None => None,
                }
            }
            Workload::Idle => None,
        };

        let registry = self.registry.unwrap_or_else(PolicyRegistry::global);
        let policy = match self.policy {
            PolicyChoice::Boxed(policy) => policy,
            PolicyChoice::Named(mut spec) => {
                if spec.threshold.is_none() {
                    spec.threshold = Some(self.threshold);
                }
                registry.instantiate(&spec)?
            }
            PolicyChoice::Default => registry.instantiate(
                &PolicySpec::named("thermal-balancing").with_threshold(self.threshold),
            )?,
        };

        let mut sim = Simulation::from_parts(
            platform,
            thermal,
            sensors,
            os,
            pipeline,
            policy,
            self.config,
        );
        // Live reconfiguration (`Simulation::apply_delta`) must resolve
        // policy swaps through the same registry the simulation was built
        // with, or custom policies would be reachable at build time but not
        // at run time.
        sim.set_policy_registry(registry);
        Ok(sim)
    }
}

impl Default for SimulationBuilder {
    fn default() -> Self {
        SimulationBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::units::Seconds;

    #[test]
    fn default_builder_builds_the_sdr_setup() {
        let sim = SimulationBuilder::default().build().unwrap();
        assert_eq!(sim.platform().num_cores(), 3);
        assert!(sim.pipeline().is_some());
        assert_eq!(sim.os().tasks().len(), 6);
        assert_eq!(sim.policy_name(), "thermal-balancing");
    }

    #[test]
    fn synthetic_workload_has_no_pipeline() {
        let sim = SimulationBuilder::new()
            .with_workload(Workload::Synthetic(WorkloadSpec::default_mixed()))
            .build()
            .unwrap();
        assert!(sim.pipeline().is_none());
        assert_eq!(sim.os().tasks().len(), 8);
    }

    #[test]
    fn idle_workload_builds_and_runs() {
        let mut sim = SimulationBuilder::new()
            .with_workload(Workload::Idle)
            .with_package(Package::high_performance())
            .build()
            .unwrap();
        sim.run_for(Seconds::new(1.0)).unwrap();
        assert!(sim.os().tasks().is_empty());
        // Idle platform stays near ambient.
        let temps = sim.core_temperatures();
        assert!(temps[0].as_celsius() < 55.0);
    }

    #[test]
    fn generated_workloads_build_through_the_registry() {
        let sim = SimulationBuilder::new()
            .with_workload(Workload::generated("video-analytics"))
            .build()
            .unwrap();
        assert!(sim.pipeline().is_some());
        // 4 chain stages plus the pinned telemetry task.
        assert_eq!(sim.os().tasks().len(), 5);
        let sim = SimulationBuilder::new()
            .with_workload(Workload::generated("dag"))
            .with_platform(PlatformConfig::paper_default().with_cores(4))
            .build()
            .unwrap();
        // source + 3×3 branch stages + sink, placed on the 4-core platform.
        assert_eq!(sim.os().tasks().len(), 11);
        assert!(sim.os().tasks().iter().all(|t| t.core().index() < 4));
        let err = SimulationBuilder::new()
            .with_workload(Workload::generated("not-a-workload"))
            .build();
        assert!(matches!(err, Err(SimError::Stream(_))));
    }

    #[test]
    fn invalid_config_is_rejected_at_build_time() {
        let result = SimulationBuilder::new()
            .with_config(SimulationConfig {
                time_step: Seconds::ZERO,
                ..SimulationConfig::paper_default()
            })
            .build();
        assert!(result.is_err());
        let result = SimulationBuilder::new()
            .with_platform(PlatformConfig::paper_default().with_cores(0))
            .build();
        assert!(result.is_err());
    }

    #[test]
    fn builder_options_are_applied() {
        let sim = SimulationBuilder::new()
            .with_platform(PlatformConfig::paper_default().with_cores(4))
            .with_solver(SolverKind::RungeKutta4)
            .with_migration_strategy(MigrationStrategy::TaskRecreation)
            .with_dvfs(false)
            .with_threshold(2.0)
            .build()
            .unwrap();
        assert_eq!(sim.platform().num_cores(), 4);
        assert_eq!(sim.thermal().solver_kind(), SolverKind::RungeKutta4);
        assert_eq!(
            sim.os().migration().strategy(),
            MigrationStrategy::TaskRecreation
        );
        assert_eq!(sim.config().metrics_threshold, 2.0);
    }
}
