//! Batched multi-lane stepping of simulations that share a platform.
//!
//! A [`LaneBatch`] holds N complete [`Simulation`]s (one per *lane*) whose
//! thermal platforms are identical — same floorplan, package, and solver —
//! and steps them in lockstep within one process. Each step runs every
//! lane's pre-thermal phases (OS, streaming, platform, power snapshot), then
//! integrates all N thermal networks at once through the struct-of-arrays
//! [`ThermalLaneKernel`], and finally runs every lane's post-thermal phases
//! (sensors, policy, trace).
//!
//! The batching is *observationally invisible*: each lane produces
//! bit-identical temperatures, summaries, and trace bytes to running its
//! simulation alone, because the lane kernel performs per lane the exact
//! same floating-point operations in the exact same order as the scalar
//! path, and every other phase runs unchanged on the lane's own state. The
//! differential suite in `crates/core/tests/lane_equivalence.rs` pins this
//! down across lanes × workload × solver × policy.

use tbp_arch::units::Seconds;
use tbp_thermal::lanes::ThermalLaneKernel;

use crate::error::SimError;
use crate::sim::Simulation;

/// A rejected [`LaneBatch::new`] call: the error and the untouched
/// simulations, handed back so callers can fall back to stepping them
/// individually.
#[derive(Debug)]
pub struct LaneBatchBuildError {
    /// The simulations passed to [`LaneBatch::new`], unmodified.
    pub sims: Vec<Simulation>,
    /// Why the batch could not be formed.
    pub source: SimError,
}

impl std::fmt::Display for LaneBatchBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot form lane batch: {}", self.source)
    }
}

impl std::error::Error for LaneBatchBuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// N simulations sharing one thermal platform, stepped in lockstep.
///
/// ```
/// use tbp_core::sim::builder::Workload;
/// use tbp_core::sim::{LaneBatch, SimulationBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sims = (0..4)
///     .map(|_| SimulationBuilder::new().with_workload(Workload::sdr()).build())
///     .collect::<Result<Vec<_>, _>>()?;
/// let mut batch = LaneBatch::new(sims)?;
/// batch.run_steps(100)?;
/// let mut lanes = batch.into_lanes();
/// assert!(lanes.iter().all(|s| (s.elapsed().as_secs() - 0.5).abs() < 1e-9));
/// let summary = lanes[0].summary();
/// # let _ = summary;
/// # Ok(())
/// # }
/// ```
pub struct LaneBatch {
    lanes: Vec<Simulation>,
    kernel: ThermalLaneKernel,
    dt: Seconds,
}

impl LaneBatch {
    /// Forms a batch over `sims`, one lane per simulation in order.
    ///
    /// All simulations must share the same time step and the same thermal
    /// platform (floorplan topology, package, solver — verified
    /// field-for-field by the lane kernel). Policies, workloads, thresholds,
    /// sensors, and attached trace sinks are free to differ per lane.
    ///
    /// # Errors
    ///
    /// Returns a [`LaneBatchBuildError`] — carrying the simulations back,
    /// untouched — when `sims` is empty, the time steps differ, or the
    /// thermal platforms are not identical.
    pub fn new(sims: Vec<Simulation>) -> Result<Self, LaneBatchBuildError> {
        let Some(first) = sims.first() else {
            return Err(LaneBatchBuildError {
                sims,
                source: SimError::InvalidConfig("a lane batch needs at least one lane".into()),
            });
        };
        let dt = first.config.time_step;
        if let Some(lane) = sims
            .iter()
            .position(|s| s.config.time_step.as_secs().to_bits() != dt.as_secs().to_bits())
        {
            return Err(LaneBatchBuildError {
                sims,
                source: SimError::InvalidConfig(format!(
                    "lane {lane} time step differs from lane 0; \
                     batched stepping needs a shared time step"
                )),
            });
        }
        let models: Vec<_> = sims.iter().map(|s| &s.thermal).collect();
        match ThermalLaneKernel::from_models(&models) {
            Ok(kernel) => Ok(LaneBatch {
                lanes: sims,
                kernel,
                dt,
            }),
            Err(e) => Err(LaneBatchBuildError {
                sims,
                source: SimError::Thermal(e),
            }),
        }
    }

    /// Number of lanes in the batch.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The shared co-simulation time step.
    pub fn time_step(&self) -> Seconds {
        self.dt
    }

    /// Label of the SIMD code path the shared thermal kernel selected at
    /// construction (`"avx512"`, `"avx2"`, or `"scalar"`).
    pub fn simd_label(&self) -> &'static str {
        self.kernel.simd_label()
    }

    /// Read access to one lane's simulation.
    pub fn lane(&self, lane: usize) -> Option<&Simulation> {
        self.lanes.get(lane)
    }

    /// Mutable access to one lane's simulation, e.g. to apply a live
    /// reconfiguration delta at a phase boundary. Mutations must not touch
    /// the thermal platform (the batch keeps its own copy of the thermal
    /// state between steps); [`Simulation::apply_delta`] never does.
    pub fn lane_mut(&mut self, lane: usize) -> Option<&mut Simulation> {
        self.lanes.get_mut(lane)
    }

    /// Dissolves the batch back into its simulations, in lane order, with
    /// all integrated state written back.
    pub fn into_lanes(self) -> Vec<Simulation> {
        self.lanes
    }

    /// Advances every lane by one time step.
    ///
    /// Steady-state calls perform zero heap allocations (pinned by the
    /// counting-allocator test in `crates/core/tests/alloc_free_step.rs`).
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from any lane; a correctly built
    /// batch does not fail.
    pub fn step(&mut self) -> Result<(), SimError> {
        let dt = self.dt;
        let LaneBatch { lanes, kernel, .. } = self;
        // A 1-lane batch gains nothing from the SoA kernel; the scalar step
        // is the same operations (that is the proven equivalence) without
        // the load/sync copies.
        if let [sim] = lanes.as_mut_slice() {
            return sim.step();
        }
        for (lane, sim) in lanes.iter_mut().enumerate() {
            sim.step_pre_thermal(dt)?;
            // Mirror the scalar path's power injection into the lane's own
            // network (keeps the model bit-identical field-for-field), then
            // load the same vector into the batched kernel.
            sim.thermal
                .load_block_powers(sim.scratch.power.per_block())?;
            kernel.set_block_powers(lane, sim.scratch.power.per_block())?;
        }
        kernel.advance(dt)?;
        for (lane, sim) in lanes.iter_mut().enumerate() {
            sim.thermal.sync_from_lane(kernel, lane, dt)?;
            sim.step_post_thermal(dt)?;
        }
        Ok(())
    }

    /// Advances every lane by `steps` time steps.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] from any lane.
    pub fn run_steps(&mut self, steps: u64) -> Result<(), SimError> {
        for _ in 0..steps {
            self.step()?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for LaneBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneBatch")
            .field("lanes", &self.lanes.len())
            .field("time_step", &self.dt)
            .field("simd", &self.simd_label())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::builder::Workload;
    use crate::sim::{SimulationBuilder, SimulationConfig};
    use tbp_thermal::package::Package;
    use tbp_thermal::solver::SolverKind;

    fn sdr_sim(package: Package, threshold: f64) -> Simulation {
        SimulationBuilder::new()
            .with_package(package)
            .with_workload(Workload::sdr())
            .with_threshold(threshold)
            .with_config(SimulationConfig {
                warmup: Seconds::new(1.0),
                ..SimulationConfig::paper_default()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn empty_and_mismatched_batches_hand_the_sims_back() {
        let err = LaneBatch::new(Vec::new()).unwrap_err();
        assert!(err.sims.is_empty());
        assert!(err.to_string().contains("at least one lane"));

        let a = sdr_sim(Package::mobile_embedded(), 3.0);
        let b = sdr_sim(Package::high_performance(), 3.0);
        let err = LaneBatch::new(vec![a, b]).unwrap_err();
        assert_eq!(err.sims.len(), 2);
        assert!(std::error::Error::source(&err).is_some());

        let a = sdr_sim(Package::mobile_embedded(), 3.0);
        let mut cfg = SimulationConfig::paper_default();
        cfg.warmup = Seconds::new(1.0);
        cfg.time_step = Seconds::from_millis(10.0);
        let b = SimulationBuilder::new()
            .with_workload(Workload::sdr())
            .with_config(cfg)
            .build()
            .unwrap();
        let err = LaneBatch::new(vec![a, b]).unwrap_err();
        assert!(err.to_string().contains("time step"));
    }

    #[test]
    fn batched_lanes_match_individual_runs_bitwise() {
        for solver in [SolverKind::ForwardEuler, SolverKind::RungeKutta4] {
            let build = |threshold: f64| {
                SimulationBuilder::new()
                    .with_package(Package::high_performance())
                    .with_solver(solver)
                    .with_workload(Workload::sdr())
                    .with_threshold(threshold)
                    .with_config(SimulationConfig {
                        warmup: Seconds::new(0.5),
                        ..SimulationConfig::paper_default()
                    })
                    .build()
                    .unwrap()
            };
            let thresholds = [1.0, 2.0, 3.0];
            let mut solo: Vec<Simulation> = thresholds.iter().map(|&t| build(t)).collect();
            for sim in &mut solo {
                sim.run_for(Seconds::new(2.0)).unwrap();
            }
            let mut batch = LaneBatch::new(thresholds.iter().map(|&t| build(t)).collect()).unwrap();
            assert_eq!(batch.num_lanes(), 3);
            assert!(!batch.simd_label().is_empty());
            assert!(format!("{batch:?}").contains("LaneBatch"));
            batch.run_steps(400).unwrap();
            assert!(batch.lane(0).is_some());
            assert!(batch.lane(7).is_none());
            let mut lanes = batch.into_lanes();
            for (lane, (s, b)) in solo.iter_mut().zip(lanes.iter_mut()).enumerate() {
                assert_eq!(s.elapsed(), b.elapsed(), "lane {lane} elapsed");
                for (i, (ts, tb)) in s
                    .core_temperatures()
                    .iter()
                    .zip(b.core_temperatures())
                    .enumerate()
                {
                    assert_eq!(
                        ts.as_celsius().to_bits(),
                        tb.as_celsius().to_bits(),
                        "{solver:?} lane {lane} core {i}"
                    );
                }
                let ss = serde_json::to_string(&s.summary()).unwrap();
                let sb = serde_json::to_string(&b.summary()).unwrap();
                assert_eq!(ss, sb, "{solver:?} lane {lane} summary");
            }
        }
    }
}
