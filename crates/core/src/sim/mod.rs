//! The co-simulation engine.
//!
//! [`Simulation`] closes the loop the paper's emulation platform implements
//! in hardware (Figure 4): the OS layer drives core frequencies and
//! utilisations, the platform converts them into per-block power, the thermal
//! model integrates temperatures, the sensors publish them every 10 ms, and
//! the policy reads the sensors and issues migrations or core halts, which
//! feed back into the OS layer.

pub mod builder;
pub mod lanes;

pub use builder::SimulationBuilder;
pub use lanes::LaneBatch;

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::freq::Frequency;
use tbp_arch::platform::{MpsocPlatform, PowerSnapshot};
use tbp_arch::units::{Celsius, Seconds};
use tbp_obs::metrics::{Counter, MetricsRegistry};
use tbp_obs::{TraceSink, TrackDef, TrackKind};
use tbp_os::mpos::{Mpos, MposStepReport};
use tbp_os::OsError;
use tbp_streaming::pipeline::PipelineRuntime;
use tbp_thermal::{SensorBank, ThermalModel};

use std::sync::Arc;

use crate::error::SimError;
use crate::metrics::{MetricsCollector, QosMetrics, SimulationSummary};
use crate::policy::{
    update_input_means, CoreSnapshot, Policy, PolicyAction, PolicyInput, TaskSnapshot,
};
use crate::scenario::registry::PolicyRegistry;
use crate::scenario::spec::{PolicySpec, SpecDelta};
use crate::trace::{TraceRecorder, TrackSelection};

/// Timing and measurement parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Co-simulation time step. Must not exceed the sensor period.
    pub time_step: Seconds,
    /// Interval between two policy invocations (the paper's platform refreshes
    /// sensors every 10 ms and the policy runs on each refresh).
    pub policy_period: Seconds,
    /// Initial phase during which the policy is not invoked and metrics are
    /// not recorded (the paper lets DVFS stabilise the system for 12.5 s
    /// before enabling thermal balancing).
    pub warmup: Seconds,
    /// Threshold (°C) used by the metrics collector for the time-above/below
    /// band accounting; usually equal to the policy threshold.
    pub metrics_threshold: f64,
    /// Interval between two trace samples; `None` disables tracing.
    pub trace_interval: Option<Seconds>,
    /// Capacity of the in-memory trace recorder. A full buffer decimates
    /// (drops every other retained sample and doubles the effective
    /// interval), so the series always spans the whole run; the default
    /// holds hours of simulated time at the default 100 ms interval.
    pub max_trace_samples: usize,
}

/// Default recorder capacity of [`SimulationConfig::max_trace_samples`].
fn default_max_trace_samples() -> usize {
    200_000
}

impl SimulationConfig {
    /// Default configuration: 5 ms steps, 10 ms policy period, 8 s warm-up,
    /// 3 °C metric band, 100 ms trace samples.
    pub fn paper_default() -> Self {
        SimulationConfig {
            time_step: Seconds::from_millis(5.0),
            policy_period: Seconds::from_millis(10.0),
            warmup: Seconds::new(8.0),
            metrics_threshold: 3.0,
            trace_interval: Some(Seconds::from_millis(100.0)),
            max_trace_samples: default_max_trace_samples(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive periods or a time
    /// step larger than the policy period.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.time_step.is_zero() {
            return Err(SimError::InvalidConfig("time step must be positive".into()));
        }
        if self.policy_period.is_zero() {
            return Err(SimError::InvalidConfig(
                "policy period must be positive".into(),
            ));
        }
        if self.time_step.as_secs() > self.policy_period.as_secs() + 1e-12 {
            return Err(SimError::InvalidConfig(
                "time step must not exceed the policy period".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::paper_default()
    }
}

/// Reusable per-step buffers of a [`Simulation`].
///
/// Every vector the step loop needs lives here and is cleared/refilled in
/// place, so a steady-state step performs **zero heap allocations** (pinned
/// down by the counting-allocator test in
/// `crates/core/tests/alloc_free_step.rs`).
#[derive(Debug)]
struct StepScratch {
    /// OS step report (executed cycles, core loads, completed migrations).
    os_report: MposStepReport,
    /// Block temperatures fed to the platform's power model.
    block_temps: Vec<Celsius>,
    /// Per-block power snapshot fed to the thermal model.
    power: PowerSnapshot,
    /// Core frequencies in MHz for trace samples.
    freqs_mhz: Vec<f64>,
    /// Policy input refreshed in place at every policy invocation.
    policy_input: PolicyInput,
}

impl StepScratch {
    fn new() -> Self {
        StepScratch {
            os_report: MposStepReport::default(),
            block_temps: Vec::new(),
            power: PowerSnapshot::empty(),
            freqs_mhz: Vec::new(),
            policy_input: PolicyInput {
                time: Seconds::ZERO,
                cores: Vec::new(),
                mean_temperature: Celsius::ambient(),
                mean_frequency: Frequency::ZERO,
                migrations_in_flight: 0,
            },
        }
    }
}

/// State of an attached observability sink: the boxed sink, the layout of
/// the track table it was registered with (base track id per selected
/// group), and its own sampling clock, independent of the in-memory
/// recorder's.
struct ObsState {
    sink: Box<dyn TraceSink>,
    interval: Seconds,
    since_last: Seconds,
    /// Base track ids per group; `None` means the group was deselected.
    temps: Option<u16>,
    freqs: Option<u16>,
    migrations: Option<u16>,
    misses: Option<u16>,
    queues: Option<u16>,
    reconfig: Option<u16>,
    num_queues: usize,
}

/// Shared live-metric handles a simulation increments on its hot path.
///
/// All handles are atomic counters from a
/// [`tbp_obs::metrics::MetricsRegistry`]: updating them
/// never allocates (preserving the zero-allocation step guarantee, pinned
/// by `alloc_free_step.rs`) and cloning shares the underlying values, so
/// every lane of a batched run aggregates into the same instruments.
#[derive(Clone, Debug)]
pub struct SimMetrics {
    /// Simulation steps executed (`sim.steps`) — consumers derive aggregate
    /// steps/s from deltas between snapshots.
    pub steps: Counter,
    /// Completed task migrations (`sim.migrations`).
    pub migrations: Counter,
    /// Live reconfigurations applied (`sim.reconfigs`).
    pub reconfigs: Counter,
    /// Trace samples dropped by recorder decimation (`sim.trace_dropped`).
    pub trace_dropped: Counter,
}

impl SimMetrics {
    /// Registers (or re-resolves) the simulation instruments in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        SimMetrics {
            steps: registry.counter("sim.steps"),
            migrations: registry.counter("sim.migrations"),
            reconfigs: registry.counter("sim.reconfigs"),
            trace_dropped: registry.counter("sim.trace_dropped"),
        }
    }
}

/// The assembled co-simulation.
///
/// Build one with [`SimulationBuilder`]; see the
/// [crate-level documentation](crate) for an end-to-end example.
pub struct Simulation {
    platform: MpsocPlatform,
    thermal: ThermalModel,
    sensors: SensorBank,
    os: Mpos,
    pipeline: Option<PipelineRuntime>,
    policy: Box<dyn Policy>,
    config: SimulationConfig,
    metrics: MetricsCollector,
    trace: TraceRecorder,
    obs: Option<ObsState>,
    scratch: StepScratch,
    elapsed: Seconds,
    since_policy: Seconds,
    policy_enabled: bool,
    actions_applied: u64,
    /// Registry live reconfiguration resolves policy swaps through (the
    /// global built-ins unless the builder or runner installed another one).
    registry: Arc<PolicyRegistry>,
    reconfigs_applied: u64,
    sim_metrics: Option<SimMetrics>,
    /// Trace-drop total already forwarded to `sim_metrics.trace_dropped`
    /// (the recorder reports a cumulative count; the counter wants deltas).
    dropped_reported: u64,
}

impl Simulation {
    /// Assembles a simulation from explicitly constructed parts.
    ///
    /// [`SimulationBuilder`] is the convenient way to get a simulation; this
    /// constructor is the escape hatch for callers that need full control
    /// over the platform, OS population or pipeline (see the
    /// `custom_pipeline` example).
    pub fn from_parts(
        platform: MpsocPlatform,
        thermal: ThermalModel,
        sensors: SensorBank,
        os: Mpos,
        pipeline: Option<PipelineRuntime>,
        policy: Box<dyn Policy>,
        config: SimulationConfig,
    ) -> Self {
        let num_cores = platform.num_cores();
        let metrics = MetricsCollector::new(num_cores, config.metrics_threshold, config.warmup);
        let trace = match config.trace_interval {
            Some(interval) => TraceRecorder::new(interval, config.max_trace_samples),
            None => TraceRecorder::disabled(),
        };
        Simulation {
            platform,
            thermal,
            sensors,
            os,
            pipeline,
            policy,
            config,
            metrics,
            trace,
            obs: None,
            scratch: StepScratch::new(),
            elapsed: Seconds::ZERO,
            since_policy: Seconds::ZERO,
            policy_enabled: true,
            actions_applied: 0,
            registry: PolicyRegistry::global(),
            reconfigs_applied: 0,
            sim_metrics: None,
            dropped_reported: 0,
        }
    }

    /// Attaches shared live-metric handles: every subsequent step bumps the
    /// step/migration/trace-drop counters and [`apply_delta`](Self::apply_delta)
    /// bumps the reconfiguration counter. Purely additive observability —
    /// simulation behaviour and outputs are unchanged, and the per-step cost
    /// is a handful of relaxed atomic adds (no allocation).
    pub fn attach_metrics(&mut self, metrics: SimMetrics) {
        self.sim_metrics = Some(metrics);
    }

    /// The simulated platform (read-only).
    pub fn platform(&self) -> &MpsocPlatform {
        &self.platform
    }

    /// The thermal model (read-only).
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The OS layer (read-only).
    pub fn os(&self) -> &Mpos {
        &self.os
    }

    /// The streaming pipeline, when the workload has one.
    pub fn pipeline(&self) -> Option<&PipelineRuntime> {
        self.pipeline.as_ref()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.name().to_string()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// The recorded trace.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Attaches an observability sink that receives typed per-subsystem
    /// tracks (temperatures, frequencies, migration/miss counters, queue
    /// depths, reconfiguration events) sampled every `interval`.
    ///
    /// The sink keeps its own sampling clock, independent of the in-memory
    /// [`TraceRecorder`]; the first sample is emitted on the first step after
    /// attachment. Sink feeding reuses the step scratch, so a steady-state
    /// step stays allocation-free even with a file-backed sink attached (the
    /// counting-allocator test pins this down).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] for a non-positive or non-finite interval,
    /// when a sink is already attached, or when the platform needs more
    /// tracks than the format's `u16` track ids can address.
    pub fn attach_trace_sink(
        &mut self,
        mut sink: Box<dyn TraceSink>,
        interval: Seconds,
        selection: TrackSelection,
    ) -> Result<(), SimError> {
        if !interval.as_secs().is_finite() || interval.is_zero() {
            return Err(SimError::Trace(
                "sink sampling interval must be finite and positive".into(),
            ));
        }
        if self.obs.is_some() {
            return Err(SimError::Trace(
                "a trace sink is already attached; detach it first".into(),
            ));
        }
        let num_cores = self.platform.num_cores();
        let num_queues = self.pipeline.as_ref().map(|p| p.num_queues()).unwrap_or(0);
        let secs = interval.as_secs();
        let mut defs: Vec<TrackDef> = Vec::new();
        let base = |defs: &[TrackDef]| -> Result<u16, SimError> {
            u16::try_from(defs.len())
                .map_err(|_| SimError::Trace("track table exceeds u16 track ids".into()))
        };
        let temps = if selection.temperatures {
            let at = base(&defs)?;
            for i in 0..num_cores {
                defs.push(TrackDef::counter(
                    TrackKind::CoreTemperature,
                    i as u32,
                    secs,
                    format!("core{i}.temp_c"),
                ));
            }
            Some(at)
        } else {
            None
        };
        let freqs = if selection.frequencies {
            let at = base(&defs)?;
            for i in 0..num_cores {
                defs.push(TrackDef::counter(
                    TrackKind::CoreFrequency,
                    i as u32,
                    secs,
                    format!("core{i}.freq_mhz"),
                ));
            }
            Some(at)
        } else {
            None
        };
        let migrations = if selection.migrations {
            let at = base(&defs)?;
            defs.push(TrackDef::counter(
                TrackKind::Migrations,
                0,
                secs,
                "migrations",
            ));
            Some(at)
        } else {
            None
        };
        let misses = if selection.deadline_misses {
            let at = base(&defs)?;
            defs.push(TrackDef::counter(
                TrackKind::DeadlineMisses,
                0,
                secs,
                "deadline_misses",
            ));
            Some(at)
        } else {
            None
        };
        let queues = if selection.queue_depths && num_queues > 0 {
            let at = base(&defs)?;
            for j in 0..num_queues {
                defs.push(TrackDef::counter(
                    TrackKind::QueueDepth,
                    j as u32,
                    secs,
                    format!("queue{j}.depth"),
                ));
            }
            Some(at)
        } else {
            None
        };
        let reconfig = if selection.reconfigs {
            let at = base(&defs)?;
            defs.push(TrackDef::event(TrackKind::Reconfig, 0, "reconfig"));
            Some(at)
        } else {
            None
        };
        base(&defs)?; // the full table must still be addressable
        sink.begin(&defs);
        self.obs = Some(ObsState {
            sink,
            interval,
            // The first step after attachment emits a sample immediately.
            since_last: interval,
            temps,
            freqs,
            migrations,
            misses,
            queues,
            reconfig,
            num_queues,
        });
        Ok(())
    }

    /// Detaches the attached observability sink (if any) and finalises it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trace`] when the sink fails to finalise (e.g. an
    /// I/O error flushing a file-backed sink).
    pub fn detach_trace_sink(&mut self) -> Result<(), SimError> {
        match self.obs.take() {
            Some(mut state) => state
                .sink
                .finish()
                .map_err(|e| SimError::Trace(e.to_string())),
            None => Ok(()),
        }
    }

    /// Whether an observability sink is currently attached.
    pub fn has_trace_sink(&self) -> bool {
        self.obs.is_some()
    }

    /// Number of policy actions applied so far.
    pub fn actions_applied(&self) -> u64 {
        self.actions_applied
    }

    /// Enables or disables policy invocation (the warm-up phase disables it
    /// implicitly; this switch allows experiments that never enable it).
    pub fn set_policy_enabled(&mut self, enabled: bool) {
        self.policy_enabled = enabled;
    }

    /// Latest sensor readings (core temperatures).
    pub fn core_temperatures(&self) -> Vec<Celsius> {
        self.sensors.readings().to_vec()
    }

    /// Borrowed form of [`core_temperatures`](Self::core_temperatures): the
    /// latest sensor readings without copying them.
    pub fn sensor_readings(&self) -> &[Celsius] {
        self.sensors.readings()
    }

    /// Advances the simulation by one time step.
    ///
    /// Every buffer the step needs lives in the simulation's internal step
    /// scratch and is reused across calls: once warmed up, a steady-state
    /// step performs no heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates configuration mismatches between the layers as [`SimError`];
    /// a correctly built simulation does not fail.
    pub fn step(&mut self) -> Result<(), SimError> {
        let dt = self.config.time_step;
        self.step_pre_thermal(dt)?;
        self.thermal.step(self.scratch.power.per_block(), dt)?;
        self.step_post_thermal(dt)
    }

    /// Phases 1–4a of [`step`](Self::step): OS, streaming, platform, and the
    /// per-block power snapshot — everything up to (but excluding) the
    /// thermal integration. After this returns, `scratch.power` holds the
    /// power vector to integrate. Split out so the lane-batched engine
    /// ([`lanes::LaneBatch`]) can interleave the thermal solve of many
    /// simulations between identical pre/post halves.
    fn step_pre_thermal(&mut self, dt: Seconds) -> Result<(), SimError> {
        // 1. OS: frequencies, utilisations, checkpoints, migrations.
        self.os
            .step_into(&mut self.platform, dt, &mut self.scratch.os_report)?;

        // 2. Streaming: convert executed cycles into frames and deadlines.
        if let Some(pipeline) = &mut self.pipeline {
            pipeline.step(dt, &self.scratch.os_report.executed_cycles);
        }

        // 3. Platform: cache traffic and bus contention.
        self.platform.step(dt);

        // 4. Thermal: inject per-block power at the current temperatures.
        self.thermal
            .block_temperatures_into(&mut self.scratch.block_temps);
        self.platform
            .power_snapshot_into(&self.scratch.block_temps, &mut self.scratch.power);
        Ok(())
    }

    /// Phases 5–8 of [`step`](Self::step): sensors, migration accounting,
    /// policy, trace, and the elapsed-time advance — everything after the
    /// thermal integration.
    fn step_post_thermal(&mut self, dt: Seconds) -> Result<(), SimError> {
        // 5. Sensors.
        if self.sensors.tick(dt) {
            self.sensors.sample(&self.thermal)?;
            self.metrics.record_temperatures(
                self.elapsed,
                self.sensors.period(),
                self.sensors.readings(),
            );
        }

        // 6. Migration accounting.
        for done in &self.scratch.os_report.completed_migrations {
            self.metrics
                .record_migrations(1, done.bytes, done.freeze_time);
        }

        // 7. Policy.
        self.since_policy += dt;
        if self.policy_enabled
            && self.elapsed.as_secs() >= self.config.warmup.as_secs()
            && self.since_policy.as_secs() + 1e-12 >= self.config.policy_period.as_secs()
        {
            self.since_policy = Seconds::ZERO;
            build_policy_input_into(
                &self.platform,
                &self.os,
                &self.sensors,
                self.elapsed,
                &mut self.scratch.policy_input,
            )?;
            let actions = self.policy.decide(&self.scratch.policy_input);
            for action in actions {
                self.apply_action(action)?;
            }
        }

        // 8. Trace: the in-memory recorder and an attached sink keep
        // independent sampling clocks but share the scratch refresh.
        let legacy_due = self.trace.tick(dt);
        let obs_due = match &mut self.obs {
            Some(state) => {
                state.since_last += dt;
                if state.since_last.as_secs() + 1e-12 >= state.interval.as_secs() {
                    state.since_last = Seconds::ZERO;
                    true
                } else {
                    false
                }
            }
            None => false,
        };
        if legacy_due || obs_due {
            self.scratch.freqs_mhz.clear();
            self.scratch
                .freqs_mhz
                .extend(self.platform.cores().iter().map(|c| c.frequency().as_mhz()));
            let migrations = self.os.migration().totals().migrations;
            let deadline_misses = self
                .pipeline
                .as_ref()
                .map(|p| p.qos().deadline_misses)
                .unwrap_or(0);
            if legacy_due {
                self.trace.record_borrowed(
                    self.elapsed,
                    self.sensors.readings(),
                    &self.scratch.freqs_mhz,
                    migrations,
                    deadline_misses,
                );
            }
            if obs_due {
                if let Some(state) = &mut self.obs {
                    let t = self.elapsed.as_secs();
                    if let Some(base) = state.temps {
                        for (i, temp) in self.sensors.readings().iter().enumerate() {
                            state.sink.counter(base + i as u16, t, temp.as_celsius());
                        }
                    }
                    if let Some(base) = state.freqs {
                        for (i, mhz) in self.scratch.freqs_mhz.iter().enumerate() {
                            state.sink.counter(base + i as u16, t, *mhz);
                        }
                    }
                    if let Some(id) = state.migrations {
                        state.sink.counter(id, t, migrations as f64);
                    }
                    if let Some(id) = state.misses {
                        state.sink.counter(id, t, deadline_misses as f64);
                    }
                    if let (Some(base), Some(pipeline)) = (state.queues, self.pipeline.as_ref()) {
                        for j in 0..state.num_queues {
                            if let Some(level) = pipeline.edge_queue_level(j) {
                                state.sink.counter(base + j as u16, t, level as f64);
                            }
                        }
                    }
                }
            }
        }

        // 9. Live metrics: a handful of relaxed atomic adds when attached.
        if let Some(metrics) = &self.sim_metrics {
            metrics.steps.inc();
            let migrated = self.scratch.os_report.completed_migrations.len() as u64;
            if migrated > 0 {
                metrics.migrations.add(migrated);
            }
            let dropped = self.trace.dropped();
            if dropped > self.dropped_reported {
                metrics.trace_dropped.add(dropped - self.dropped_reported);
                self.dropped_reported = dropped;
            }
        }

        self.elapsed += dt;
        Ok(())
    }

    /// Runs the simulation for `duration` of simulated time.
    ///
    /// The step count is computed epsilon-robustly: a duration whose
    /// quotient by the time step lands a few ULPs above an integer (e.g.
    /// `0.035 / 0.005 = 7.000000000000001`) runs the nominal number of steps
    /// instead of overshooting by one and skewing elapsed-time-normalised
    /// metrics.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by [`step`](Self::step).
    pub fn run_for(&mut self, duration: Seconds) -> Result<(), SimError> {
        for _ in 0..step_count(duration, self.config.time_step) {
            self.step()?;
        }
        Ok(())
    }

    /// Applies a live reconfiguration to the *running* simulation: swap the
    /// active policy (resolved through the installed
    /// [`PolicyRegistry`]), retune the balancing threshold, and change the
    /// policy/sensor periods — all without disturbing thermal or OS state.
    ///
    /// Semantics, in application order:
    ///
    /// 1. **Policy swap** — a fresh instance is built from the registry; when
    ///    the delta carries no threshold the new policy inherits the current
    ///    metric-band threshold.
    /// 2. **Threshold** — applied in place via [`Policy::set_threshold`]
    ///    (keeping cooldown timers and counters) when the policy supports
    ///    it; the metric band follows either way.
    /// 3. **Policy period** — validated against the time step, applied from
    ///    the next policy tick (the elapsed-since-last-invocation clock is
    ///    kept).
    /// 4. **Sensor period** — applied to the sensor bank; readings are never
    ///    discarded.
    ///
    /// The application is recorded as a reconfiguration event in the trace
    /// and counted in the summary's `reconfigs` field.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an empty delta, an unknown policy name, a
    /// non-positive threshold or period, or a policy period smaller than the
    /// time step. A failed delta leaves the simulation unchanged.
    pub fn apply_delta(&mut self, delta: &SpecDelta) -> Result<(), SimError> {
        if delta.is_empty() {
            return Err(SimError::InvalidConfig(
                "a reconfiguration delta must override at least one knob".into(),
            ));
        }
        // Validate everything before touching any state: a rejected delta
        // must not leave the simulation half-reconfigured.
        if let Some(threshold) = delta.threshold {
            if !threshold.is_finite() || threshold <= 0.0 {
                return Err(SimError::InvalidConfig(format!(
                    "reconfigured threshold must be finite and positive (got {threshold})"
                )));
            }
        }
        if let Some(period) = delta.policy_period {
            if !period.as_secs().is_finite() || period.is_zero() {
                return Err(SimError::InvalidConfig(
                    "reconfigured policy period must be positive".into(),
                ));
            }
            if self.config.time_step.as_secs() > period.as_secs() + 1e-12 {
                return Err(SimError::InvalidConfig(
                    "reconfigured policy period must not be smaller than the time step".into(),
                ));
            }
        }
        if let Some(period) = delta.sensor_period {
            if !period.as_secs().is_finite() || period.is_zero() {
                return Err(SimError::InvalidConfig(
                    "reconfigured sensor period must be positive".into(),
                ));
            }
        }
        let new_policy = match &delta.policy {
            Some(name) => {
                let spec = PolicySpec {
                    name: name.clone(),
                    threshold: Some(delta.threshold.unwrap_or(self.config.metrics_threshold)),
                };
                Some(self.registry.instantiate(&spec)?)
            }
            None => None,
        };

        // All checks passed: apply.
        if let Some(policy) = new_policy {
            self.policy = policy;
        } else if let Some(threshold) = delta.threshold {
            // In-place retune keeps the policy's internal state; policies
            // without a threshold simply keep running and only the metric
            // band moves.
            self.policy.set_threshold(threshold);
        }
        if let Some(threshold) = delta.threshold {
            self.config.metrics_threshold = threshold;
            self.metrics.set_threshold(threshold);
        }
        if let Some(period) = delta.policy_period {
            self.config.policy_period = period;
        }
        if let Some(period) = delta.sensor_period {
            self.sensors.set_period(period);
        }
        self.reconfigs_applied += 1;
        self.metrics.record_reconfig();
        if let Some(metrics) = &self.sim_metrics {
            metrics.reconfigs.inc();
        }
        let description = delta.describe();
        if let Some(state) = &mut self.obs {
            if let Some(id) = state.reconfig {
                state.sink.event(id, self.elapsed.as_secs(), &description);
            }
        }
        self.trace.record_reconfig(self.elapsed, description);
        Ok(())
    }

    /// Number of live reconfigurations applied so far.
    pub fn reconfigs_applied(&self) -> u64 {
        self.reconfigs_applied
    }

    /// Installs the registry [`apply_delta`](Self::apply_delta) resolves
    /// policy swaps through (defaults to the global built-ins registry).
    pub fn set_policy_registry(&mut self, registry: Arc<PolicyRegistry>) {
        self.registry = registry;
    }

    /// Produces the summary of everything measured so far.
    pub fn summary(&mut self) -> SimulationSummary {
        let qos = self
            .pipeline
            .as_ref()
            .map(|p| QosMetrics {
                frames_delivered: p.qos().frames_delivered,
                deadline_misses: p.qos().deadline_misses,
                min_queue_level: p.min_queue_level(),
                mean_queue_level: p.mean_queue_level(),
            })
            .unwrap_or_default();
        self.metrics.set_qos(qos);
        let mut summary = self.metrics.summary(self.policy.name(), self.elapsed);
        summary.trace_dropped = self.trace.dropped();
        summary
    }

    fn apply_action(&mut self, action: PolicyAction) -> Result<(), SimError> {
        match action {
            PolicyAction::Migrate { task, to } => {
                match self.os.request_migration(task, to) {
                    Ok(()) => self.actions_applied += 1,
                    // Races between the policy's snapshot and the middleware
                    // state are benign: drop the request.
                    Err(OsError::AlreadyMigrating(_)) | Err(OsError::SameCoreMigration(_)) => {}
                    Err(other) => return Err(other.into()),
                }
            }
            PolicyAction::HaltCore(core) => {
                self.halt_core(core)?;
            }
            PolicyAction::ResumeCore(core) => {
                self.resume_core(core)?;
            }
        }
        Ok(())
    }

    fn halt_core(&mut self, core: CoreId) -> Result<(), SimError> {
        let c = self.platform.core_mut(core)?;
        if c.is_running() {
            c.halt();
            self.metrics.record_halt();
            self.actions_applied += 1;
        }
        Ok(())
    }

    fn resume_core(&mut self, core: CoreId) -> Result<(), SimError> {
        let c = self.platform.core_mut(core)?;
        if !c.is_running() {
            c.resume();
            self.metrics.record_resume();
            self.actions_applied += 1;
        }
        Ok(())
    }
}

/// Number of time steps a run of `duration` takes at step `time_step`,
/// epsilon-robust against float division error in both directions.
///
/// The naive `ceil(duration / time_step)` overshoots by one full step when
/// the quotient lands a few ULPs *above* an integer (`0.1 / 0.005 =
/// 20.000000000000004`), silently extending the run and skewing every
/// elapsed-time-normalised metric. Subtracting a small relative epsilon
/// before the ceil absorbs that error while quotients a few ULPs *below* an
/// integer (`0.1 / 0.001 = 99.99999999999999`) still round up exactly as
/// before. Partial steps remain whole steps: `2.5` steps runs `3`.
pub(crate) fn step_count(duration: Seconds, time_step: Seconds) -> u64 {
    let ratio = duration.as_secs() / time_step.as_secs();
    if !ratio.is_finite() || ratio <= 0.0 {
        return 0;
    }
    (ratio - 1e-9 * ratio.max(1.0)).ceil() as u64
}

/// Refreshes `input` in place from the current platform/OS/sensor state.
///
/// The per-core snapshot vector and each core's task vector are reused
/// across invocations (cleared, capacity retained), so the periodic policy
/// snapshot stops allocating once the task population stabilises. The
/// resulting input is identical — including the floating-point means — to
/// what [`crate::policy::build_input`] produces from freshly collected
/// vectors.
fn build_policy_input_into(
    platform: &MpsocPlatform,
    os: &Mpos,
    sensors: &SensorBank,
    elapsed: Seconds,
    input: &mut PolicyInput,
) -> Result<(), SimError> {
    let num_cores = platform.num_cores();
    if input.cores.len() != num_cores {
        input.cores.clear();
        for i in 0..num_cores {
            input.cores.push(CoreSnapshot {
                id: CoreId(i),
                temperature: Celsius::ambient(),
                frequency: Frequency::ZERO,
                running: true,
                fse_load: 0.0,
                tasks: Vec::new(),
            });
        }
    }
    for (i, snapshot) in input.cores.iter_mut().enumerate() {
        let id = CoreId(i);
        let core = platform.core(id)?;
        snapshot.id = id;
        snapshot.temperature = sensors.reading(id).unwrap_or_else(Celsius::ambient);
        snapshot.frequency = core.configured_frequency();
        snapshot.running = core.is_running();
        snapshot.fse_load = os.fse_load(id);
        snapshot.tasks.clear();
        for &task_id in os.tasks_on_slice(id)? {
            let task = os.task(task_id)?;
            snapshot.tasks.push(TaskSnapshot {
                id: task_id,
                fse_load: task.fse_load(),
                context_size: task.descriptor().context_size,
                migratable: task.descriptor().migratable,
                migrating: os.is_migrating(task_id),
            });
        }
    }
    input.time = elapsed;
    input.migrations_in_flight = os.migration().in_flight().len();
    update_input_means(input);
    Ok(())
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("policy", &self.policy.name())
            .field("elapsed", &self.elapsed)
            .field("cores", &self.platform.num_cores())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DvfsOnlyPolicy;
    use crate::sim::builder::{SimulationBuilder, Workload};
    use tbp_thermal::package::Package;

    fn sdr_simulation(policy: Box<dyn Policy>) -> Simulation {
        SimulationBuilder::new()
            .with_package(Package::high_performance())
            .with_workload(Workload::sdr())
            .with_policy_box(policy)
            .with_config(SimulationConfig {
                warmup: Seconds::new(1.0),
                ..SimulationConfig::paper_default()
            })
            .build()
            .expect("SDR simulation builds")
    }

    #[test]
    fn step_count_is_epsilon_robust_over_awkward_pairs() {
        let count = |d: f64, dt: f64| step_count(Seconds::new(d), Seconds::from_millis(dt * 1e3));
        let quotient = |d: f64, dt: f64| std::hint::black_box(d) / std::hint::black_box(dt);
        // Quotient lands a few ULPs above the integer: 0.035 / 0.005 =
        // 7.000000000000001 — the old ceil ran 8 steps.
        assert!(quotient(0.035, 0.005) > 7.0);
        assert_eq!(count(0.035, 0.005), 7);
        // Same shape at a coarser step: 2.1 / 0.7 = 3.0000000000000004.
        assert!(quotient(2.1, 0.7) > 3.0);
        assert_eq!(count(2.1, 0.7), 3);
        // A few ULPs below the integer must still round *up* to the nominal
        // count: 0.3 / 0.1 = 2.9999999999999996 and 0.7 / 0.1 =
        // 6.999999999999999.
        assert!(quotient(0.3, 0.1) < 3.0);
        assert_eq!(count(0.3, 0.1), 3);
        assert!(quotient(0.7, 0.1) < 7.0);
        assert_eq!(count(0.7, 0.1), 7);
        // Exactly representable quotients are untouched.
        assert_eq!(count(0.1, 0.005), 20);
        assert_eq!(count(28.0, 0.005), 5600);
        // Exact multiples and genuine partial steps are untouched.
        assert_eq!(count(1.0, 0.25), 4);
        assert_eq!(count(1.1, 0.25), 5);
        // Degenerate inputs run nothing.
        assert_eq!(count(0.0, 0.005), 0);
        assert_eq!(count(-1.0, 0.005), 0);
        assert_eq!(step_count(Seconds::new(1.0), Seconds::ZERO), 0);
        // A long run at a fine step keeps the nominal count too.
        assert_eq!(count(3600.0, 0.001), 3_600_000);
    }

    #[test]
    fn run_for_does_not_overshoot_awkward_durations() {
        // 0.035 s at the 5 ms step divides to 7.000000000000001: the old
        // ceil-based count ran one extra step per call and over-reported
        // elapsed time by a full step each time.
        let mut sim = sdr_simulation(Box::new(DvfsOnlyPolicy::new()));
        for _ in 0..10 {
            sim.run_for(Seconds::new(0.035)).unwrap();
        }
        let expected = 10.0 * 0.035;
        assert!(
            (sim.elapsed().as_secs() - expected).abs() < 0.005 - 1e-9,
            "elapsed {} drifted a full step from {expected}",
            sim.elapsed().as_secs()
        );
    }

    #[test]
    fn config_validation() {
        assert!(SimulationConfig::paper_default().validate().is_ok());
        assert!(SimulationConfig::default().validate().is_ok());
        let bad = SimulationConfig {
            time_step: Seconds::ZERO,
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = SimulationConfig {
            policy_period: Seconds::ZERO,
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = SimulationConfig {
            time_step: Seconds::from_millis(50.0),
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn dvfs_only_run_produces_gradient_and_no_misses() {
        let mut sim = sdr_simulation(Box::new(DvfsOnlyPolicy::new()));
        assert_eq!(sim.policy_name(), "dvfs-only");
        sim.run_for(Seconds::new(5.0)).unwrap();
        assert!(sim.elapsed().as_secs() > 4.99);
        let temps = sim.core_temperatures();
        assert_eq!(temps.len(), 3);
        // Core 0 carries the heaviest load at the highest frequency: hottest.
        assert!(temps[0].as_celsius() > temps[2].as_celsius());
        let summary = sim.summary();
        assert_eq!(summary.qos.deadline_misses, 0);
        assert_eq!(summary.migration.migrations, 0);
        assert!(summary.mean_spatial_std_dev() > 0.5);
        assert!(!sim.trace().samples().is_empty());
        assert!(format!("{sim:?}").contains("dvfs-only"));
    }

    #[test]
    fn apply_delta_swaps_policy_and_retunes_knobs_mid_run() {
        let mut sim = sdr_simulation(Box::new(crate::policy::ThermalBalancingPolicy::new(
            tbp_arch::freq::DvfsScale::paper_default(),
            crate::policy::ThermalBalancingConfig::paper_default(),
        )));
        sim.run_for(Seconds::new(1.5)).unwrap();
        let elapsed_before = sim.elapsed();
        let temps_before = sim.core_temperatures();

        // Threshold retune: metric band and policy move, nothing else.
        sim.apply_delta(&SpecDelta::new().with_threshold(1.5))
            .unwrap();
        assert_eq!(sim.config().metrics_threshold, 1.5);
        assert_eq!(sim.reconfigs_applied(), 1);
        // Thermal and OS state are untouched by the delta itself.
        assert_eq!(sim.elapsed(), elapsed_before);
        assert_eq!(sim.core_temperatures(), temps_before);

        // Policy swap resolves through the registry and inherits the current
        // threshold when the delta names none.
        sim.apply_delta(&SpecDelta::new().with_policy("stop-and-go"))
            .unwrap();
        assert_eq!(sim.policy_name(), "stop-and-go");
        // Period changes apply and the simulation keeps running.
        sim.apply_delta(
            &SpecDelta::new()
                .with_policy_period(Seconds::from_millis(20.0))
                .with_sensor_period(Seconds::from_millis(5.0)),
        )
        .unwrap();
        assert_eq!(sim.config().policy_period, Seconds::from_millis(20.0));
        sim.run_for(Seconds::new(0.5)).unwrap();
        assert_eq!(sim.reconfigs_applied(), 3);
        let summary = sim.summary();
        assert_eq!(summary.reconfigs, 3);
        assert_eq!(sim.trace().reconfig_events().len(), 3);
        assert_eq!(
            sim.trace().reconfig_events()[1].description,
            "policy=stop-and-go"
        );
    }

    #[test]
    fn invalid_deltas_are_rejected_without_side_effects() {
        let mut sim = sdr_simulation(Box::new(DvfsOnlyPolicy::new()));
        sim.run_for(Seconds::new(0.2)).unwrap();
        let assert_unchanged = |sim: &Simulation| {
            assert_eq!(sim.policy_name(), "dvfs-only");
            assert_eq!(sim.reconfigs_applied(), 0);
            assert!(sim.trace().reconfig_events().is_empty());
        };
        // Empty delta.
        assert!(sim.apply_delta(&SpecDelta::new()).is_err());
        assert_unchanged(&sim);
        // Unknown policy name.
        assert!(sim
            .apply_delta(&SpecDelta::new().with_policy("not-a-policy"))
            .is_err());
        assert_unchanged(&sim);
        // Unknown policy combined with a valid threshold: the threshold must
        // not be half-applied.
        let before = sim.config().metrics_threshold;
        assert!(sim
            .apply_delta(
                &SpecDelta::new()
                    .with_policy("not-a-policy")
                    .with_threshold(1.0)
            )
            .is_err());
        assert_eq!(sim.config().metrics_threshold, before);
        // Non-positive threshold, non-positive period, period below step.
        assert!(sim
            .apply_delta(&SpecDelta::new().with_threshold(0.0))
            .is_err());
        assert!(sim
            .apply_delta(&SpecDelta::new().with_threshold(f64::NAN))
            .is_err());
        assert!(sim
            .apply_delta(&SpecDelta::new().with_policy_period(Seconds::ZERO))
            .is_err());
        assert!(sim
            .apply_delta(&SpecDelta::new().with_policy_period(Seconds::from_millis(1.0)))
            .is_err());
        assert!(sim
            .apply_delta(&SpecDelta::new().with_sensor_period(Seconds::ZERO))
            .is_err());
        assert_unchanged(&sim);
    }

    #[test]
    fn policy_can_be_disabled() {
        let mut sim = sdr_simulation(Box::new(crate::policy::ThermalBalancingPolicy::new(
            tbp_arch::freq::DvfsScale::paper_default(),
            crate::policy::ThermalBalancingConfig::paper_default(),
        )));
        sim.set_policy_enabled(false);
        sim.run_for(Seconds::new(4.0)).unwrap();
        assert_eq!(sim.summary().migration.migrations, 0);
        assert_eq!(sim.actions_applied(), 0);
    }
}
