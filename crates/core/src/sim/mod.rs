//! The co-simulation engine.
//!
//! [`Simulation`] closes the loop the paper's emulation platform implements
//! in hardware (Figure 4): the OS layer drives core frequencies and
//! utilisations, the platform converts them into per-block power, the thermal
//! model integrates temperatures, the sensors publish them every 10 ms, and
//! the policy reads the sensors and issues migrations or core halts, which
//! feed back into the OS layer.

pub mod builder;

pub use builder::SimulationBuilder;

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::freq::Frequency;
use tbp_arch::platform::{MpsocPlatform, PowerSnapshot};
use tbp_arch::units::{Celsius, Seconds};
use tbp_os::mpos::{Mpos, MposStepReport};
use tbp_os::OsError;
use tbp_streaming::pipeline::PipelineRuntime;
use tbp_thermal::{SensorBank, ThermalModel};

use crate::error::SimError;
use crate::metrics::{MetricsCollector, QosMetrics, SimulationSummary};
use crate::policy::{
    update_input_means, CoreSnapshot, Policy, PolicyAction, PolicyInput, TaskSnapshot,
};
use crate::trace::TraceRecorder;

/// Timing and measurement parameters of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Co-simulation time step. Must not exceed the sensor period.
    pub time_step: Seconds,
    /// Interval between two policy invocations (the paper's platform refreshes
    /// sensors every 10 ms and the policy runs on each refresh).
    pub policy_period: Seconds,
    /// Initial phase during which the policy is not invoked and metrics are
    /// not recorded (the paper lets DVFS stabilise the system for 12.5 s
    /// before enabling thermal balancing).
    pub warmup: Seconds,
    /// Threshold (°C) used by the metrics collector for the time-above/below
    /// band accounting; usually equal to the policy threshold.
    pub metrics_threshold: f64,
    /// Interval between two trace samples; `None` disables tracing.
    pub trace_interval: Option<Seconds>,
}

impl SimulationConfig {
    /// Default configuration: 5 ms steps, 10 ms policy period, 8 s warm-up,
    /// 3 °C metric band, 100 ms trace samples.
    pub fn paper_default() -> Self {
        SimulationConfig {
            time_step: Seconds::from_millis(5.0),
            policy_period: Seconds::from_millis(10.0),
            warmup: Seconds::new(8.0),
            metrics_threshold: 3.0,
            trace_interval: Some(Seconds::from_millis(100.0)),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive periods or a time
    /// step larger than the policy period.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.time_step.is_zero() {
            return Err(SimError::InvalidConfig("time step must be positive".into()));
        }
        if self.policy_period.is_zero() {
            return Err(SimError::InvalidConfig(
                "policy period must be positive".into(),
            ));
        }
        if self.time_step.as_secs() > self.policy_period.as_secs() + 1e-12 {
            return Err(SimError::InvalidConfig(
                "time step must not exceed the policy period".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig::paper_default()
    }
}

/// Reusable per-step buffers of a [`Simulation`].
///
/// Every vector the step loop needs lives here and is cleared/refilled in
/// place, so a steady-state step performs **zero heap allocations** (pinned
/// down by the counting-allocator test in
/// `crates/core/tests/alloc_free_step.rs`).
#[derive(Debug)]
struct StepScratch {
    /// OS step report (executed cycles, core loads, completed migrations).
    os_report: MposStepReport,
    /// Block temperatures fed to the platform's power model.
    block_temps: Vec<Celsius>,
    /// Per-block power snapshot fed to the thermal model.
    power: PowerSnapshot,
    /// Core frequencies in MHz for trace samples.
    freqs_mhz: Vec<f64>,
    /// Policy input refreshed in place at every policy invocation.
    policy_input: PolicyInput,
}

impl StepScratch {
    fn new() -> Self {
        StepScratch {
            os_report: MposStepReport::default(),
            block_temps: Vec::new(),
            power: PowerSnapshot::empty(),
            freqs_mhz: Vec::new(),
            policy_input: PolicyInput {
                time: Seconds::ZERO,
                cores: Vec::new(),
                mean_temperature: Celsius::ambient(),
                mean_frequency: Frequency::ZERO,
                migrations_in_flight: 0,
            },
        }
    }
}

/// The assembled co-simulation.
///
/// Build one with [`SimulationBuilder`]; see the
/// [crate-level documentation](crate) for an end-to-end example.
pub struct Simulation {
    platform: MpsocPlatform,
    thermal: ThermalModel,
    sensors: SensorBank,
    os: Mpos,
    pipeline: Option<PipelineRuntime>,
    policy: Box<dyn Policy>,
    config: SimulationConfig,
    metrics: MetricsCollector,
    trace: TraceRecorder,
    scratch: StepScratch,
    elapsed: Seconds,
    since_policy: Seconds,
    policy_enabled: bool,
    actions_applied: u64,
}

impl Simulation {
    /// Assembles a simulation from explicitly constructed parts.
    ///
    /// [`SimulationBuilder`] is the convenient way to get a simulation; this
    /// constructor is the escape hatch for callers that need full control
    /// over the platform, OS population or pipeline (see the
    /// `custom_pipeline` example).
    pub fn from_parts(
        platform: MpsocPlatform,
        thermal: ThermalModel,
        sensors: SensorBank,
        os: Mpos,
        pipeline: Option<PipelineRuntime>,
        policy: Box<dyn Policy>,
        config: SimulationConfig,
    ) -> Self {
        let num_cores = platform.num_cores();
        let metrics = MetricsCollector::new(num_cores, config.metrics_threshold, config.warmup);
        let trace = match config.trace_interval {
            Some(interval) => TraceRecorder::new(interval, 200_000),
            None => TraceRecorder::disabled(),
        };
        Simulation {
            platform,
            thermal,
            sensors,
            os,
            pipeline,
            policy,
            config,
            metrics,
            trace,
            scratch: StepScratch::new(),
            elapsed: Seconds::ZERO,
            since_policy: Seconds::ZERO,
            policy_enabled: true,
            actions_applied: 0,
        }
    }

    /// The simulated platform (read-only).
    pub fn platform(&self) -> &MpsocPlatform {
        &self.platform
    }

    /// The thermal model (read-only).
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The OS layer (read-only).
    pub fn os(&self) -> &Mpos {
        &self.os
    }

    /// The streaming pipeline, when the workload has one.
    pub fn pipeline(&self) -> Option<&PipelineRuntime> {
        self.pipeline.as_ref()
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> String {
        self.policy.name().to_string()
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Simulated time elapsed so far.
    pub fn elapsed(&self) -> Seconds {
        self.elapsed
    }

    /// The recorded trace.
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// Number of policy actions applied so far.
    pub fn actions_applied(&self) -> u64 {
        self.actions_applied
    }

    /// Enables or disables policy invocation (the warm-up phase disables it
    /// implicitly; this switch allows experiments that never enable it).
    pub fn set_policy_enabled(&mut self, enabled: bool) {
        self.policy_enabled = enabled;
    }

    /// Latest sensor readings (core temperatures).
    pub fn core_temperatures(&self) -> Vec<Celsius> {
        self.sensors.readings().to_vec()
    }

    /// Borrowed form of [`core_temperatures`](Self::core_temperatures): the
    /// latest sensor readings without copying them.
    pub fn sensor_readings(&self) -> &[Celsius] {
        self.sensors.readings()
    }

    /// Advances the simulation by one time step.
    ///
    /// Every buffer the step needs lives in the simulation's internal step
    /// scratch and is reused across calls: once warmed up, a steady-state
    /// step performs no heap allocations.
    ///
    /// # Errors
    ///
    /// Propagates configuration mismatches between the layers as [`SimError`];
    /// a correctly built simulation does not fail.
    pub fn step(&mut self) -> Result<(), SimError> {
        let dt = self.config.time_step;

        // 1. OS: frequencies, utilisations, checkpoints, migrations.
        self.os
            .step_into(&mut self.platform, dt, &mut self.scratch.os_report)?;

        // 2. Streaming: convert executed cycles into frames and deadlines.
        if let Some(pipeline) = &mut self.pipeline {
            pipeline.step(dt, &self.scratch.os_report.executed_cycles);
        }

        // 3. Platform: cache traffic and bus contention.
        self.platform.step(dt);

        // 4. Thermal: inject per-block power at the current temperatures.
        self.thermal
            .block_temperatures_into(&mut self.scratch.block_temps);
        self.platform
            .power_snapshot_into(&self.scratch.block_temps, &mut self.scratch.power);
        self.thermal.step(self.scratch.power.per_block(), dt)?;

        // 5. Sensors.
        if self.sensors.tick(dt) {
            self.sensors.sample(&self.thermal)?;
            self.metrics.record_temperatures(
                self.elapsed,
                self.sensors.period(),
                self.sensors.readings(),
            );
        }

        // 6. Migration accounting.
        for done in &self.scratch.os_report.completed_migrations {
            self.metrics
                .record_migrations(1, done.bytes, done.freeze_time);
        }

        // 7. Policy.
        self.since_policy += dt;
        if self.policy_enabled
            && self.elapsed.as_secs() >= self.config.warmup.as_secs()
            && self.since_policy.as_secs() + 1e-12 >= self.config.policy_period.as_secs()
        {
            self.since_policy = Seconds::ZERO;
            build_policy_input_into(
                &self.platform,
                &self.os,
                &self.sensors,
                self.elapsed,
                &mut self.scratch.policy_input,
            )?;
            let actions = self.policy.decide(&self.scratch.policy_input);
            for action in actions {
                self.apply_action(action)?;
            }
        }

        // 8. Trace.
        if self.trace.tick(dt) {
            self.scratch.freqs_mhz.clear();
            self.scratch
                .freqs_mhz
                .extend(self.platform.cores().iter().map(|c| c.frequency().as_mhz()));
            let migrations = self.os.migration().totals().migrations;
            let deadline_misses = self
                .pipeline
                .as_ref()
                .map(|p| p.qos().deadline_misses)
                .unwrap_or(0);
            self.trace.record_borrowed(
                self.elapsed,
                self.sensors.readings(),
                &self.scratch.freqs_mhz,
                migrations,
                deadline_misses,
            );
        }

        self.elapsed += dt;
        Ok(())
    }

    /// Runs the simulation for `duration` of simulated time.
    ///
    /// # Errors
    ///
    /// Propagates the first error returned by [`step`](Self::step).
    pub fn run_for(&mut self, duration: Seconds) -> Result<(), SimError> {
        let steps = (duration.as_secs() / self.config.time_step.as_secs()).ceil() as u64;
        for _ in 0..steps {
            self.step()?;
        }
        Ok(())
    }

    /// Produces the summary of everything measured so far.
    pub fn summary(&mut self) -> SimulationSummary {
        let qos = self
            .pipeline
            .as_ref()
            .map(|p| QosMetrics {
                frames_delivered: p.qos().frames_delivered,
                deadline_misses: p.qos().deadline_misses,
                min_queue_level: p.min_queue_level(),
                mean_queue_level: p.mean_queue_level(),
            })
            .unwrap_or_default();
        self.metrics.set_qos(qos);
        self.metrics.summary(self.policy.name(), self.elapsed)
    }

    fn apply_action(&mut self, action: PolicyAction) -> Result<(), SimError> {
        match action {
            PolicyAction::Migrate { task, to } => {
                match self.os.request_migration(task, to) {
                    Ok(()) => self.actions_applied += 1,
                    // Races between the policy's snapshot and the middleware
                    // state are benign: drop the request.
                    Err(OsError::AlreadyMigrating(_)) | Err(OsError::SameCoreMigration(_)) => {}
                    Err(other) => return Err(other.into()),
                }
            }
            PolicyAction::HaltCore(core) => {
                self.halt_core(core)?;
            }
            PolicyAction::ResumeCore(core) => {
                self.resume_core(core)?;
            }
        }
        Ok(())
    }

    fn halt_core(&mut self, core: CoreId) -> Result<(), SimError> {
        let c = self.platform.core_mut(core)?;
        if c.is_running() {
            c.halt();
            self.metrics.record_halt();
            self.actions_applied += 1;
        }
        Ok(())
    }

    fn resume_core(&mut self, core: CoreId) -> Result<(), SimError> {
        let c = self.platform.core_mut(core)?;
        if !c.is_running() {
            c.resume();
            self.metrics.record_resume();
            self.actions_applied += 1;
        }
        Ok(())
    }
}

/// Refreshes `input` in place from the current platform/OS/sensor state.
///
/// The per-core snapshot vector and each core's task vector are reused
/// across invocations (cleared, capacity retained), so the periodic policy
/// snapshot stops allocating once the task population stabilises. The
/// resulting input is identical — including the floating-point means — to
/// what [`crate::policy::build_input`] produces from freshly collected
/// vectors.
fn build_policy_input_into(
    platform: &MpsocPlatform,
    os: &Mpos,
    sensors: &SensorBank,
    elapsed: Seconds,
    input: &mut PolicyInput,
) -> Result<(), SimError> {
    let num_cores = platform.num_cores();
    if input.cores.len() != num_cores {
        input.cores.clear();
        for i in 0..num_cores {
            input.cores.push(CoreSnapshot {
                id: CoreId(i),
                temperature: Celsius::ambient(),
                frequency: Frequency::ZERO,
                running: true,
                fse_load: 0.0,
                tasks: Vec::new(),
            });
        }
    }
    for (i, snapshot) in input.cores.iter_mut().enumerate() {
        let id = CoreId(i);
        let core = platform.core(id)?;
        snapshot.id = id;
        snapshot.temperature = sensors.reading(id).unwrap_or_else(Celsius::ambient);
        snapshot.frequency = core.configured_frequency();
        snapshot.running = core.is_running();
        snapshot.fse_load = os.fse_load(id);
        snapshot.tasks.clear();
        for &task_id in os.tasks_on_slice(id)? {
            let task = os.task(task_id)?;
            snapshot.tasks.push(TaskSnapshot {
                id: task_id,
                fse_load: task.fse_load(),
                context_size: task.descriptor().context_size,
                migratable: task.descriptor().migratable,
                migrating: os.is_migrating(task_id),
            });
        }
    }
    input.time = elapsed;
    input.migrations_in_flight = os.migration().in_flight().len();
    update_input_means(input);
    Ok(())
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("policy", &self.policy.name())
            .field("elapsed", &self.elapsed)
            .field("cores", &self.platform.num_cores())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::DvfsOnlyPolicy;
    use crate::sim::builder::{SimulationBuilder, Workload};
    use tbp_thermal::package::Package;

    fn sdr_simulation(policy: Box<dyn Policy>) -> Simulation {
        SimulationBuilder::new()
            .with_package(Package::high_performance())
            .with_workload(Workload::sdr())
            .with_policy_box(policy)
            .with_config(SimulationConfig {
                warmup: Seconds::new(1.0),
                ..SimulationConfig::paper_default()
            })
            .build()
            .expect("SDR simulation builds")
    }

    #[test]
    fn config_validation() {
        assert!(SimulationConfig::paper_default().validate().is_ok());
        assert!(SimulationConfig::default().validate().is_ok());
        let bad = SimulationConfig {
            time_step: Seconds::ZERO,
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = SimulationConfig {
            policy_period: Seconds::ZERO,
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
        let bad = SimulationConfig {
            time_step: Seconds::from_millis(50.0),
            ..SimulationConfig::paper_default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn dvfs_only_run_produces_gradient_and_no_misses() {
        let mut sim = sdr_simulation(Box::new(DvfsOnlyPolicy::new()));
        assert_eq!(sim.policy_name(), "dvfs-only");
        sim.run_for(Seconds::new(5.0)).unwrap();
        assert!(sim.elapsed().as_secs() > 4.99);
        let temps = sim.core_temperatures();
        assert_eq!(temps.len(), 3);
        // Core 0 carries the heaviest load at the highest frequency: hottest.
        assert!(temps[0].as_celsius() > temps[2].as_celsius());
        let summary = sim.summary();
        assert_eq!(summary.qos.deadline_misses, 0);
        assert_eq!(summary.migration.migrations, 0);
        assert!(summary.mean_spatial_std_dev() > 0.5);
        assert!(!sim.trace().samples().is_empty());
        assert!(format!("{sim:?}").contains("dvfs-only"));
    }

    #[test]
    fn policy_can_be_disabled() {
        let mut sim = sdr_simulation(Box::new(crate::policy::ThermalBalancingPolicy::new(
            tbp_arch::freq::DvfsScale::paper_default(),
            crate::policy::ThermalBalancingConfig::paper_default(),
        )));
        sim.set_policy_enabled(false);
        sim.run_for(Seconds::new(4.0)).unwrap();
        assert_eq!(sim.summary().migration.migrations, 0);
        assert_eq!(sim.actions_applied(), 0);
    }
}
