//! Metrics collected by the co-simulation.
//!
//! The paper evaluates three groups of metrics (Section 5):
//!
//! 1. spatial and temporal variance of the processor temperatures;
//! 2. average quantity of migrated data and number of migrated tasks;
//! 3. QoS degradation as the percentage of missed frames.
//!
//! [`MetricsCollector`] accumulates all three while the simulation runs and
//! produces a [`SimulationSummary`] at the end.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::units::{Bytes, Celsius, Seconds};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// `Default` must be the *empty* accumulator, i.e. exactly what
/// [`RunningStats::new`] builds. A derived `Default` would zero-initialise
/// `min`/`max`, so any `Default`-constructed accumulator (e.g. inside
/// `ThermalMetrics::default()`) would clamp every later minimum at `0.0`.
impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

/// Empty accumulators carry `min = +inf` / `max = -inf`, which JSON cannot
/// represent: serializing them through a [`FsCache`] entry would either
/// corrupt the file or come back as `null`. The manual impls omit the two
/// fields *while the accumulator is empty* and restore the infinities on
/// deserialization, so empty stats round-trip losslessly through strict
/// JSON. Once a sample has been pushed, min/max are serialized verbatim —
/// even a pathological infinite sample round-trips rather than being
/// silently replaced by the empty-state sentinels.
///
/// [`FsCache`]: crate::scenario::FsCache
impl Serialize for RunningStats {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("count".to_string(), self.count.to_value()),
            ("mean".to_string(), self.mean.to_value()),
            ("m2".to_string(), self.m2.to_value()),
        ];
        if self.count > 0 {
            entries.push(("min".to_string(), self.min.to_value()));
            entries.push(("max".to_string(), self.max.to_value()));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for RunningStats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = match value {
            serde::Value::Map(entries) => entries.as_slice(),
            other => {
                return Err(serde::Error::custom(format!(
                    "RunningStats: expected map, found {}",
                    other.kind()
                )))
            }
        };
        let field = |key: &str| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let float = |key: &str| -> Result<Option<f64>, serde::Error> {
            field(key).map(f64::from_value).transpose()
        };
        let count = match field("count") {
            Some(v) => u64::from_value(v)?,
            None => return Err(serde::Error::custom("RunningStats: missing field `count`")),
        };
        Ok(RunningStats {
            count,
            mean: float("mean")?.unwrap_or(0.0),
            m2: float("m2")?.unwrap_or(0.0),
            min: float("min")?.unwrap_or(f64::INFINITY),
            max: float("max")?.unwrap_or(f64::NEG_INFINITY),
        })
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Aggregated thermal metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThermalMetrics {
    /// Statistics of the *spatial* standard deviation across cores (one
    /// sample per sensor refresh).
    pub spatial_std_dev: RunningStats,
    /// Statistics of the spatial spread (hottest minus coolest core).
    pub spread: RunningStats,
    /// Per-core temperature statistics over time (temporal variance).
    pub per_core: Vec<RunningStats>,
    /// Highest temperature ever observed on any core.
    pub peak_temperature: f64,
    /// Time any core spent above `mean + threshold` (the paper reports the
    /// hottest core staying above the upper threshold for under 400 ms while
    /// balancing).
    pub time_above_upper_threshold: Seconds,
    /// Time any core spent below `mean − threshold`.
    pub time_below_lower_threshold: Seconds,
}

/// Aggregated migration metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationMetrics {
    /// Completed migrations.
    pub migrations: u64,
    /// Bytes transferred through the shared memory for migrations.
    pub bytes: Bytes,
    /// Total time tasks spent frozen by migrations.
    pub frozen_time: Seconds,
    /// Core halts issued (Stop&Go).
    pub halts: u64,
    /// Core resumes issued (Stop&Go).
    pub resumes: u64,
}

/// Aggregated QoS metrics (copied from the pipeline runtime at the end of a
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QosMetrics {
    /// Frames delivered on time.
    pub frames_delivered: u64,
    /// Deadline misses.
    pub deadline_misses: u64,
    /// Minimum queue level observed across all queues.
    pub min_queue_level: usize,
    /// Time-averaged queue level across all queues (the paper observes this
    /// does not change because of migration).
    pub mean_queue_level: f64,
}

impl QosMetrics {
    /// Fraction of deadlines missed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.frames_delivered + self.deadline_misses;
        if total == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / total as f64
        }
    }
}

/// Collector fed by the simulation loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsCollector {
    threshold: f64,
    warmup: Seconds,
    thermal: ThermalMetrics,
    migration: MigrationMetrics,
    qos: QosMetrics,
    measured_time: Seconds,
    reconfigs: u64,
}

impl MetricsCollector {
    /// Creates a collector for `num_cores` cores.
    ///
    /// `threshold` is the policy threshold used for the above/below-band
    /// timers; `warmup` is the initial period excluded from the statistics
    /// (the paper lets the system stabilise for 12.5 s before enabling and
    /// measuring the policy).
    pub fn new(num_cores: usize, threshold: f64, warmup: Seconds) -> Self {
        MetricsCollector {
            threshold,
            warmup,
            thermal: ThermalMetrics {
                per_core: vec![RunningStats::new(); num_cores],
                ..ThermalMetrics::default()
            },
            migration: MigrationMetrics::default(),
            qos: QosMetrics::default(),
            measured_time: Seconds::ZERO,
            reconfigs: 0,
        }
    }

    /// The warm-up period excluded from measurements.
    pub fn warmup(&self) -> Seconds {
        self.warmup
    }

    /// Retunes the threshold used for the above/below-band timers — called
    /// when a live reconfiguration changes the policy threshold mid-run.
    /// Already-accumulated band times are kept; only future samples use the
    /// new band.
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Records one applied live reconfiguration (a [`SpecDelta`] going
    /// through `Simulation::apply_delta`).
    ///
    /// [`SpecDelta`]: crate::scenario::SpecDelta
    pub fn record_reconfig(&mut self) {
        self.reconfigs += 1;
    }

    /// Records a sensor sample of the core temperatures taken at `time`,
    /// covering `dt` of simulated time.
    pub fn record_temperatures(&mut self, time: Seconds, dt: Seconds, temps: &[Celsius]) {
        // Peak / sum / max / min are independent accumulators: one fused pass
        // updates each in the same element order as separate passes would, so
        // the results are bit-identical while the (hot-path) sample touches
        // the temperatures twice instead of six times.
        let mut sum = 0.0;
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        for t in temps {
            let t = t.as_celsius();
            self.thermal.peak_temperature = self.thermal.peak_temperature.max(t);
            sum += t;
            max = f64::max(max, t);
            min = f64::min(min, t);
        }
        if time.as_secs() < self.warmup.as_secs() || temps.is_empty() {
            return;
        }
        self.measured_time += dt;
        let n = temps.len() as f64;
        let mean = sum / n;
        let mut variance_sum = 0.0;
        for (stats, t) in self.thermal.per_core.iter_mut().zip(temps) {
            let t = t.as_celsius();
            variance_sum += (t - mean).powi(2);
            stats.push(t);
        }
        self.thermal.spatial_std_dev.push((variance_sum / n).sqrt());
        self.thermal.spread.push(max - min);
        if max > mean + self.threshold {
            self.thermal.time_above_upper_threshold += dt;
        }
        if min < mean - self.threshold {
            self.thermal.time_below_lower_threshold += dt;
        }
    }

    /// Records completed migrations.
    pub fn record_migrations(&mut self, count: u64, bytes: Bytes, frozen: Seconds) {
        self.migration.migrations += count;
        self.migration.bytes = self.migration.bytes.saturating_add(bytes);
        self.migration.frozen_time += frozen;
    }

    /// Records a core halt (Stop&Go).
    pub fn record_halt(&mut self) {
        self.migration.halts += 1;
    }

    /// Records a core resume (Stop&Go).
    pub fn record_resume(&mut self) {
        self.migration.resumes += 1;
    }

    /// Overwrites the QoS metrics (taken from the pipeline at the end of the
    /// run).
    pub fn set_qos(&mut self, qos: QosMetrics) {
        self.qos = qos;
    }

    /// Produces the final summary for a run lasting `total_time` under the
    /// named policy.
    pub fn summary(&self, policy: &str, total_time: Seconds) -> SimulationSummary {
        SimulationSummary {
            policy: policy.to_string(),
            total_time,
            measured_time: self.measured_time,
            thermal: self.thermal.clone(),
            migration: self.migration,
            qos: self.qos,
            reconfigs: self.reconfigs,
            trace_dropped: 0,
        }
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimulationSummary {
    /// Name of the policy that ran.
    pub policy: String,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Simulated time covered by the measurements (after warm-up).
    pub measured_time: Seconds,
    /// Thermal metrics.
    pub thermal: ThermalMetrics,
    /// Migration metrics.
    pub migration: MigrationMetrics,
    /// QoS metrics.
    pub qos: QosMetrics,
    /// Live reconfigurations applied during the run (0 for static scenarios).
    pub reconfigs: u64,
    /// Trace samples discarded by recorder decimation passes (0 when the
    /// recorder never saturated or tracing was off).
    pub trace_dropped: u64,
}

/// Manual impl so run reports cached *before* live reconfiguration landed —
/// which lack the `reconfigs` field — still deserialize (as 0, which is what
/// those runs applied) instead of silently missing the cache and
/// re-simulating. A derived impl would reject the missing required field.
impl Deserialize for SimulationSummary {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        fn required<T: Deserialize>(value: &serde::Value, key: &str) -> Result<T, serde::Error> {
            match value.get(key) {
                Some(v) => T::from_value(v)
                    .map_err(|e| serde::Error::custom(format!("SimulationSummary.{key}: {e}"))),
                None => Err(serde::Error::custom(format!(
                    "SimulationSummary: missing field `{key}`"
                ))),
            }
        }
        if !matches!(value, serde::Value::Map(_)) {
            return Err(serde::Error::custom(format!(
                "SimulationSummary: expected map, found {}",
                value.kind()
            )));
        }
        Ok(SimulationSummary {
            policy: required(value, "policy")?,
            total_time: required(value, "total_time")?,
            measured_time: required(value, "measured_time")?,
            thermal: required(value, "thermal")?,
            migration: required(value, "migration")?,
            qos: required(value, "qos")?,
            reconfigs: match value.get("reconfigs") {
                Some(v) => u64::from_value(v).map_err(|e| {
                    serde::Error::custom(format!("SimulationSummary.reconfigs: {e}"))
                })?,
                None => 0,
            },
            // Absent in reports cached before decimation accounting existed.
            trace_dropped: match value.get("trace_dropped") {
                Some(v) => u64::from_value(v).map_err(|e| {
                    serde::Error::custom(format!("SimulationSummary.trace_dropped: {e}"))
                })?,
                None => 0,
            },
        })
    }
}

impl SimulationSummary {
    /// Time-averaged spatial standard deviation of the core temperatures —
    /// the Y axis of Figures 7 and 9.
    pub fn mean_spatial_std_dev(&self) -> f64 {
        self.thermal.spatial_std_dev.mean()
    }

    /// Mean spatial spread (hottest minus coolest core).
    pub fn mean_spread(&self) -> f64 {
        self.thermal.spread.mean()
    }

    /// Mean temporal standard deviation of the individual cores.
    pub fn mean_temporal_std_dev(&self) -> f64 {
        if self.thermal.per_core.is_empty() {
            return 0.0;
        }
        self.thermal
            .per_core
            .iter()
            .map(|s| s.std_dev())
            .sum::<f64>()
            / self.thermal.per_core.len() as f64
    }

    /// Migrations per second of measured time — the Y axis of Figure 11.
    pub fn migrations_per_second(&self) -> f64 {
        if self.measured_time.is_zero() {
            0.0
        } else {
            self.migration.migrations as f64 / self.measured_time.as_secs()
        }
    }

    /// Migrated kilobytes per second of measured time.
    pub fn migrated_kib_per_second(&self) -> f64 {
        if self.measured_time.is_zero() {
            0.0
        } else {
            self.migration.bytes.as_kib() / self.measured_time.as_secs()
        }
    }
}

impl fmt::Display for SimulationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy: {}", self.policy)?;
        writeln!(
            f,
            "  simulated {:.1} s (measured {:.1} s)",
            self.total_time.as_secs(),
            self.measured_time.as_secs()
        )?;
        writeln!(
            f,
            "  temperature: σ_spatial = {:.3} °C, spread = {:.2} °C, peak = {:.1} °C",
            self.mean_spatial_std_dev(),
            self.mean_spread(),
            self.thermal.peak_temperature
        )?;
        writeln!(
            f,
            "  migrations: {} ({:.2}/s, {:.0} KiB total), halts: {}",
            self.migration.migrations,
            self.migrations_per_second(),
            self.migration.bytes.as_kib(),
            self.migration.halts
        )?;
        write!(
            f,
            "  QoS: {} frames delivered, {} deadline misses ({:.2} % miss rate)",
            self.qos.frames_delivered,
            self.qos.deadline_misses,
            self.qos.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(RunningStats::default().count(), 0);
    }

    #[test]
    fn default_running_stats_behave_like_new() {
        // Regression: the derived `Default` used to zero-initialise `min` and
        // `max`, so a `Default`-constructed accumulator reported `min == 0.0`
        // after pushing only larger samples.
        let mut s = RunningStats::default();
        s.push(5.0);
        s.push(7.0);
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 7.0);
        let mut from_thermal = ThermalMetrics::default();
        from_thermal.spatial_std_dev.push(3.5);
        assert_eq!(from_thermal.spatial_std_dev.min(), 3.5);
        // And a negative-only stream must not report max == 0.0 either.
        let mut neg = RunningStats::default();
        neg.push(-2.0);
        assert_eq!(neg.max(), -2.0);
        assert_eq!(neg.min(), -2.0);
    }

    #[test]
    fn empty_stats_round_trip_through_strict_json() {
        use serde::{Deserialize, Serialize};
        // Empty accumulators hold ±inf internally; the serialized form must
        // not contain non-finite tokens (JSON cannot represent them) and the
        // round trip must restore the infinities exactly.
        let empty = RunningStats::new();
        let json = serde_json::to_string(&empty).expect("serializes");
        assert!(!json.contains("inf") && !json.contains("Inf"), "{json}");
        let back = RunningStats::from_value(&empty.to_value()).expect("round-trips");
        assert_eq!(back, empty);
        let mut reparsed: RunningStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(reparsed, empty);
        // The restored accumulator keeps accumulating correctly.
        reparsed.push(4.0);
        assert_eq!(reparsed.min(), 4.0);
        assert_eq!(reparsed.max(), 4.0);
        // Non-empty stats keep their min/max through the round trip.
        let mut full = RunningStats::new();
        full.push(1.5);
        full.push(-0.5);
        let json = serde_json::to_string(&full).expect("serializes");
        let back: RunningStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, full);
        // A whole summary holding empty stats survives the FsCache path too.
        let summary =
            MetricsCollector::new(2, 3.0, Seconds::new(100.0)).summary("idle", Seconds::new(1.0));
        let json = serde_json::to_string_pretty(&summary).expect("serializes");
        let back: SimulationSummary = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, summary);
        // A pathological infinite *sample* (count > 0) is serialized
        // verbatim, not silently replaced by the empty-state sentinels.
        // (An infinite sample poisons Welford's mean/m2 to NaN, so the
        // fields are compared individually, NaN-aware.)
        let mut diverged = RunningStats::new();
        diverged.push(f64::NEG_INFINITY);
        diverged.push(1.0);
        let back = RunningStats::from_value(&diverged.to_value()).expect("round-trips");
        assert_eq!(back.count(), diverged.count());
        assert_eq!(back.min(), f64::NEG_INFINITY);
        assert_eq!(back.max(), 1.0);
        assert_eq!(back.mean().is_nan(), diverged.mean().is_nan());
    }

    #[test]
    fn summaries_cached_before_reconfiguration_still_deserialize() {
        use serde::{Deserialize, Serialize};
        // Reports cached before the `reconfigs` field existed must load as
        // reconfigs = 0 — not silently miss the cache (the v2 hash domain
        // was deliberately kept for static specs so those entries stay
        // valid).
        let summary = MetricsCollector::new(2, 3.0, Seconds::ZERO).summary("x", Seconds::new(1.0));
        let mut value = summary.to_value();
        if let serde::Value::Map(entries) = &mut value {
            entries.retain(|(key, _)| key != "reconfigs");
        }
        let back = SimulationSummary::from_value(&value).expect("legacy summary parses");
        assert_eq!(back, summary);
        assert_eq!(back.reconfigs, 0);
        // Present fields still deserialize, and a malformed one still errors.
        let mut collector = MetricsCollector::new(2, 3.0, Seconds::ZERO);
        collector.record_reconfig();
        let summary = collector.summary("x", Seconds::new(1.0));
        let back = SimulationSummary::from_value(&summary.to_value()).expect("parses");
        assert_eq!(back.reconfigs, 1);
        assert!(SimulationSummary::from_value(&serde::Value::Int(3)).is_err());
        let mut missing_policy = summary.to_value();
        if let serde::Value::Map(entries) = &mut missing_policy {
            entries.retain(|(key, _)| key != "policy");
        }
        assert!(SimulationSummary::from_value(&missing_policy).is_err());
    }

    #[test]
    fn collector_ignores_warmup_and_tracks_band_violations() {
        let mut c = MetricsCollector::new(3, 3.0, Seconds::new(1.0));
        assert_eq!(c.warmup(), Seconds::new(1.0));
        let dt = Seconds::from_millis(10.0);
        // During warm-up only the peak is tracked.
        c.record_temperatures(
            Seconds::new(0.5),
            dt,
            &[Celsius::new(80.0), Celsius::new(50.0), Celsius::new(50.0)],
        );
        let warm = c.summary("x", Seconds::new(0.5));
        assert_eq!(warm.thermal.spatial_std_dev.count(), 0);
        assert_eq!(warm.thermal.peak_temperature, 80.0);
        // After warm-up samples count; 70/60/50 has a spread of 20 and the
        // hot core sits above mean+3.
        c.record_temperatures(
            Seconds::new(2.0),
            dt,
            &[Celsius::new(70.0), Celsius::new(60.0), Celsius::new(50.0)],
        );
        let s = c.summary("x", Seconds::new(2.0));
        assert_eq!(s.thermal.spatial_std_dev.count(), 1);
        assert!((s.mean_spread() - 20.0).abs() < 1e-9);
        assert!(s.thermal.time_above_upper_threshold.as_millis() > 9.0);
        assert!(s.thermal.time_below_lower_threshold.as_millis() > 9.0);
        assert!((s.mean_spatial_std_dev() - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        // Empty sample vectors are ignored.
        c.record_temperatures(Seconds::new(3.0), dt, &[]);
    }

    #[test]
    fn migration_and_qos_accounting() {
        let mut c = MetricsCollector::new(3, 3.0, Seconds::ZERO);
        c.record_migrations(2, Bytes::from_kib(128), Seconds::from_millis(3.0));
        c.record_migrations(1, Bytes::from_kib(64), Seconds::from_millis(1.0));
        c.record_halt();
        c.record_halt();
        c.record_resume();
        c.record_reconfig();
        c.record_reconfig();
        c.set_qos(QosMetrics {
            frames_delivered: 380,
            deadline_misses: 20,
            min_queue_level: 2,
            mean_queue_level: 4.5,
        });
        // Simulate 10 s of measured time through temperature samples.
        for i in 0..1000 {
            c.record_temperatures(
                Seconds::new(i as f64 * 0.01),
                Seconds::from_millis(10.0),
                &[Celsius::new(60.0), Celsius::new(61.0), Celsius::new(62.0)],
            );
        }
        let s = c.summary("test-policy", Seconds::new(10.0));
        assert_eq!(s.policy, "test-policy");
        assert_eq!(s.migration.migrations, 3);
        assert_eq!(s.migration.bytes, Bytes::from_kib(192));
        assert_eq!(s.migration.halts, 2);
        assert_eq!(s.migration.resumes, 1);
        assert_eq!(s.reconfigs, 2);
        assert!((s.migrations_per_second() - 0.3).abs() < 0.01);
        assert!((s.migrated_kib_per_second() - 19.2).abs() < 0.5);
        assert_eq!(s.qos.deadline_misses, 20);
        assert!((s.qos.miss_rate() - 0.05).abs() < 1e-9);
        assert!(s.mean_temporal_std_dev() >= 0.0);
        let text = s.to_string();
        assert!(text.contains("test-policy"));
        assert!(text.contains("deadline misses"));
    }

    #[test]
    fn zero_measured_time_rates_are_zero() {
        let c = MetricsCollector::new(2, 3.0, Seconds::new(100.0));
        let s = c.summary("idle", Seconds::new(1.0));
        assert_eq!(s.migrations_per_second(), 0.0);
        assert_eq!(s.migrated_kib_per_second(), 0.0);
        assert_eq!(s.mean_temporal_std_dev(), 0.0);
        assert_eq!(QosMetrics::default().miss_rate(), 0.0);
    }
}
