//! Metrics collected by the co-simulation.
//!
//! The paper evaluates three groups of metrics (Section 5):
//!
//! 1. spatial and temporal variance of the processor temperatures;
//! 2. average quantity of migrated data and number of migrated tasks;
//! 3. QoS degradation as the percentage of missed frames.
//!
//! [`MetricsCollector`] accumulates all three while the simulation runs and
//! produces a [`SimulationSummary`] at the end.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::units::{Bytes, Celsius, Seconds};

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Aggregated thermal metrics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ThermalMetrics {
    /// Statistics of the *spatial* standard deviation across cores (one
    /// sample per sensor refresh).
    pub spatial_std_dev: RunningStats,
    /// Statistics of the spatial spread (hottest minus coolest core).
    pub spread: RunningStats,
    /// Per-core temperature statistics over time (temporal variance).
    pub per_core: Vec<RunningStats>,
    /// Highest temperature ever observed on any core.
    pub peak_temperature: f64,
    /// Time any core spent above `mean + threshold` (the paper reports the
    /// hottest core staying above the upper threshold for under 400 ms while
    /// balancing).
    pub time_above_upper_threshold: Seconds,
    /// Time any core spent below `mean − threshold`.
    pub time_below_lower_threshold: Seconds,
}

/// Aggregated migration metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationMetrics {
    /// Completed migrations.
    pub migrations: u64,
    /// Bytes transferred through the shared memory for migrations.
    pub bytes: Bytes,
    /// Total time tasks spent frozen by migrations.
    pub frozen_time: Seconds,
    /// Core halts issued (Stop&Go).
    pub halts: u64,
    /// Core resumes issued (Stop&Go).
    pub resumes: u64,
}

/// Aggregated QoS metrics (copied from the pipeline runtime at the end of a
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct QosMetrics {
    /// Frames delivered on time.
    pub frames_delivered: u64,
    /// Deadline misses.
    pub deadline_misses: u64,
    /// Minimum queue level observed across all queues.
    pub min_queue_level: usize,
    /// Time-averaged queue level across all queues (the paper observes this
    /// does not change because of migration).
    pub mean_queue_level: f64,
}

impl QosMetrics {
    /// Fraction of deadlines missed.
    pub fn miss_rate(&self) -> f64 {
        let total = self.frames_delivered + self.deadline_misses;
        if total == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / total as f64
        }
    }
}

/// Collector fed by the simulation loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsCollector {
    threshold: f64,
    warmup: Seconds,
    thermal: ThermalMetrics,
    migration: MigrationMetrics,
    qos: QosMetrics,
    measured_time: Seconds,
}

impl MetricsCollector {
    /// Creates a collector for `num_cores` cores.
    ///
    /// `threshold` is the policy threshold used for the above/below-band
    /// timers; `warmup` is the initial period excluded from the statistics
    /// (the paper lets the system stabilise for 12.5 s before enabling and
    /// measuring the policy).
    pub fn new(num_cores: usize, threshold: f64, warmup: Seconds) -> Self {
        MetricsCollector {
            threshold,
            warmup,
            thermal: ThermalMetrics {
                per_core: vec![RunningStats::new(); num_cores],
                ..ThermalMetrics::default()
            },
            migration: MigrationMetrics::default(),
            qos: QosMetrics::default(),
            measured_time: Seconds::ZERO,
        }
    }

    /// The warm-up period excluded from measurements.
    pub fn warmup(&self) -> Seconds {
        self.warmup
    }

    /// Records a sensor sample of the core temperatures taken at `time`,
    /// covering `dt` of simulated time.
    pub fn record_temperatures(&mut self, time: Seconds, dt: Seconds, temps: &[Celsius]) {
        // Peak / sum / max / min are independent accumulators: one fused pass
        // updates each in the same element order as separate passes would, so
        // the results are bit-identical while the (hot-path) sample touches
        // the temperatures twice instead of six times.
        let mut sum = 0.0;
        let mut max = f64::MIN;
        let mut min = f64::MAX;
        for t in temps {
            let t = t.as_celsius();
            self.thermal.peak_temperature = self.thermal.peak_temperature.max(t);
            sum += t;
            max = f64::max(max, t);
            min = f64::min(min, t);
        }
        if time.as_secs() < self.warmup.as_secs() || temps.is_empty() {
            return;
        }
        self.measured_time += dt;
        let n = temps.len() as f64;
        let mean = sum / n;
        let mut variance_sum = 0.0;
        for (stats, t) in self.thermal.per_core.iter_mut().zip(temps) {
            let t = t.as_celsius();
            variance_sum += (t - mean).powi(2);
            stats.push(t);
        }
        self.thermal.spatial_std_dev.push((variance_sum / n).sqrt());
        self.thermal.spread.push(max - min);
        if max > mean + self.threshold {
            self.thermal.time_above_upper_threshold += dt;
        }
        if min < mean - self.threshold {
            self.thermal.time_below_lower_threshold += dt;
        }
    }

    /// Records completed migrations.
    pub fn record_migrations(&mut self, count: u64, bytes: Bytes, frozen: Seconds) {
        self.migration.migrations += count;
        self.migration.bytes = self.migration.bytes.saturating_add(bytes);
        self.migration.frozen_time += frozen;
    }

    /// Records a core halt (Stop&Go).
    pub fn record_halt(&mut self) {
        self.migration.halts += 1;
    }

    /// Records a core resume (Stop&Go).
    pub fn record_resume(&mut self) {
        self.migration.resumes += 1;
    }

    /// Overwrites the QoS metrics (taken from the pipeline at the end of the
    /// run).
    pub fn set_qos(&mut self, qos: QosMetrics) {
        self.qos = qos;
    }

    /// Produces the final summary for a run lasting `total_time` under the
    /// named policy.
    pub fn summary(&self, policy: &str, total_time: Seconds) -> SimulationSummary {
        SimulationSummary {
            policy: policy.to_string(),
            total_time,
            measured_time: self.measured_time,
            thermal: self.thermal.clone(),
            migration: self.migration,
            qos: self.qos,
        }
    }
}

/// Summary of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationSummary {
    /// Name of the policy that ran.
    pub policy: String,
    /// Total simulated time.
    pub total_time: Seconds,
    /// Simulated time covered by the measurements (after warm-up).
    pub measured_time: Seconds,
    /// Thermal metrics.
    pub thermal: ThermalMetrics,
    /// Migration metrics.
    pub migration: MigrationMetrics,
    /// QoS metrics.
    pub qos: QosMetrics,
}

impl SimulationSummary {
    /// Time-averaged spatial standard deviation of the core temperatures —
    /// the Y axis of Figures 7 and 9.
    pub fn mean_spatial_std_dev(&self) -> f64 {
        self.thermal.spatial_std_dev.mean()
    }

    /// Mean spatial spread (hottest minus coolest core).
    pub fn mean_spread(&self) -> f64 {
        self.thermal.spread.mean()
    }

    /// Mean temporal standard deviation of the individual cores.
    pub fn mean_temporal_std_dev(&self) -> f64 {
        if self.thermal.per_core.is_empty() {
            return 0.0;
        }
        self.thermal
            .per_core
            .iter()
            .map(|s| s.std_dev())
            .sum::<f64>()
            / self.thermal.per_core.len() as f64
    }

    /// Migrations per second of measured time — the Y axis of Figure 11.
    pub fn migrations_per_second(&self) -> f64 {
        if self.measured_time.is_zero() {
            0.0
        } else {
            self.migration.migrations as f64 / self.measured_time.as_secs()
        }
    }

    /// Migrated kilobytes per second of measured time.
    pub fn migrated_kib_per_second(&self) -> f64 {
        if self.measured_time.is_zero() {
            0.0
        } else {
            self.migration.bytes.as_kib() / self.measured_time.as_secs()
        }
    }
}

impl fmt::Display for SimulationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy: {}", self.policy)?;
        writeln!(
            f,
            "  simulated {:.1} s (measured {:.1} s)",
            self.total_time.as_secs(),
            self.measured_time.as_secs()
        )?;
        writeln!(
            f,
            "  temperature: σ_spatial = {:.3} °C, spread = {:.2} °C, peak = {:.1} °C",
            self.mean_spatial_std_dev(),
            self.mean_spread(),
            self.thermal.peak_temperature
        )?;
        writeln!(
            f,
            "  migrations: {} ({:.2}/s, {:.0} KiB total), halts: {}",
            self.migration.migrations,
            self.migrations_per_second(),
            self.migration.bytes.as_kib(),
            self.migration.halts
        )?;
        write!(
            f,
            "  QoS: {} frames delivered, {} deadline misses ({:.2} % miss rate)",
            self.qos.frames_delivered,
            self.qos.deadline_misses,
            self.qos.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(RunningStats::default().count(), 0);
    }

    #[test]
    fn collector_ignores_warmup_and_tracks_band_violations() {
        let mut c = MetricsCollector::new(3, 3.0, Seconds::new(1.0));
        assert_eq!(c.warmup(), Seconds::new(1.0));
        let dt = Seconds::from_millis(10.0);
        // During warm-up only the peak is tracked.
        c.record_temperatures(
            Seconds::new(0.5),
            dt,
            &[Celsius::new(80.0), Celsius::new(50.0), Celsius::new(50.0)],
        );
        let warm = c.summary("x", Seconds::new(0.5));
        assert_eq!(warm.thermal.spatial_std_dev.count(), 0);
        assert_eq!(warm.thermal.peak_temperature, 80.0);
        // After warm-up samples count; 70/60/50 has a spread of 20 and the
        // hot core sits above mean+3.
        c.record_temperatures(
            Seconds::new(2.0),
            dt,
            &[Celsius::new(70.0), Celsius::new(60.0), Celsius::new(50.0)],
        );
        let s = c.summary("x", Seconds::new(2.0));
        assert_eq!(s.thermal.spatial_std_dev.count(), 1);
        assert!((s.mean_spread() - 20.0).abs() < 1e-9);
        assert!(s.thermal.time_above_upper_threshold.as_millis() > 9.0);
        assert!(s.thermal.time_below_lower_threshold.as_millis() > 9.0);
        assert!((s.mean_spatial_std_dev() - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        // Empty sample vectors are ignored.
        c.record_temperatures(Seconds::new(3.0), dt, &[]);
    }

    #[test]
    fn migration_and_qos_accounting() {
        let mut c = MetricsCollector::new(3, 3.0, Seconds::ZERO);
        c.record_migrations(2, Bytes::from_kib(128), Seconds::from_millis(3.0));
        c.record_migrations(1, Bytes::from_kib(64), Seconds::from_millis(1.0));
        c.record_halt();
        c.record_halt();
        c.record_resume();
        c.set_qos(QosMetrics {
            frames_delivered: 380,
            deadline_misses: 20,
            min_queue_level: 2,
            mean_queue_level: 4.5,
        });
        // Simulate 10 s of measured time through temperature samples.
        for i in 0..1000 {
            c.record_temperatures(
                Seconds::new(i as f64 * 0.01),
                Seconds::from_millis(10.0),
                &[Celsius::new(60.0), Celsius::new(61.0), Celsius::new(62.0)],
            );
        }
        let s = c.summary("test-policy", Seconds::new(10.0));
        assert_eq!(s.policy, "test-policy");
        assert_eq!(s.migration.migrations, 3);
        assert_eq!(s.migration.bytes, Bytes::from_kib(192));
        assert_eq!(s.migration.halts, 2);
        assert_eq!(s.migration.resumes, 1);
        assert!((s.migrations_per_second() - 0.3).abs() < 0.01);
        assert!((s.migrated_kib_per_second() - 19.2).abs() < 0.5);
        assert_eq!(s.qos.deadline_misses, 20);
        assert!((s.qos.miss_rate() - 0.05).abs() < 1e-9);
        assert!(s.mean_temporal_std_dev() >= 0.0);
        let text = s.to_string();
        assert!(text.contains("test-policy"));
        assert!(text.contains("deadline misses"));
    }

    #[test]
    fn zero_measured_time_rates_are_zero() {
        let c = MetricsCollector::new(2, 3.0, Seconds::new(100.0));
        let s = c.summary("idle", Seconds::new(1.0));
        assert_eq!(s.migrations_per_second(), 0.0);
        assert_eq!(s.migrated_kib_per_second(), 0.0);
        assert_eq!(s.mean_temporal_std_dev(), 0.0);
        assert_eq!(QosMetrics::default().miss_rate(), 0.0);
    }
}
