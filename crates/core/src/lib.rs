//! # tbp-core — thermal balancing for streaming MPSoCs
//!
//! This crate is the top of the workspace reproducing the DATE 2008 paper
//! *"Thermal Balancing Policy for Streaming Computing on Multiprocessor
//! Architectures"* (Mulas et al.). It provides:
//!
//! * [`policy`] — the paper's migration-based **thermal balancing policy**
//!   plus the baselines it is compared against (modified Stop&Go,
//!   energy balancing, plain DVFS);
//! * [`sim`] — the co-simulation engine closing the loop between the MPSoC
//!   platform model ([`tbp-arch`](tbp_arch)), the RC thermal model
//!   ([`tbp-thermal`](tbp_thermal)), the multiprocessor OS and migration
//!   middleware ([`tbp-os`](tbp_os)) and the streaming pipeline
//!   ([`tbp-streaming`](tbp_streaming));
//! * [`metrics`] / [`trace`] — the measurements the paper reports: spatial
//!   and temporal temperature variance, migrated data, deadline misses;
//! * [`scenario`] — the declarative Scenario API: serde-serializable
//!   [`ScenarioSpec`]s with sweep axes, a
//!   [`PolicyRegistry`] resolving policy names,
//!   and a parallel batch [`Runner`] returning structured
//!   reports with JSON/CSV emission;
//! * [`experiments`] — thin spec constructors reproducing every table and
//!   figure of the paper's evaluation through the Scenario API.
//!
//! # Quick start
//!
//! ```
//! use tbp_core::sim::{SimulationBuilder, builder::Workload};
//! use tbp_core::policy::{ThermalBalancingPolicy, ThermalBalancingConfig};
//! use tbp_arch::freq::DvfsScale;
//! use tbp_arch::units::Seconds;
//! use tbp_thermal::package::Package;
//!
//! # fn main() -> Result<(), tbp_core::SimError> {
//! // The paper's 3-core MPSoC running the SDR benchmark under the
//! // thermal balancing policy with a ±3 °C band.
//! let policy = ThermalBalancingPolicy::new(
//!     DvfsScale::paper_default(),
//!     ThermalBalancingConfig::paper_default().with_threshold(3.0),
//! );
//! let mut sim = SimulationBuilder::new()
//!     .with_package(Package::high_performance())
//!     .with_workload(Workload::sdr())
//!     .with_policy_box(Box::new(policy))
//!     .build()?;
//! sim.run_for(Seconds::new(2.0))?;
//! let summary = sim.summary();
//! assert!(summary.qos.frames_delivered > 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod error;
pub mod experiments;
pub mod metrics;
pub mod policy;
pub mod scenario;
pub mod sim;
pub mod trace;

pub use error::SimError;
pub use metrics::SimulationSummary;
pub use policy::{Policy, PolicyAction};
pub use scenario::{BatchReport, PolicyRegistry, RunReport, Runner, ScenarioSpec};
pub use sim::{Simulation, SimulationBuilder};

// Re-export the substrate crates so downstream users (and the examples) can
// depend on `tbp-core` alone.
pub use tbp_arch as arch;
pub use tbp_os as os;
pub use tbp_streaming as streaming;
pub use tbp_thermal as thermal;
