//! Time-series recording of simulation state.
//!
//! The emulation platform of the paper streams per-component statistics to a
//! host PC; the equivalent here is a [`TraceRecorder`] that samples the
//! simulation state at a configurable interval and keeps the series in memory
//! so experiments can plot temperature transients (e.g. the warm-up gradient
//! or the balancing transient of Section 5).

use serde::{Deserialize, Serialize};

use tbp_arch::units::{Celsius, Seconds};

/// One sampled point of the simulation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulated time of the sample.
    pub time: Seconds,
    /// Core temperatures, indexed by core id.
    pub core_temperatures: Vec<Celsius>,
    /// Core frequencies in MHz, indexed by core id.
    pub core_frequencies_mhz: Vec<f64>,
    /// Cumulative completed migrations at the time of the sample.
    pub migrations: u64,
    /// Cumulative deadline misses at the time of the sample.
    pub deadline_misses: u64,
}

/// One live-reconfiguration event applied to a running simulation.
///
/// Recorded by `Simulation::apply_delta` so traces show *when* the policy,
/// threshold or periods changed mid-run — phased scenarios and closed-loop
/// threshold searches produce one event per applied delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// Simulated time the delta was applied at.
    pub time: Seconds,
    /// Human-readable rendering of the applied delta (deterministic).
    pub description: String,
}

/// Records [`TraceSample`]s at a fixed interval, bounded in length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    interval: Seconds,
    max_samples: usize,
    since_last: Seconds,
    samples: Vec<TraceSample>,
    dropped: u64,
    reconfigs: Vec<ReconfigEvent>,
}

impl TraceRecorder {
    /// Creates a recorder sampling every `interval`, keeping at most
    /// `max_samples` samples (older samples are retained; once the buffer is
    /// full new samples are dropped and counted).
    pub fn new(interval: Seconds, max_samples: usize) -> Self {
        TraceRecorder {
            interval,
            max_samples,
            since_last: interval, // record the very first offered sample
            samples: Vec::new(),
            dropped: 0,
            reconfigs: Vec::new(),
        }
    }

    /// A disabled recorder that never stores anything.
    pub fn disabled() -> Self {
        TraceRecorder::new(Seconds::new(f64::INFINITY), 0)
    }

    /// The sampling interval.
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Returns `true` when `dt` more simulated time means a sample is due.
    pub fn tick(&mut self, dt: Seconds) -> bool {
        if !self.interval.as_secs().is_finite() {
            return false;
        }
        self.since_last += dt;
        self.since_last.as_secs() + 1e-12 >= self.interval.as_secs()
    }

    /// Stores a sample (call when [`tick`](Self::tick) returned `true`).
    pub fn record(&mut self, sample: TraceSample) {
        self.since_last = Seconds::ZERO;
        if self.samples.len() >= self.max_samples {
            self.dropped += 1;
            return;
        }
        self.samples.push(sample);
    }

    /// Borrow-based form of [`record`](Self::record): the recorder copies the
    /// slices into an owned [`TraceSample`] only when the sample is actually
    /// stored, so a full (or disabled) recorder costs nothing per tick and
    /// callers do not build throwaway vectors just to offer a sample.
    pub fn record_borrowed(
        &mut self,
        time: Seconds,
        core_temperatures: &[Celsius],
        core_frequencies_mhz: &[f64],
        migrations: u64,
        deadline_misses: u64,
    ) {
        self.since_last = Seconds::ZERO;
        if self.samples.len() >= self.max_samples {
            self.dropped += 1;
            return;
        }
        self.samples.push(TraceSample {
            time,
            core_temperatures: core_temperatures.to_vec(),
            core_frequencies_mhz: core_frequencies_mhz.to_vec(),
            migrations,
            deadline_misses,
        });
    }

    /// Records a live-reconfiguration event. Events are kept even by a
    /// disabled recorder (they are rare and cheap, and a reconfig history is
    /// useful precisely when periodic sampling is off), bounded by the same
    /// hard cap as samples plus a small floor so a `disabled()` recorder
    /// (capacity 0) still keeps a history.
    pub fn record_reconfig(&mut self, time: Seconds, description: impl Into<String>) {
        if self.reconfigs.len() >= self.max_samples.max(4096) {
            return;
        }
        self.reconfigs.push(ReconfigEvent {
            time,
            description: description.into(),
        });
    }

    /// The recorded live-reconfiguration events, in application order.
    pub fn reconfig_events(&self) -> &[ReconfigEvent] {
        &self.reconfigs
    }

    /// Clears the recorded samples and reconfiguration events.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.dropped = 0;
        self.since_last = self.interval;
        self.reconfigs.clear();
    }

    /// The temperature series of one core as `(time, °C)` pairs.
    pub fn core_series(&self, core: usize) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| {
                s.core_temperatures
                    .get(core)
                    .map(|t| (s.time.as_secs(), t.as_celsius()))
            })
            .collect()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(Seconds::from_millis(100.0), 100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, temp: f64) -> TraceSample {
        TraceSample {
            time: Seconds::new(t),
            core_temperatures: vec![Celsius::new(temp), Celsius::new(temp - 5.0)],
            core_frequencies_mhz: vec![533.0, 266.0],
            migrations: 0,
            deadline_misses: 0,
        }
    }

    #[test]
    fn records_at_interval() {
        let mut rec = TraceRecorder::new(Seconds::from_millis(100.0), 10);
        assert_eq!(rec.interval(), Seconds::from_millis(100.0));
        // The first tick is always due.
        assert!(rec.tick(Seconds::from_millis(10.0)));
        rec.record(sample(0.0, 50.0));
        assert!(!rec.tick(Seconds::from_millis(50.0)));
        assert!(rec.tick(Seconds::from_millis(60.0)));
        rec.record(sample(0.11, 51.0));
        assert_eq!(rec.samples().len(), 2);
        assert_eq!(rec.dropped(), 0);
        let series = rec.core_series(0);
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].1, 51.0);
        assert!(rec.core_series(5).is_empty());
    }

    #[test]
    fn bounded_capacity_drops_excess() {
        let mut rec = TraceRecorder::new(Seconds::from_millis(10.0), 2);
        for i in 0..5 {
            rec.tick(Seconds::from_millis(10.0));
            rec.record(sample(i as f64, 40.0 + i as f64));
        }
        assert_eq!(rec.samples().len(), 2);
        assert_eq!(rec.dropped(), 3);
        rec.reset();
        assert!(rec.samples().is_empty());
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut rec = TraceRecorder::disabled();
        assert!(!rec.tick(Seconds::new(1e6)));
        rec.record(sample(0.0, 50.0));
        assert!(rec.samples().is_empty());
        assert_eq!(TraceRecorder::default().samples().len(), 0);
    }

    #[test]
    fn reconfig_events_are_kept_even_when_disabled() {
        let mut rec = TraceRecorder::disabled();
        rec.record_reconfig(Seconds::new(1.5), "threshold=2");
        rec.record_reconfig(Seconds::new(3.0), "policy=stop-and-go");
        let events = rec.reconfig_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time, Seconds::new(1.5));
        assert_eq!(events[1].description, "policy=stop-and-go");
        rec.reset();
        assert!(rec.reconfig_events().is_empty());
    }
}
