//! Time-series recording of simulation state.
//!
//! The emulation platform of the paper streams per-component statistics to a
//! host PC; the equivalent here is a [`TraceRecorder`] that samples the
//! simulation state at a configurable interval and keeps the series in memory
//! so experiments can plot temperature transients (e.g. the warm-up gradient
//! or the balancing transient of Section 5).
//!
//! For fleet-scale archival the simulation can additionally stream typed
//! per-subsystem tracks into a `tbp_obs` sink (see
//! `Simulation::attach_trace_sink`); [`TrackSelection`] names which track
//! groups such a sink receives.

use serde::{Deserialize, Serialize};

use tbp_arch::units::{Celsius, Seconds};

/// One sampled point of the simulation state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulated time of the sample.
    pub time: Seconds,
    /// Core temperatures, indexed by core id.
    pub core_temperatures: Vec<Celsius>,
    /// Core frequencies in MHz, indexed by core id.
    pub core_frequencies_mhz: Vec<f64>,
    /// Cumulative completed migrations at the time of the sample.
    pub migrations: u64,
    /// Cumulative deadline misses at the time of the sample.
    pub deadline_misses: u64,
}

/// One live-reconfiguration event applied to a running simulation.
///
/// Recorded by `Simulation::apply_delta` so traces show *when* the policy,
/// threshold or periods changed mid-run — phased scenarios and closed-loop
/// threshold searches produce one event per applied delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// Simulated time the delta was applied at.
    pub time: Seconds,
    /// Human-readable rendering of the applied delta (deterministic).
    pub description: String,
}

/// Which observability track groups an attached trace sink receives.
///
/// The default selects everything; scenario specs narrow it through the
/// (non-hash-affecting) `[trace]` table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackSelection {
    /// Per-core sensor temperatures.
    pub temperatures: bool,
    /// Per-core clock frequencies.
    pub frequencies: bool,
    /// The cumulative migration counter.
    pub migrations: bool,
    /// The cumulative deadline-miss counter.
    pub deadline_misses: bool,
    /// Per-edge pipeline queue depths.
    pub queue_depths: bool,
    /// Live-reconfiguration events.
    pub reconfigs: bool,
}

impl TrackSelection {
    /// Every track group.
    pub fn all() -> Self {
        TrackSelection {
            temperatures: true,
            frequencies: true,
            migrations: true,
            deadline_misses: true,
            queue_depths: true,
            reconfigs: true,
        }
    }

    /// No track group (useful as a base for builder-style selection).
    pub fn none() -> Self {
        TrackSelection {
            temperatures: false,
            frequencies: false,
            migrations: false,
            deadline_misses: false,
            queue_depths: false,
            reconfigs: false,
        }
    }
}

impl Default for TrackSelection {
    fn default() -> Self {
        TrackSelection::all()
    }
}

/// Records [`TraceSample`]s at a fixed interval, bounded in length.
///
/// Saturation does not lose the tail of a long run: when the buffer
/// reaches `max_samples` the recorder *decimates* — it keeps every other
/// stored sample and doubles its sampling interval — so the series always
/// spans the whole run at a resolution that degrades gracefully
/// (2×, 4×, … the configured interval) instead of silently stopping.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    interval: Seconds,
    max_samples: usize,
    since_last: Seconds,
    samples: Vec<TraceSample>,
    dropped: u64,
    decimations: u32,
    reconfigs: Vec<ReconfigEvent>,
}

/// A disabled recorder carries an infinite interval, which strict JSON
/// cannot represent: the manual impls omit `interval`/`since_last` while
/// they are non-finite and restore the infinities on deserialization (the
/// same pattern `RunningStats` uses for its empty-state min/max), so run
/// artifacts holding a disabled recorder round-trip losslessly through
/// `FsCache`-style strict-JSON storage.
impl Serialize for TraceRecorder {
    fn to_value(&self) -> serde::Value {
        let mut entries = Vec::with_capacity(7);
        if self.interval.as_secs().is_finite() {
            entries.push(("interval".to_string(), self.interval.to_value()));
        }
        entries.push(("max_samples".to_string(), self.max_samples.to_value()));
        if self.since_last.as_secs().is_finite() {
            entries.push(("since_last".to_string(), self.since_last.to_value()));
        }
        entries.push(("samples".to_string(), self.samples.to_value()));
        entries.push(("dropped".to_string(), self.dropped.to_value()));
        entries.push(("decimations".to_string(), self.decimations.to_value()));
        entries.push(("reconfigs".to_string(), self.reconfigs.to_value()));
        serde::Value::Map(entries)
    }
}

impl Deserialize for TraceRecorder {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if !matches!(value, serde::Value::Map(_)) {
            return Err(serde::Error::custom(format!(
                "TraceRecorder: expected map, found {}",
                value.kind()
            )));
        }
        fn required<T: Deserialize>(value: &serde::Value, key: &str) -> Result<T, serde::Error> {
            match value.get(key) {
                Some(v) => T::from_value(v)
                    .map_err(|e| serde::Error::custom(format!("TraceRecorder.{key}: {e}"))),
                None => Err(serde::Error::custom(format!(
                    "TraceRecorder: missing field `{key}`"
                ))),
            }
        }
        fn seconds_or_infinity(value: &serde::Value, key: &str) -> Result<Seconds, serde::Error> {
            match value.get(key) {
                Some(v) => Seconds::from_value(v)
                    .map_err(|e| serde::Error::custom(format!("TraceRecorder.{key}: {e}"))),
                None => Ok(Seconds::new(f64::INFINITY)),
            }
        }
        Ok(TraceRecorder {
            interval: seconds_or_infinity(value, "interval")?,
            max_samples: required(value, "max_samples")?,
            since_last: seconds_or_infinity(value, "since_last")?,
            samples: required(value, "samples")?,
            dropped: required(value, "dropped")?,
            // Absent in artifacts recorded before decimation existed.
            decimations: match value.get("decimations") {
                Some(v) => u32::from_value(v)
                    .map_err(|e| serde::Error::custom(format!("TraceRecorder.decimations: {e}")))?,
                None => 0,
            },
            reconfigs: required(value, "reconfigs")?,
        })
    }
}

impl TraceRecorder {
    /// Creates a recorder sampling every `interval`, keeping at most
    /// `max_samples` samples (a full buffer decimates: see the type docs).
    pub fn new(interval: Seconds, max_samples: usize) -> Self {
        TraceRecorder {
            interval,
            max_samples,
            since_last: interval, // record the very first offered sample
            samples: Vec::new(),
            dropped: 0,
            decimations: 0,
            reconfigs: Vec::new(),
        }
    }

    /// A disabled recorder that never stores anything.
    pub fn disabled() -> Self {
        TraceRecorder::new(Seconds::new(f64::INFINITY), 0)
    }

    /// The sampling interval (doubled by each decimation pass).
    pub fn interval(&self) -> Seconds {
        self.interval
    }

    /// The recorded samples.
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of samples discarded so far — by decimation passes, or
    /// outright on a recorder with zero capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of keep-every-other decimation passes performed (each one
    /// doubled the effective sampling interval).
    pub fn decimations(&self) -> u32 {
        self.decimations
    }

    /// Returns `true` when `dt` more simulated time means a sample is due.
    pub fn tick(&mut self, dt: Seconds) -> bool {
        if !self.interval.as_secs().is_finite() {
            return false;
        }
        self.since_last += dt;
        self.since_last.as_secs() + 1e-12 >= self.interval.as_secs()
    }

    /// Stores a sample (call when [`tick`](Self::tick) returned `true`).
    pub fn record(&mut self, sample: TraceSample) {
        self.since_last = Seconds::ZERO;
        if self.make_room() {
            self.samples.push(sample);
        }
    }

    /// Borrow-based form of [`record`](Self::record): the recorder copies the
    /// slices into an owned [`TraceSample`] only when the sample is actually
    /// stored, so a full (or disabled) recorder costs nothing per tick and
    /// callers do not build throwaway vectors just to offer a sample.
    pub fn record_borrowed(
        &mut self,
        time: Seconds,
        core_temperatures: &[Celsius],
        core_frequencies_mhz: &[f64],
        migrations: u64,
        deadline_misses: u64,
    ) {
        self.since_last = Seconds::ZERO;
        if !self.make_room() {
            return;
        }
        self.samples.push(TraceSample {
            time,
            // The directive below covers both copies: they run only when
            // make_room admitted a sample — at most max_samples times per
            // run, never per step (the alloc_free_step test pins this).
            core_temperatures: core_temperatures.to_vec(), // tbp-lint: allow(no-alloc): bounded by max_samples, not per-step
            core_frequencies_mhz: core_frequencies_mhz.to_vec(),
            migrations,
            deadline_misses,
        });
    }

    /// Makes room for one more sample, decimating when the buffer is full.
    /// Returns whether the incoming sample should be stored.
    fn make_room(&mut self) -> bool {
        if self.max_samples == 0 {
            self.dropped += 1;
            return false;
        }
        if self.samples.len() < self.max_samples {
            return true;
        }
        // Keep-every-other decimation: retain even indices (preserving the
        // series start and its uniform spacing) and double the interval so
        // future samples land on the coarser grid.
        let before = self.samples.len();
        let mut i = 0usize;
        self.samples.retain(|_| {
            let keep = i.is_multiple_of(2);
            i += 1;
            keep
        });
        self.dropped += (before - self.samples.len()) as u64;
        self.interval = Seconds::new(self.interval.as_secs() * 2.0);
        self.decimations += 1;
        if self.samples.len() >= self.max_samples {
            // Only reachable with max_samples == 1: nothing was freed.
            self.dropped += 1;
            return false;
        }
        true
    }

    /// Records a live-reconfiguration event. Events are kept even by a
    /// disabled recorder (they are rare and cheap, and a reconfig history is
    /// useful precisely when periodic sampling is off), bounded by the same
    /// hard cap as samples plus a small floor so a `disabled()` recorder
    /// (capacity 0) still keeps a history.
    pub fn record_reconfig(&mut self, time: Seconds, description: impl Into<String>) {
        if self.reconfigs.len() >= self.max_samples.max(4096) {
            return;
        }
        self.reconfigs.push(ReconfigEvent {
            time,
            description: description.into(),
        });
    }

    /// The recorded live-reconfiguration events, in application order.
    pub fn reconfig_events(&self) -> &[ReconfigEvent] {
        &self.reconfigs
    }

    /// Clears the recorded samples and reconfiguration events. The interval
    /// stays at its current (possibly decimation-doubled) value.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.dropped = 0;
        self.decimations = 0;
        self.since_last = self.interval;
        self.reconfigs.clear();
    }

    /// The temperature series of one core as `(time, °C)` pairs.
    pub fn core_series(&self, core: usize) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| {
                s.core_temperatures
                    .get(core)
                    .map(|t| (s.time.as_secs(), t.as_celsius()))
            })
            .collect()
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new(Seconds::from_millis(100.0), 100_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, temp: f64) -> TraceSample {
        TraceSample {
            time: Seconds::new(t),
            core_temperatures: vec![Celsius::new(temp), Celsius::new(temp - 5.0)],
            core_frequencies_mhz: vec![533.0, 266.0],
            migrations: 0,
            deadline_misses: 0,
        }
    }

    #[test]
    fn records_at_interval() {
        let mut rec = TraceRecorder::new(Seconds::from_millis(100.0), 10);
        assert_eq!(rec.interval(), Seconds::from_millis(100.0));
        // The first tick is always due.
        assert!(rec.tick(Seconds::from_millis(10.0)));
        rec.record(sample(0.0, 50.0));
        assert!(!rec.tick(Seconds::from_millis(50.0)));
        assert!(rec.tick(Seconds::from_millis(60.0)));
        rec.record(sample(0.11, 51.0));
        assert_eq!(rec.samples().len(), 2);
        assert_eq!(rec.dropped(), 0);
        let series = rec.core_series(0);
        assert_eq!(series.len(), 2);
        assert_eq!(series[1].1, 51.0);
        assert!(rec.core_series(5).is_empty());
    }

    #[test]
    fn saturation_decimates_keeping_full_span_coverage() {
        // Drive the recorder the way the simulator does: offer a sample per
        // fixed dt, record only when tick fires (the doubled post-decimation
        // interval thins future samples automatically).
        let mut rec = TraceRecorder::new(Seconds::from_millis(10.0), 8);
        let dt = Seconds::from_millis(10.0);
        let mut recorded = 0u64;
        for i in 0..64 {
            if rec.tick(dt) {
                rec.record(sample(i as f64 * 0.01, 40.0));
                recorded += 1;
            }
        }
        // Bounded, decimated, spanning the whole run: first sample kept,
        // last kept sample well past the old drop-newest horizon (which
        // would have frozen the series at t = 0.07).
        assert!(rec.samples().len() <= 8);
        assert_eq!(rec.samples()[0].time, Seconds::new(0.0));
        assert!(rec.samples().last().unwrap().time.as_secs() >= 0.48);
        assert!(rec.decimations() >= 3);
        // Every discarded sample is accounted for.
        assert_eq!(rec.samples().len() as u64 + rec.dropped(), recorded);
        // The interval doubled once per decimation pass.
        let expected = 0.01 * f64::from(1u32 << rec.decimations());
        assert!((rec.interval().as_secs() - expected).abs() < 1e-12);
        // The kept grid is uniform.
        let times: Vec<f64> = rec.samples().iter().map(|s| s.time.as_secs()).collect();
        let d0 = times[1] - times[0];
        for w in times.windows(2) {
            assert!((w[1] - w[0] - d0).abs() < 1e-12);
        }
        rec.reset();
        assert!(rec.samples().is_empty());
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.decimations(), 0);
    }

    #[test]
    fn capacity_one_still_keeps_the_first_sample() {
        let mut rec = TraceRecorder::new(Seconds::from_millis(10.0), 1);
        for i in 0..5 {
            rec.record(sample(i as f64, 40.0));
        }
        assert_eq!(rec.samples().len(), 1);
        assert_eq!(rec.samples()[0].time, Seconds::new(0.0));
        assert_eq!(rec.dropped(), 4);
    }

    #[test]
    fn decimation_at_exact_capacity_boundary_fires_once() {
        // Regression: filling the buffer to *exactly* its capacity must not
        // decimate — only the first over-capacity sample may trigger one
        // (and exactly one) keep-every-other pass.
        let cap = 16usize;
        let dt = Seconds::from_millis(10.0);
        let mut rec = TraceRecorder::new(dt, cap);
        let mut offered = 0u64;
        for i in 0..cap {
            assert!(rec.tick(dt));
            rec.record(sample(i as f64 * 0.01, 40.0));
            offered += 1;
        }
        assert_eq!(rec.samples().len(), cap);
        assert_eq!(rec.decimations(), 0, "exact fill must not decimate");
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.interval(), dt);

        // One more sample crosses the boundary: one pass, one doubling.
        assert!(rec.tick(dt));
        rec.record(sample(cap as f64 * 0.01, 40.0));
        offered += 1;
        assert_eq!(rec.decimations(), 1, "boundary sample decimates once");
        assert_eq!(rec.interval(), Seconds::new(dt.as_secs() * 2.0));
        // Even indices of the old buffer survive, plus the new sample.
        assert_eq!(rec.samples().len(), cap / 2 + 1);
        // The drop counter accounts for every sample the reader no longer
        // sees: offered == retained + dropped.
        assert_eq!(rec.samples().len() as u64 + rec.dropped(), offered);

        // Subsequent samples land on the doubled grid: ticking at the old
        // cadence fires every other offer, with no further decimation until
        // the buffer fills again.
        let before = rec.decimations();
        for i in 0..6 {
            if rec.tick(dt) {
                rec.record(sample((cap + 1 + i) as f64 * 0.01, 40.0));
                offered += 1;
            }
        }
        assert_eq!(rec.decimations(), before);
        assert_eq!(rec.samples().len() as u64 + rec.dropped(), offered);
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut rec = TraceRecorder::disabled();
        assert!(!rec.tick(Seconds::new(1e6)));
        rec.record(sample(0.0, 50.0));
        assert!(rec.samples().is_empty());
        assert_eq!(TraceRecorder::default().samples().len(), 0);
    }

    #[test]
    fn reconfig_events_are_kept_even_when_disabled() {
        let mut rec = TraceRecorder::disabled();
        rec.record_reconfig(Seconds::new(1.5), "threshold=2");
        rec.record_reconfig(Seconds::new(3.0), "policy=stop-and-go");
        let events = rec.reconfig_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].time, Seconds::new(1.5));
        assert_eq!(events[1].description, "policy=stop-and-go");
        rec.reset();
        assert!(rec.reconfig_events().is_empty());
    }

    #[test]
    fn disabled_recorder_round_trips_through_strict_json() {
        // Regression: the infinite interval of a disabled recorder used to
        // go through the derived impls verbatim, which strict JSON cannot
        // carry. The manual impls omit non-finite interval/since_last and
        // restore them on load.
        let mut rec = TraceRecorder::disabled();
        rec.record_reconfig(Seconds::new(2.0), "threshold=1.5");
        let json = serde_json::to_string(&rec).expect("serializes");
        assert!(
            !json.to_ascii_lowercase().contains("inf"),
            "non-finite token leaked into JSON: {json}"
        );
        let back: TraceRecorder = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, rec);
        // The restored recorder still behaves disabled.
        let mut back = back;
        assert!(!back.tick(Seconds::new(1e9)));
    }

    #[test]
    fn active_recorder_round_trips_through_strict_json() {
        let mut rec = TraceRecorder::new(Seconds::from_millis(10.0), 4);
        for i in 0..6 {
            rec.tick(rec.interval());
            rec.record(sample(i as f64 * 0.01, 42.0 + i as f64));
        }
        rec.record_reconfig(Seconds::new(0.03), "policy=mig");
        let json = serde_json::to_string(&rec).expect("serializes");
        let back: TraceRecorder = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, rec);
        // Legacy artifacts without the decimations field load as 0 passes.
        let mut value = rec.to_value();
        if let serde::Value::Map(entries) = &mut value {
            entries.retain(|(key, _)| key != "decimations");
        }
        let legacy = TraceRecorder::from_value(&value).expect("legacy parses");
        assert_eq!(legacy.decimations(), 0);
        assert_eq!(legacy.samples(), rec.samples());
    }
}
