//! Error type for the co-simulation engine.

use std::error::Error;
use std::fmt;

use tbp_arch::ArchError;
use tbp_os::OsError;
use tbp_streaming::StreamError;
use tbp_thermal::ThermalError;

/// Errors produced while configuring or running the co-simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The architecture model reported an error.
    Arch(ArchError),
    /// The thermal model reported an error.
    Thermal(ThermalError),
    /// The OS model reported an error.
    Os(OsError),
    /// The streaming layer reported an error.
    Stream(StreamError),
    /// The simulation configuration is invalid.
    InvalidConfig(String),
    /// A scenario referenced a policy name the registry does not know.
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
        /// The names the registry does know, for the error message.
        known: Vec<String>,
    },
    /// A scenario specification could not be parsed or validated.
    Spec(String),
    /// The attached observability trace sink failed (I/O error or invalid
    /// trace configuration).
    Trace(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Arch(e) => write!(f, "architecture error: {e}"),
            SimError::Thermal(e) => write!(f, "thermal error: {e}"),
            SimError::Os(e) => write!(f, "OS error: {e}"),
            SimError::Stream(e) => write!(f, "streaming error: {e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid simulation configuration: {msg}"),
            SimError::UnknownPolicy { name, known } => write!(
                f,
                "unknown policy `{name}` (registered policies: {})",
                known.join(", ")
            ),
            SimError::Spec(msg) => write!(f, "invalid scenario specification: {msg}"),
            SimError::Trace(msg) => write!(f, "trace sink error: {msg}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Arch(e) => Some(e),
            SimError::Thermal(e) => Some(e),
            SimError::Os(e) => Some(e),
            SimError::Stream(e) => Some(e),
            SimError::InvalidConfig(_)
            | SimError::UnknownPolicy { .. }
            | SimError::Spec(_)
            | SimError::Trace(_) => None,
        }
    }
}

impl From<ArchError> for SimError {
    fn from(value: ArchError) -> Self {
        SimError::Arch(value)
    }
}

impl From<ThermalError> for SimError {
    fn from(value: ThermalError) -> Self {
        SimError::Thermal(value)
    }
}

impl From<OsError> for SimError {
    fn from(value: OsError) -> Self {
        SimError::Os(value)
    }
}

impl From<StreamError> for SimError {
    fn from(value: StreamError) -> Self {
        SimError::Stream(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::core::CoreId;
    use tbp_os::task::TaskId;
    use tbp_streaming::graph::StageId;

    #[test]
    fn conversions_and_display() {
        let a: SimError = ArchError::UnknownCore(CoreId(1)).into();
        let t: SimError = ThermalError::UnknownNode(2).into();
        let o: SimError = OsError::UnknownTask(TaskId(3)).into();
        let s: SimError = StreamError::UnknownStage(StageId(4)).into();
        let c = SimError::InvalidConfig("broken".into());
        for (err, needle) in [
            (&a, "core1"),
            (&t, "2"),
            (&o, "task3"),
            (&s, "stage4"),
            (&c, "broken"),
        ] {
            assert!(err.to_string().contains(needle));
        }
        assert!(Error::source(&a).is_some());
        assert!(Error::source(&c).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
