//! Canned experiment configurations reproducing the paper's evaluation.
//!
//! Every table and figure of Section 5 maps to a function here; the
//! `tbp-bench` crate's binaries call these functions and print the resulting
//! rows, and the integration tests assert the qualitative shapes (orderings,
//! trends, crossovers) the paper reports.

use serde::{Deserialize, Serialize};

use tbp_arch::units::Seconds;
use tbp_thermal::package::{Package, PackageKind};

use crate::error::SimError;
use crate::metrics::SimulationSummary;
use crate::policy::{
    DvfsOnlyPolicy, EnergyBalancingPolicy, Policy, StopGoPolicy, ThermalBalancingConfig,
    ThermalBalancingPolicy,
};
use crate::sim::builder::{SimulationBuilder, Workload};
use crate::sim::{Simulation, SimulationConfig};

/// Threshold values (°C) swept in Figures 7–11.
pub const THRESHOLD_SWEEP: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

/// The policies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's migration-based thermal balancing policy.
    ThermalBalancing,
    /// The modified Stop&Go baseline.
    StopGo,
    /// The energy-balancing (DVFS-only, static mapping) baseline.
    EnergyBalancing,
    /// No policy at all (DVFS only, used for the warm-up characterisation).
    DvfsOnly,
}

impl PolicyKind {
    /// All three policies compared in Figures 7–10.
    pub const COMPARED: [PolicyKind; 3] = [
        PolicyKind::ThermalBalancing,
        PolicyKind::StopGo,
        PolicyKind::EnergyBalancing,
    ];

    /// Human-readable name, matching [`Policy::name`].
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::ThermalBalancing => "thermal-balancing",
            PolicyKind::StopGo => "stop-and-go",
            PolicyKind::EnergyBalancing => "energy-balancing",
            PolicyKind::DvfsOnly => "dvfs-only",
        }
    }

    /// Instantiates the policy for the paper's DVFS scale and the given
    /// threshold.
    pub fn instantiate(self, threshold: f64) -> Box<dyn Policy> {
        match self {
            PolicyKind::ThermalBalancing => Box::new(ThermalBalancingPolicy::new(
                tbp_arch::freq::DvfsScale::paper_default(),
                ThermalBalancingConfig::paper_default().with_threshold(threshold),
            )),
            PolicyKind::StopGo => Box::new(StopGoPolicy::new(threshold)),
            PolicyKind::EnergyBalancing => Box::new(EnergyBalancingPolicy::new()),
            PolicyKind::DvfsOnly => Box::new(DvfsOnlyPolicy::new()),
        }
    }
}

/// Configuration of one SDR experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which thermal package to use.
    pub package: PackageKind,
    /// Which policy to run.
    pub policy: PolicyKind,
    /// The threshold (°C) of the policy and of the metric band.
    pub threshold: f64,
    /// Warm-up (unmeasured) time before the policy is enabled.
    pub warmup: Seconds,
    /// Measured time after the warm-up.
    pub duration: Seconds,
}

impl ExperimentConfig {
    /// The default experiment: mobile package, thermal balancing at 3 °C,
    /// 8 s warm-up, 20 s of measurement.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            package: PackageKind::MobileEmbedded,
            policy: PolicyKind::ThermalBalancing,
            threshold: 3.0,
            warmup: Seconds::new(8.0),
            duration: Seconds::new(20.0),
        }
    }

    /// The package object for this configuration.
    pub fn package(&self) -> Package {
        match self.package {
            PackageKind::HighPerformance => Package::high_performance(),
            _ => Package::mobile_embedded(),
        }
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper_default()
    }
}

/// Builds the simulation for an experiment configuration without running it.
///
/// # Errors
///
/// Returns [`SimError`] when the simulation cannot be assembled.
pub fn build_sdr_simulation(config: &ExperimentConfig) -> Result<Simulation, SimError> {
    SimulationBuilder::new()
        .with_package(config.package())
        .with_workload(Workload::sdr())
        .with_policy_box(config.policy.instantiate(config.threshold))
        .with_threshold(config.threshold)
        .with_config(SimulationConfig {
            warmup: config.warmup,
            metrics_threshold: config.threshold,
            ..SimulationConfig::paper_default()
        })
        .build()
}

/// Runs one SDR experiment to completion and returns its summary.
///
/// # Errors
///
/// Returns [`SimError`] when the simulation cannot be assembled or stepped.
pub fn run_sdr_experiment(config: &ExperimentConfig) -> Result<SimulationSummary, SimError> {
    let mut sim = build_sdr_simulation(config)?;
    sim.run_for(config.warmup + config.duration)?;
    Ok(sim.summary())
}

/// One point of a threshold sweep: a policy evaluated at one threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The policy evaluated.
    pub policy: PolicyKind,
    /// The threshold (°C).
    pub threshold: f64,
    /// The run's summary.
    pub summary: SimulationSummary,
}

/// Runs the full policy × threshold sweep of Figures 7–10 for one package.
///
/// # Errors
///
/// Returns [`SimError`] when any run fails.
pub fn run_threshold_sweep(
    package: PackageKind,
    duration: Seconds,
) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::new();
    for policy in PolicyKind::COMPARED {
        for &threshold in &THRESHOLD_SWEEP {
            let config = ExperimentConfig {
                package,
                policy,
                threshold,
                duration,
                ..ExperimentConfig::paper_default()
            };
            let summary = run_sdr_experiment(&config)?;
            points.push(SweepPoint {
                policy,
                threshold,
                summary,
            });
        }
    }
    Ok(points)
}

/// Runs the Figure 11 sweep: migrations per second of the thermal balancing
/// policy for both packages.
///
/// # Errors
///
/// Returns [`SimError`] when any run fails.
pub fn run_migration_rate_sweep(duration: Seconds) -> Result<Vec<SweepPoint>, SimError> {
    let mut points = Vec::new();
    for package in [PackageKind::MobileEmbedded, PackageKind::HighPerformance] {
        for &threshold in &THRESHOLD_SWEEP {
            let config = ExperimentConfig {
                package,
                policy: PolicyKind::ThermalBalancing,
                threshold,
                duration,
                ..ExperimentConfig::paper_default()
            };
            let summary = run_sdr_experiment(&config)?;
            points.push(SweepPoint {
                policy: PolicyKind::ThermalBalancing,
                threshold,
                summary,
            });
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_instantiate_with_matching_names() {
        for kind in [
            PolicyKind::ThermalBalancing,
            PolicyKind::StopGo,
            PolicyKind::EnergyBalancing,
            PolicyKind::DvfsOnly,
        ] {
            let policy = kind.instantiate(2.0);
            assert_eq!(policy.name(), kind.label());
        }
        assert_eq!(PolicyKind::COMPARED.len(), 3);
        assert_eq!(THRESHOLD_SWEEP.len(), 4);
    }

    #[test]
    fn experiment_config_defaults() {
        let config = ExperimentConfig::paper_default();
        assert_eq!(config.package, PackageKind::MobileEmbedded);
        assert_eq!(config.policy, PolicyKind::ThermalBalancing);
        assert_eq!(config.package().kind(), PackageKind::MobileEmbedded);
        let hp = ExperimentConfig {
            package: PackageKind::HighPerformance,
            ..ExperimentConfig::default()
        };
        assert_eq!(hp.package().kind(), PackageKind::HighPerformance);
    }

    #[test]
    fn short_experiment_runs_end_to_end() {
        // A deliberately short run to keep unit-test time low; the full-length
        // sweeps run in the integration tests and benches.
        let config = ExperimentConfig {
            package: PackageKind::HighPerformance,
            policy: PolicyKind::ThermalBalancing,
            threshold: 2.0,
            warmup: Seconds::new(2.0),
            duration: Seconds::new(4.0),
        };
        let summary = run_sdr_experiment(&config).unwrap();
        assert_eq!(summary.policy, "thermal-balancing");
        assert!(summary.total_time.as_secs() > 5.99);
        assert!(summary.measured_time.as_secs() > 3.0);
        assert!(summary.qos.frames_delivered > 0);
    }
}
