//! Thin scenario constructors reproducing the paper's evaluation.
//!
//! Every table and figure of Section 5 maps to a [`ScenarioSpec`] built
//! here; the `tbp-bench` binaries hand those specs to a
//! [`Runner`] and print the resulting
//! reports, and
//! the integration tests assert the qualitative shapes (orderings, trends,
//! crossovers) the paper reports. The same specs ship as TOML files under
//! the workspace's `scenarios/` directory — `ScenarioSpec` serializes — so
//! the whole evaluation can also be driven from data.
//!
//! The pre-scenario helpers ([`ExperimentConfig`], [`run_sdr_experiment`],
//! [`run_threshold_sweep`], ...) are kept as compatibility wrappers; they are
//! now implemented on top of the Scenario API.

use serde::{Deserialize, Serialize};

use tbp_arch::units::Seconds;
use tbp_thermal::package::{Package, PackageKind};

use crate::error::SimError;
use crate::metrics::SimulationSummary;
use crate::policy::Policy;
use crate::scenario::{
    package_label, AnalysisKind, PolicyRegistry, PolicySpec, Runner, ScenarioSpec, SweepSpec,
};
use crate::sim::Simulation;

/// Threshold values (°C) swept in Figures 7–11.
pub const THRESHOLD_SWEEP: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

/// Queue capacities (frames) swept by the narrative N3 experiment.
pub const QUEUE_CAPACITY_SWEEP: [usize; 9] = [1, 2, 3, 4, 6, 8, 11, 16, 24];

/// The policies compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// The paper's migration-based thermal balancing policy.
    ThermalBalancing,
    /// The modified Stop&Go baseline.
    StopGo,
    /// The energy-balancing (DVFS-only, static mapping) baseline.
    EnergyBalancing,
    /// No policy at all (DVFS only, used for the warm-up characterisation).
    DvfsOnly,
}

impl PolicyKind {
    /// All three policies compared in Figures 7–10.
    pub const COMPARED: [PolicyKind; 3] = [
        PolicyKind::ThermalBalancing,
        PolicyKind::StopGo,
        PolicyKind::EnergyBalancing,
    ];

    /// Human-readable name, matching [`Policy::name`] and the registry.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::ThermalBalancing => "thermal-balancing",
            PolicyKind::StopGo => "stop-and-go",
            PolicyKind::EnergyBalancing => "energy-balancing",
            PolicyKind::DvfsOnly => "dvfs-only",
        }
    }

    /// The kind whose [`label`](Self::label) is `label`, if any.
    pub fn from_label(label: &str) -> Option<PolicyKind> {
        match label {
            "thermal-balancing" => Some(PolicyKind::ThermalBalancing),
            "stop-and-go" => Some(PolicyKind::StopGo),
            "energy-balancing" => Some(PolicyKind::EnergyBalancing),
            "dvfs-only" => Some(PolicyKind::DvfsOnly),
            _ => None,
        }
    }

    /// Instantiates the policy through the global [`PolicyRegistry`] at the
    /// given threshold.
    pub fn instantiate(self, threshold: f64) -> Box<dyn Policy> {
        PolicyRegistry::global()
            .instantiate(&PolicySpec::named(self.label()).with_threshold(threshold))
            .expect("the built-in policies are always registered")
    }
}

/// Configuration of one SDR experiment run (compatibility wrapper around
/// [`ScenarioSpec`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Which thermal package to use.
    pub package: PackageKind,
    /// Which policy to run.
    pub policy: PolicyKind,
    /// The threshold (°C) of the policy and of the metric band.
    pub threshold: f64,
    /// Warm-up (unmeasured) time before the policy is enabled.
    pub warmup: Seconds,
    /// Measured time after the warm-up.
    pub duration: Seconds,
}

impl ExperimentConfig {
    /// The default experiment: mobile package, thermal balancing at 3 °C,
    /// 8 s warm-up, 20 s of measurement.
    pub fn paper_default() -> Self {
        ExperimentConfig {
            package: PackageKind::MobileEmbedded,
            policy: PolicyKind::ThermalBalancing,
            threshold: 3.0,
            warmup: Seconds::new(8.0),
            duration: Seconds::new(20.0),
        }
    }

    /// The package object for this configuration.
    pub fn package(&self) -> Package {
        match self.package {
            PackageKind::HighPerformance => Package::high_performance(),
            _ => Package::mobile_embedded(),
        }
    }

    /// The equivalent scenario spec.
    pub fn to_spec(&self, name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec::new(name)
            .with_package(self.package)
            .with_policy(self.policy.label(), self.threshold)
            .with_schedule(self.warmup.as_secs(), self.duration.as_secs())
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::paper_default()
    }
}

/// Builds the simulation for an experiment configuration without running it.
///
/// # Errors
///
/// Returns [`SimError`] when the simulation cannot be assembled.
pub fn build_sdr_simulation(config: &ExperimentConfig) -> Result<Simulation, SimError> {
    config.to_spec("experiment").build()
}

/// Runs one SDR experiment to completion and returns its summary.
///
/// # Errors
///
/// Returns [`SimError`] when the simulation cannot be assembled or stepped.
pub fn run_sdr_experiment(config: &ExperimentConfig) -> Result<SimulationSummary, SimError> {
    let mut sim = build_sdr_simulation(config)?;
    sim.run_for(config.warmup + config.duration)?;
    Ok(sim.summary())
}

/// One point of a threshold sweep: a policy evaluated at one threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// The policy evaluated.
    pub policy: PolicyKind,
    /// The threshold (°C).
    pub threshold: f64,
    /// The run's summary.
    pub summary: SimulationSummary,
}

/// The Figures 7–10 scenario for one package: the three compared policies ×
/// the four thresholds, as a single sweep-carrying spec.
pub fn threshold_sweep_spec(package: PackageKind, duration: Seconds) -> ScenarioSpec {
    let figures = match package {
        PackageKind::HighPerformance => "figures 9+10",
        _ => "figures 7+8",
    };
    ScenarioSpec::new(format!("threshold-sweep-{}", package_label(package)))
        .with_description(format!(
            "Policy comparison over the threshold sweep ({figures}): temperature deviation and deadline misses"
        ))
        .with_package(package)
        .with_schedule(8.0, duration.as_secs())
        .with_sweep(
            SweepSpec::default()
                .with_policies(PolicyKind::COMPARED.map(PolicyKind::label))
                .with_thresholds(THRESHOLD_SWEEP),
        )
}

/// The Figure 11 scenario: the thermal balancing policy across both
/// packages and all thresholds.
pub fn migration_rate_sweep_spec(duration: Seconds) -> ScenarioSpec {
    ScenarioSpec::new("migration-rate")
        .with_description(
            "Figure 11: migrations per second of the thermal balancing policy vs threshold, both packages",
        )
        .with_policy(PolicyKind::ThermalBalancing.label(), 3.0)
        .with_schedule(8.0, duration.as_secs())
        .with_sweep(
            SweepSpec::default()
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance])
                .with_thresholds(THRESHOLD_SWEEP),
        )
}

/// The narrative N3 scenario: queue capacities under the most aggressive
/// balancing configuration (1 °C, high-performance package).
pub fn queue_capacity_sweep_spec(duration: Seconds) -> ScenarioSpec {
    ScenarioSpec::new("queue-capacity")
        .with_description(
            "Narrative N3: minimum queue size sustaining thermal balancing without QoS impact",
        )
        .with_package(PackageKind::HighPerformance)
        .with_policy(PolicyKind::ThermalBalancing.label(), 1.0)
        .with_schedule(3.0, duration.as_secs())
        .with_sweep(SweepSpec::default().with_queue_capacities(QUEUE_CAPACITY_SWEEP))
}

/// The Table 1 analytic scenario.
pub fn table1_power_spec() -> ScenarioSpec {
    ScenarioSpec::analysis("table1-power", AnalysisKind::Table1Power)
        .with_description("Table 1: component power at the reference operating points")
}

/// The Table 2 analytic scenario.
pub fn table2_mapping_spec() -> ScenarioSpec {
    ScenarioSpec::analysis("table2-mapping", AnalysisKind::Table2Mapping)
        .with_description("Table 2: the SDR task set and its initial mapping")
}

/// The Figure 2 analytic scenario.
pub fn fig2_migration_cost_spec() -> ScenarioSpec {
    ScenarioSpec::analysis("fig2-migration-cost", AnalysisKind::Fig2MigrationCost)
        .with_description("Figure 2: migration cost vs task size for both back-ends")
}

/// The DVFS-only warm-up characterisation (narrative N1): no policy, no
/// warm-up exclusion, 12.5 s.
pub fn warmup_gradient_spec() -> ScenarioSpec {
    ScenarioSpec::new("warmup-gradient")
        .with_description(
            "Narrative N1: unbalanced temperature gradient after the DVFS-only warm-up",
        )
        .with_policy(PolicyKind::DvfsOnly.label(), 3.0)
        .with_schedule(0.0, 12.5)
}

/// Every scenario of the paper's evaluation, in presentation order.
pub fn paper_scenarios(duration: Seconds) -> Vec<ScenarioSpec> {
    vec![
        table1_power_spec(),
        table2_mapping_spec(),
        fig2_migration_cost_spec(),
        threshold_sweep_spec(PackageKind::MobileEmbedded, duration),
        threshold_sweep_spec(PackageKind::HighPerformance, duration),
        migration_rate_sweep_spec(duration),
        queue_capacity_sweep_spec(duration),
    ]
}

fn sweep_points(spec: &ScenarioSpec) -> Result<Vec<SweepPoint>, SimError> {
    let batch = Runner::new().run_spec(spec)?;
    batch
        .reports
        .into_iter()
        .map(|report| {
            let policy = report
                .policy
                .as_deref()
                .and_then(PolicyKind::from_label)
                .ok_or_else(|| {
                    SimError::Spec(format!("report for `{}` names no policy", report.scenario))
                })?;
            let threshold = report
                .threshold
                .ok_or_else(|| SimError::Spec("sweep report without threshold".into()))?;
            let summary = match report.outcome {
                crate::scenario::RunOutcome::Simulation(summary) => *summary,
                crate::scenario::RunOutcome::Table(_) => {
                    return Err(SimError::Spec("sweep produced a table".into()))
                }
            };
            Ok(SweepPoint {
                policy,
                threshold,
                summary,
            })
        })
        .collect()
}

/// Runs the full policy × threshold sweep of Figures 7–10 for one package
/// (in parallel, through the Scenario API).
///
/// # Errors
///
/// Returns [`SimError`] when any run fails.
pub fn run_threshold_sweep(
    package: PackageKind,
    duration: Seconds,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep_points(&threshold_sweep_spec(package, duration))
}

/// Runs the Figure 11 sweep: migrations per second of the thermal balancing
/// policy for both packages (mobile first, as the figure plots them).
///
/// # Errors
///
/// Returns [`SimError`] when any run fails.
pub fn run_migration_rate_sweep(duration: Seconds) -> Result<Vec<SweepPoint>, SimError> {
    sweep_points(&migration_rate_sweep_spec(duration))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_kinds_instantiate_with_matching_names() {
        for kind in [
            PolicyKind::ThermalBalancing,
            PolicyKind::StopGo,
            PolicyKind::EnergyBalancing,
            PolicyKind::DvfsOnly,
        ] {
            let policy = kind.instantiate(2.0);
            assert_eq!(policy.name(), kind.label());
            assert_eq!(PolicyKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(PolicyKind::from_label("nope"), None);
        assert_eq!(PolicyKind::COMPARED.len(), 3);
        assert_eq!(THRESHOLD_SWEEP.len(), 4);
    }

    #[test]
    fn experiment_config_defaults() {
        let config = ExperimentConfig::paper_default();
        assert_eq!(config.package, PackageKind::MobileEmbedded);
        assert_eq!(config.policy, PolicyKind::ThermalBalancing);
        assert_eq!(config.package().kind(), PackageKind::MobileEmbedded);
        let hp = ExperimentConfig {
            package: PackageKind::HighPerformance,
            ..ExperimentConfig::default()
        };
        assert_eq!(hp.package().kind(), PackageKind::HighPerformance);
    }

    #[test]
    fn experiment_config_converts_to_spec() {
        let config = ExperimentConfig {
            package: PackageKind::HighPerformance,
            policy: PolicyKind::StopGo,
            threshold: 2.0,
            warmup: Seconds::new(1.0),
            duration: Seconds::new(4.0),
        };
        let spec = config.to_spec("x");
        assert_eq!(spec.package_kind(), PackageKind::HighPerformance);
        assert_eq!(spec.policy_spec().name, "stop-and-go");
        assert_eq!(spec.threshold(), 2.0);
        assert_eq!(spec.total_duration(), Seconds::new(5.0));
    }

    #[test]
    fn short_experiment_runs_end_to_end() {
        // A deliberately short run to keep unit-test time low; the full-length
        // sweeps run in the integration tests and benches.
        let config = ExperimentConfig {
            package: PackageKind::HighPerformance,
            policy: PolicyKind::ThermalBalancing,
            threshold: 2.0,
            warmup: Seconds::new(2.0),
            duration: Seconds::new(4.0),
        };
        let summary = run_sdr_experiment(&config).unwrap();
        assert_eq!(summary.policy, "thermal-balancing");
        assert!(summary.total_time.as_secs() > 5.99);
        assert!(summary.measured_time.as_secs() > 3.0);
        assert!(summary.qos.frames_delivered > 0);
    }

    #[test]
    fn paper_scenarios_cover_the_evaluation() {
        let specs = paper_scenarios(Seconds::new(20.0));
        assert_eq!(specs.len(), 7);
        let total_runs: usize = specs
            .iter()
            .map(|s| s.expand().len())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        // 3 analytic tables + 2×(3 policies × 4 thresholds) + 2×4 + 9 queues.
        assert_eq!(total_runs, 3 + 24 + 8 + 9);
        // Every spec round-trips through TOML.
        for spec in &specs {
            let text = spec.to_toml_string();
            let back = ScenarioSpec::from_toml_str(&text).expect("spec TOML parses");
            assert_eq!(&back, spec);
        }
    }
}
