//! The assembled multiprocessor OS layer.
//!
//! [`Mpos`] glues the per-core schedulers, the DVFS governor, the migration
//! middleware and the daemons together, and drives an
//! [`MpsocPlatform`] each simulation step:
//! it applies the governor's frequency plan, programs per-core utilisations
//! from the run queues, progresses checkpoints and in-flight migrations, and
//! reports how many cycles each task actually executed (which the streaming
//! layer converts into processed frames).

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::freq::{DvfsScale, Frequency};
use tbp_arch::platform::MpsocPlatform;
use tbp_arch::units::{Bytes, Seconds};

use crate::error::OsError;
use crate::governor::DvfsGovernor;
use crate::migration::daemon::{DaemonMailbox, DaemonMessage, MasterDaemon, SlaveDaemon};
use crate::migration::{CompletedMigration, MigrationManager, MigrationStrategy};
use crate::scheduler::{CoreLoad, CoreScheduler};
use crate::stats::TaskStats;
use crate::task::{Task, TaskDescriptor, TaskId};

/// What happened during one OS step.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MposStepReport {
    /// Migrations that completed during the step.
    pub completed_migrations: Vec<CompletedMigration>,
    /// Migrations whose context transfer started during the step.
    pub started_migrations: u64,
    /// Cycles executed by each task during the step, indexed by task id.
    pub executed_cycles: Vec<f64>,
    /// Load figures of each core at the end of the step, indexed by core id.
    pub core_loads: Vec<CoreLoad>,
}

/// The multiprocessor operating system / middleware model.
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mpos {
    scale: DvfsScale,
    governor: DvfsGovernor,
    dvfs_enabled: bool,
    tasks: Vec<Task>,
    schedulers: Vec<CoreScheduler>,
    migration: MigrationManager,
    master: MasterDaemon,
    slaves: Vec<SlaveDaemon>,
    mailbox: DaemonMailbox,
}

impl Mpos {
    /// Creates an OS layer managing `num_cores` cores on the given DVFS
    /// scale, using the paper's task-replication migration back-end.
    pub fn new(num_cores: usize, scale: DvfsScale) -> Self {
        Mpos {
            governor: DvfsGovernor::new(scale.clone()),
            scale,
            dvfs_enabled: true,
            tasks: Vec::new(),
            schedulers: (0..num_cores)
                .map(|i| CoreScheduler::new(CoreId(i)))
                .collect(),
            migration: MigrationManager::new(MigrationStrategy::TaskReplication),
            master: MasterDaemon::new(num_cores),
            slaves: (0..num_cores)
                .map(|i| SlaveDaemon::new(CoreId(i), Seconds::from_millis(100.0)))
                .collect(),
            mailbox: DaemonMailbox::new(),
        }
    }

    /// Selects the migration back-end strategy.
    pub fn with_strategy(mut self, strategy: MigrationStrategy) -> Self {
        self.migration = MigrationManager::new(strategy);
        self
    }

    /// Enables or disables the DVFS governor. With DVFS disabled every core
    /// runs at the maximum frequency (used by ablation experiments).
    pub fn with_dvfs(mut self, enabled: bool) -> Self {
        self.dvfs_enabled = enabled;
        self
    }

    /// Number of cores managed.
    pub fn num_cores(&self) -> usize {
        self.schedulers.len()
    }

    /// The DVFS scale in use.
    pub fn scale(&self) -> &DvfsScale {
        &self.scale
    }

    /// The migration middleware (read-only).
    pub fn migration(&self) -> &MigrationManager {
        &self.migration
    }

    /// The master daemon (read-only).
    pub fn master(&self) -> &MasterDaemon {
        &self.master
    }

    /// All tasks, indexed by task id.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// A task by id.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownTask`] for an unknown id.
    pub fn task(&self, id: TaskId) -> Result<&Task, OsError> {
        self.tasks.get(id.index()).ok_or(OsError::UnknownTask(id))
    }

    /// The core a task currently runs on.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownTask`] for an unknown id.
    pub fn core_of(&self, id: TaskId) -> Result<CoreId, OsError> {
        Ok(self.task(id)?.core())
    }

    /// Identifiers of the tasks currently assigned to `core`.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownCore`] for an unknown core.
    pub fn tasks_on(&self, core: CoreId) -> Result<Vec<TaskId>, OsError> {
        Ok(self.tasks_on_slice(core)?.to_vec())
    }

    /// Borrowed form of [`tasks_on`](Self::tasks_on): the run queue of
    /// `core` without copying it.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownCore`] for an unknown core.
    pub fn tasks_on_slice(&self, core: CoreId) -> Result<&[TaskId], OsError> {
        Ok(self
            .schedulers
            .get(core.index())
            .ok_or(OsError::UnknownCore(core))?
            .tasks())
    }

    /// Spawns a task on `core` and returns its identifier.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownCore`] for an unknown core and
    /// [`OsError::InvalidTask`] when the descriptor is invalid.
    pub fn spawn(&mut self, descriptor: TaskDescriptor, core: CoreId) -> Result<TaskId, OsError> {
        if core.index() >= self.schedulers.len() {
            return Err(OsError::UnknownCore(core));
        }
        let id = TaskId(self.tasks.len());
        let task = Task::new(id, descriptor, core)?;
        self.tasks.push(task);
        self.schedulers[core.index()].admit(id);
        Ok(id)
    }

    /// Moves a task to another core immediately, without the migration
    /// machinery (used to build initial mappings).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownTask`] / [`OsError::UnknownCore`] for bad
    /// identifiers.
    pub fn place(&mut self, task: TaskId, core: CoreId) -> Result<(), OsError> {
        if core.index() >= self.schedulers.len() {
            return Err(OsError::UnknownCore(core));
        }
        let current = self.core_of(task)?;
        self.schedulers[current.index()].evict(task);
        self.schedulers[core.index()].admit(task);
        self.tasks[task.index()].place_on(core);
        Ok(())
    }

    /// Requests a migration of `task` to `destination`, going through the
    /// master daemon and the migration middleware. The move starts at the
    /// task's next checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::UnknownTask`] / [`OsError::UnknownCore`] for bad
    /// identifiers, [`OsError::InvalidTask`] for a pinned task,
    /// [`OsError::SameCoreMigration`] when the task already runs on the
    /// destination, and [`OsError::AlreadyMigrating`] when a migration of the
    /// task is already in flight.
    pub fn request_migration(&mut self, task: TaskId, destination: CoreId) -> Result<(), OsError> {
        if destination.index() >= self.schedulers.len() {
            return Err(OsError::UnknownCore(destination));
        }
        let source = self.core_of(task)?;
        if !self.tasks[task.index()].descriptor().migratable {
            return Err(OsError::InvalidTask(format!(
                "task `{}` is pinned and cannot migrate",
                self.tasks[task.index()].name()
            )));
        }
        self.master
            .command_migration(task, source, destination, &mut self.mailbox);
        // The middleware picks the command up immediately (the mailbox models
        // the shared-memory command area).
        for message in self.master.process_mailbox(&mut self.mailbox) {
            if let DaemonMessage::MigrateCommand { task, from, to } = message {
                self.migration.request(task, from, to)?;
            }
        }
        Ok(())
    }

    /// Returns `true` when the task has a pending or executing migration.
    pub fn is_migrating(&self, task: TaskId) -> bool {
        self.migration.is_migrating(task)
    }

    /// Sum of the FSE loads of the tasks assigned to `core` (including tasks
    /// currently frozen mid-migration away from it, which still occupy the
    /// core until the hand-off completes).
    pub fn fse_load(&self, core: CoreId) -> f64 {
        self.schedulers
            .get(core.index())
            .map(|s| {
                s.tasks()
                    .iter()
                    .map(|&t| self.tasks[t.index()].fse_load())
                    .sum()
            })
            .unwrap_or(0.0)
    }

    /// FSE loads of every core, indexed by core id.
    pub fn fse_loads(&self) -> Vec<f64> {
        (0..self.num_cores())
            .map(|i| self.fse_load(CoreId(i)))
            .collect()
    }

    /// The frequency the governor would select for every core right now.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed OS instance; the `Result` mirrors the
    /// fallible accessors used internally.
    pub fn frequency_plan(&self) -> Result<Vec<Frequency>, OsError> {
        Ok((0..self.num_cores())
            .map(|i| self.governor.frequency_for(self.fse_load(CoreId(i))))
            .collect())
    }

    /// Per-task statistics as the slave daemons would publish them.
    pub fn task_statistics(&self, core: CoreId) -> Vec<TaskStats> {
        let mut stats = Vec::new();
        self.task_statistics_into(core, &mut stats);
        stats
    }

    /// [`task_statistics`](Self::task_statistics) into a reusable buffer
    /// (cleared first; unknown cores leave it empty).
    pub fn task_statistics_into(&self, core: CoreId, out: &mut Vec<TaskStats>) {
        out.clear();
        let Some(scheduler) = self.schedulers.get(core.index()) else {
            return;
        };
        let fse_total = self.fse_load(core).max(1e-12);
        out.extend(scheduler.tasks().iter().map(|&id| {
            let task = &self.tasks[id.index()];
            TaskStats::new(
                id,
                task.fse_load() / fse_total,
                task.descriptor().context_size,
                task.migrations(),
            )
        }));
    }

    /// Advances the OS by `dt`, driving `platform`.
    ///
    /// The step:
    /// 1. applies the governor's frequency plan (when DVFS is enabled) to all
    ///    running cores;
    /// 2. programs each core's utilisation from its run queue;
    /// 3. advances task checkpoint clocks, starting any pending migrations
    ///    whose task reached a checkpoint (their context is offered to the
    ///    platform's shared memory and bus);
    /// 4. progresses in-flight transfers, completing migrations and updating
    ///    run queues;
    /// 5. lets the slave daemons publish statistics to the master.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::Arch`] when the platform rejects a frequency or
    /// utilisation programmed by the OS (which would indicate a configuration
    /// mismatch between the OS scale and the platform scale).
    pub fn step(
        &mut self,
        platform: &mut MpsocPlatform,
        dt: Seconds,
    ) -> Result<MposStepReport, OsError> {
        let mut report = MposStepReport::default();
        self.step_into(platform, dt, &mut report)?;
        Ok(report)
    }

    /// [`step`](Self::step) writing into a caller-owned report whose vectors
    /// are cleared and refilled in place, so a report reused across steps
    /// stops allocating once its buffers have grown to the task/core counts.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Self::step).
    pub fn step_into(
        &mut self,
        platform: &mut MpsocPlatform,
        dt: Seconds,
        report: &mut MposStepReport,
    ) -> Result<(), OsError> {
        let num_cores = self.num_cores();
        report.executed_cycles.clear();
        report.executed_cycles.resize(self.tasks.len(), 0.0);
        report.core_loads.clear();
        report.completed_migrations.clear();
        report.started_migrations = 0;

        // 1+2. Frequency plan, utilisations and per-core load figures, fused
        //      into one pass per core (each core's frequency is programmed
        //      before its load is derived, exactly as the separate passes
        //      did, and cores are independent of each other here).
        let f_max = self.scale.max_frequency();
        for i in 0..num_cores {
            let core_id = CoreId(i);
            // One scan of the run queue yields both load figures (each sum
            // accumulates in queue order, exactly as the separate scans did).
            let mut total_fse = 0.0;
            let mut running_fse = 0.0;
            for &t in self.schedulers[i].tasks() {
                let task = &self.tasks[t.index()];
                total_fse += task.fse_load();
                if task.is_running() {
                    running_fse += task.fse_load();
                }
            }
            if self.dvfs_enabled {
                let freq = self.governor.frequency_for(total_fse);
                let core = platform.core_mut(core_id)?;
                if core.is_running() {
                    core.set_frequency(freq)?;
                }
            }
            let frequency = platform.core(core_id)?.frequency();
            let load = CoreLoad::from_fse(running_fse, frequency, f_max);
            platform
                .core_mut(core_id)?
                .set_utilization(load.utilization)?;
            report.core_loads.push(load);
        }

        // 3. Checkpoints and migration starts.
        let bus_seconds_per_byte = 1.0 / platform.bus().effective_bandwidth();
        for i in 0..self.tasks.len() {
            let id = TaskId(i);
            let crossed_checkpoint = self.tasks[i].advance(dt);
            // Executed cycles: a running task receives its FSE share of the
            // core's full-speed cycles, degraded by the core's service ratio
            // (overload or halt).
            if self.tasks[i].is_running() {
                let core = self.tasks[i].core();
                let service = report.core_loads[core.index()].service_ratio();
                report.executed_cycles[i] =
                    dt.as_secs() * f_max.as_hz() as f64 * self.tasks[i].fse_load() * service;
            }
            if crossed_checkpoint && self.migration.is_migrating(id) {
                let context = self.tasks[i].descriptor().context_size;
                let frequency = platform.core(self.tasks[i].core())?.frequency();
                if let Some(bytes) =
                    self.migration
                        .on_checkpoint(id, context, frequency, bus_seconds_per_byte)
                {
                    self.tasks[i].begin_migration();
                    platform.offer_shared_traffic(bytes);
                    self.migration.record_transfer(bytes);
                    report.started_migrations += 1;
                }
            }
        }

        // 4. Progress in-flight transfers.
        self.migration
            .step_into(dt, &mut report.completed_migrations);
        for done in &report.completed_migrations {
            self.schedulers[done.from.index()].evict(done.task);
            self.schedulers[done.to.index()].admit(done.task);
            self.tasks[done.task.index()].finish_migration(done.to);
            // The slave daemon on the destination acknowledges the hand-off.
            self.slaves[done.to.index()].acknowledge(done.task, &mut self.mailbox);
        }

        // 5. Statistics reporting. The statistics are only computed when a
        //    slave's report period actually elapsed, into a buffer recycled
        //    through the mailbox's spare pool.
        for i in 0..num_cores {
            if self.slaves[i].advance(dt) {
                let mut stats = self.mailbox.take_spare_stats();
                self.task_statistics_into(CoreId(i), &mut stats);
                self.slaves[i].publish(stats, &mut self.mailbox);
            }
        }
        // Absorb reports/acks; commands are only generated via
        // `request_migration`, which already drained them.
        let _ = self.master.process_mailbox(&mut self.mailbox);

        Ok(())
    }

    /// Total bytes migrated and number of migrations so far.
    pub fn migration_totals(&self) -> (u64, Bytes) {
        let totals = self.migration.totals();
        (totals.migrations, totals.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::platform::PlatformConfig;
    use tbp_arch::units::Bytes;

    fn platform() -> MpsocPlatform {
        MpsocPlatform::new(PlatformConfig::paper_default()).unwrap()
    }

    fn os_with_tasks() -> (Mpos, TaskId, TaskId, TaskId) {
        let mut os = Mpos::new(3, DvfsScale::paper_default());
        let a = os
            .spawn(
                TaskDescriptor::new("bpf1", 0.367, Bytes::from_kib(64)),
                CoreId(0),
            )
            .unwrap();
        let b = os
            .spawn(
                TaskDescriptor::new("demod", 0.283, Bytes::from_kib(64)),
                CoreId(0),
            )
            .unwrap();
        let c = os
            .spawn(
                TaskDescriptor::new("bpf2", 0.304, Bytes::from_kib(64)),
                CoreId(1),
            )
            .unwrap();
        (os, a, b, c)
    }

    #[test]
    fn spawn_and_placement() {
        let (mut os, a, b, c) = os_with_tasks();
        assert_eq!(os.num_cores(), 3);
        assert_eq!(os.tasks().len(), 3);
        assert_eq!(os.core_of(a).unwrap(), CoreId(0));
        assert_eq!(os.tasks_on(CoreId(0)).unwrap(), vec![a, b]);
        assert_eq!(os.tasks_on(CoreId(2)).unwrap(), vec![]);
        assert!(os.tasks_on(CoreId(7)).is_err());
        assert!(os.task(TaskId(99)).is_err());
        assert!(os.core_of(TaskId(99)).is_err());
        assert!((os.fse_load(CoreId(0)) - 0.65).abs() < 1e-9);
        assert_eq!(os.fse_load(CoreId(7)), 0.0);

        os.place(c, CoreId(2)).unwrap();
        assert_eq!(os.core_of(c).unwrap(), CoreId(2));
        assert!(os.place(c, CoreId(9)).is_err());
        assert!(os.place(TaskId(99), CoreId(0)).is_err());

        // Spawning on an unknown core fails.
        assert!(os
            .spawn(
                TaskDescriptor::new("x", 0.1, Bytes::from_kib(64)),
                CoreId(9)
            )
            .is_err());
    }

    #[test]
    fn frequency_plan_follows_table2_style_loads() {
        let (os, _, _, _) = os_with_tasks();
        let plan = os.frequency_plan().unwrap();
        // Core 0 carries 65 % FSE -> 400 MHz covers it (0.65+0.02 <= 0.75).
        assert_eq!(plan[0], Frequency::from_mhz(400.0));
        // Core 1 carries 30.4 % FSE -> 266 MHz.
        assert_eq!(plan[1], Frequency::from_mhz(266.0));
        // Idle core 2 -> lowest level.
        assert_eq!(plan[2], Frequency::from_mhz(133.0));
        assert_eq!(os.fse_loads().len(), 3);
    }

    #[test]
    fn step_programs_platform_and_reports_cycles() {
        let (mut os, a, _, _) = os_with_tasks();
        let mut platform = platform();
        let report = os.step(&mut platform, Seconds::from_millis(10.0)).unwrap();
        assert_eq!(report.executed_cycles.len(), 3);
        assert_eq!(report.core_loads.len(), 3);
        // Core 0 runs at 400 MHz with 65 % FSE -> utilisation 0.866.
        let util0 = platform.core(CoreId(0)).unwrap().utilization();
        assert!((util0 - 0.65 * 533.0 / 400.0).abs() < 0.02);
        // Task a executed its FSE share of full-speed cycles.
        let expected = 0.01 * 533e6 * 0.367;
        assert!((report.executed_cycles[a.index()] - expected).abs() / expected < 1e-6);
        assert_eq!(report.started_migrations, 0);
        assert!(report.completed_migrations.is_empty());
    }

    #[test]
    fn dvfs_can_be_disabled() {
        let (mut os, _, _, _) = os_with_tasks();
        os = os.with_dvfs(false);
        let mut platform = platform();
        os.step(&mut platform, Seconds::from_millis(10.0)).unwrap();
        // Cores stay at their construction-time maximum frequency.
        assert_eq!(
            platform.core(CoreId(0)).unwrap().frequency(),
            Frequency::from_mhz(533.0)
        );
    }

    #[test]
    fn migration_moves_task_between_cores() {
        let (mut os, a, _, _) = os_with_tasks();
        let mut platform = platform();
        os.request_migration(a, CoreId(2)).unwrap();
        assert!(os.is_migrating(a));
        assert_eq!(os.master().commands_issued(), 1);

        // Run until the migration completes (checkpoint at 50 ms + transfer).
        let mut completed = false;
        for _ in 0..200 {
            let report = os.step(&mut platform, Seconds::from_millis(10.0)).unwrap();
            if report
                .completed_migrations
                .iter()
                .any(|m| m.task == a && m.to == CoreId(2))
            {
                completed = true;
                break;
            }
        }
        assert!(completed, "migration should complete within 2 s");
        assert_eq!(os.core_of(a).unwrap(), CoreId(2));
        assert!(os.tasks_on(CoreId(2)).unwrap().contains(&a));
        assert!(!os.tasks_on(CoreId(0)).unwrap().contains(&a));
        assert!(!os.is_migrating(a));
        let (count, bytes) = os.migration_totals();
        assert_eq!(count, 1);
        assert!(bytes >= Bytes::from_kib(64));
        // The shared memory saw the transfer.
        assert!(platform.shared_memory().transferred() >= Bytes::from_kib(64));
        assert_eq!(os.task(a).unwrap().migrations(), 1);
    }

    #[test]
    fn migration_request_validation() {
        let (mut os, a, _, _) = os_with_tasks();
        assert!(matches!(
            os.request_migration(a, CoreId(0)),
            Err(OsError::SameCoreMigration(_))
        ));
        assert!(os.request_migration(a, CoreId(9)).is_err());
        os.request_migration(a, CoreId(1)).unwrap();
        assert!(matches!(
            os.request_migration(a, CoreId(2)),
            Err(OsError::AlreadyMigrating(_))
        ));
        // Pinned tasks cannot migrate.
        let pinned = os
            .spawn(
                TaskDescriptor::new("pinned", 0.1, Bytes::from_kib(64)).pinned(),
                CoreId(2),
            )
            .unwrap();
        assert!(matches!(
            os.request_migration(pinned, CoreId(0)),
            Err(OsError::InvalidTask(_))
        ));
        assert!(os.request_migration(TaskId(99), CoreId(0)).is_err());
    }

    #[test]
    fn frozen_task_executes_no_cycles_during_transfer() {
        let (mut os, a, _, _) = os_with_tasks();
        let mut platform = platform();
        os.request_migration(a, CoreId(2)).unwrap();
        let mut saw_frozen_step = false;
        for _ in 0..200 {
            let report = os.step(&mut platform, Seconds::from_millis(10.0)).unwrap();
            if !os.task(a).unwrap().is_running() {
                assert_eq!(report.executed_cycles[a.index()], 0.0);
                saw_frozen_step = true;
            }
            if !report.completed_migrations.is_empty() {
                break;
            }
        }
        // Depending on alignment the freeze may complete within one step, but
        // with a 64 kB context and bus time it spans at least one 10 ms step.
        assert!(saw_frozen_step || os.task(a).unwrap().migrations() == 1);
    }

    #[test]
    fn task_statistics_reflect_run_queue() {
        let (os, a, b, _) = os_with_tasks();
        let stats = os.task_statistics(CoreId(0));
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].task, a);
        assert_eq!(stats[1].task, b);
        let total: f64 = stats.iter().map(|s| s.utilization).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(os.task_statistics(CoreId(9)).is_empty());
    }

    #[test]
    fn halted_core_starves_its_tasks() {
        let (mut os, _, _, c) = os_with_tasks();
        let mut platform = platform();
        platform.core_mut(CoreId(1)).unwrap().halt();
        let report = os.step(&mut platform, Seconds::from_millis(10.0)).unwrap();
        assert_eq!(report.executed_cycles[c.index()], 0.0);
        assert!(report.core_loads[1].is_overloaded());
    }

    #[test]
    fn recreation_strategy_can_be_selected() {
        let os = Mpos::new(2, DvfsScale::paper_default())
            .with_strategy(MigrationStrategy::TaskRecreation);
        assert_eq!(os.migration().strategy(), MigrationStrategy::TaskRecreation);
        assert_eq!(os.scale().len(), 4);
    }
}
