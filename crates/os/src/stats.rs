//! Per-task execution statistics shared between the daemons.
//!
//! "To assist migration decision, each slave daemon writes in a shared data
//! structure the statistics related to local task execution (e.g. processor
//! utilization and memory occupation of each task), which are periodically
//! read by the master daemon" (Section 3.2). The thermal-balancing policy
//! consumes these statistics when selecting which tasks to move.

use serde::{Deserialize, Serialize};

use tbp_arch::units::Bytes;

use crate::task::TaskId;

/// Statistics of one task, as published by a slave daemon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskStats {
    /// The task the statistics describe.
    pub task: TaskId,
    /// Processor utilisation attributed to the task on its current core, in
    /// `[0, 1]`.
    pub utilization: f64,
    /// Memory occupation of the task (its migratable context size).
    pub memory: Bytes,
    /// Migrations the task has undergone so far.
    pub migrations: u64,
}

impl TaskStats {
    /// Creates a statistics record.
    pub fn new(task: TaskId, utilization: f64, memory: Bytes, migrations: u64) -> Self {
        TaskStats {
            task,
            utilization,
            memory,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_fields() {
        let s = TaskStats::new(TaskId(2), 0.61, Bytes::from_kib(64), 3);
        assert_eq!(s.task, TaskId(2));
        assert!((s.utilization - 0.61).abs() < 1e-12);
        assert_eq!(s.memory, Bytes::from_kib(64));
        assert_eq!(s.migrations, 3);
    }
}
