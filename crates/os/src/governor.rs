//! Per-core DVFS governor.
//!
//! The thermal balancing policy of the paper "lies on top of a dynamic
//! voltage/frequency scaling (DVFS) policy, thus the power consumption of a
//! task is proportional to its load" (Section 3.1). The governor implemented
//! here follows that description: every core independently selects the lowest
//! operating point whose frequency covers the total FSE load of its runnable
//! tasks, optionally with a small head-room margin to absorb load estimation
//! noise.

use serde::{Deserialize, Serialize};

use tbp_arch::freq::{DvfsScale, Frequency};

use crate::error::OsError;

/// Load-tracking DVFS governor shared by all cores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsGovernor {
    scale: DvfsScale,
    headroom: f64,
}

impl DvfsGovernor {
    /// Creates a governor on the given DVFS scale with the default 2 %
    /// head-room.
    pub fn new(scale: DvfsScale) -> Self {
        DvfsGovernor {
            scale,
            headroom: 0.02,
        }
    }

    /// Overrides the head-room margin added to the measured load before the
    /// level is selected.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidTask`] when the head-room is negative or not
    /// finite.
    pub fn with_headroom(mut self, headroom: f64) -> Result<Self, OsError> {
        if !(headroom.is_finite() && headroom >= 0.0) {
            return Err(OsError::InvalidTask(format!(
                "governor head-room {headroom} must be non-negative"
            )));
        }
        self.headroom = headroom;
        Ok(self)
    }

    /// The DVFS scale the governor selects levels from.
    pub fn scale(&self) -> &DvfsScale {
        &self.scale
    }

    /// The head-room margin.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }

    /// Frequency selected for a core whose runnable tasks sum to `fse_load`.
    ///
    /// The governor never selects a level below the minimum of the scale: an
    /// idle core still ticks at the lowest frequency (halting is a policy
    /// decision, not a governor one).
    pub fn frequency_for(&self, fse_load: f64) -> Frequency {
        let target = (fse_load.max(0.0) + self.headroom).min(1.0);
        self.scale
            .level_for_load(target)
            .map(|p| p.frequency)
            .unwrap_or_else(|| self.scale.min_frequency())
    }

    /// Mean of the currently selected frequencies, used by the policy's
    /// second candidate condition (`f_mean`).
    pub fn mean_frequency(frequencies: &[Frequency]) -> Frequency {
        if frequencies.is_empty() {
            return Frequency::ZERO;
        }
        let sum: u64 = frequencies.iter().map(|f| f.as_hz()).sum();
        Frequency::from_hz(sum / frequencies.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governor_selects_lowest_sufficient_level() {
        let gov = DvfsGovernor::new(DvfsScale::paper_default());
        // 65 % FSE (Table 2, core 1) needs 533 MHz: 400/533 = 0.75 covers it,
        // actually 0.65+0.02 = 0.67 < 0.75 -> 400 MHz would suffice; check
        // the selection is the smallest sufficient level.
        assert_eq!(gov.frequency_for(0.65), Frequency::from_mhz(400.0));
        // 33.5 % FSE (Table 2, core 2) -> 266 MHz.
        assert_eq!(gov.frequency_for(0.335), Frequency::from_mhz(266.0));
        // 72 % FSE -> 400 MHz covers 0.75.
        assert_eq!(gov.frequency_for(0.72), Frequency::from_mhz(400.0));
        // 90 % FSE -> 533 MHz.
        assert_eq!(gov.frequency_for(0.9), Frequency::from_mhz(533.0));
        // Idle core stays at the lowest level.
        assert_eq!(gov.frequency_for(0.0), Frequency::from_mhz(133.0));
        // Negative and overload inputs are clamped.
        assert_eq!(gov.frequency_for(-0.5), Frequency::from_mhz(133.0));
        assert_eq!(gov.frequency_for(2.0), Frequency::from_mhz(533.0));
    }

    #[test]
    fn headroom_is_configurable_and_validated() {
        let gov = DvfsGovernor::new(DvfsScale::paper_default())
            .with_headroom(0.0)
            .unwrap();
        assert_eq!(gov.headroom(), 0.0);
        // Without head-room a 0.2495 load exactly fits 133 MHz.
        assert_eq!(gov.frequency_for(0.2495), Frequency::from_mhz(133.0));
        assert!(DvfsGovernor::new(DvfsScale::paper_default())
            .with_headroom(-0.1)
            .is_err());
        assert!(DvfsGovernor::new(DvfsScale::paper_default())
            .with_headroom(f64::NAN)
            .is_err());
        assert_eq!(gov.scale().len(), 4);
        assert!(DvfsGovernor::new(DvfsScale::paper_default()).headroom() > 0.0);
    }

    #[test]
    fn mean_frequency_helper() {
        let freqs = [
            Frequency::from_mhz(533.0),
            Frequency::from_mhz(266.0),
            Frequency::from_mhz(266.0),
        ];
        let mean = DvfsGovernor::mean_frequency(&freqs);
        assert!((mean.as_mhz() - 355.0).abs() < 1.0);
        assert_eq!(DvfsGovernor::mean_frequency(&[]), Frequency::ZERO);
    }
}
