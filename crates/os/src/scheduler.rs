//! Per-core run queues and load accounting.
//!
//! Each core runs its own OS instance with its own scheduler. For the
//! thermal study the relevant quantity is the **utilisation** a core sees:
//! the sum of the FSE loads of its runnable tasks, rescaled by the ratio
//! between the core's maximum and current frequency. A core whose rescaled
//! utilisation exceeds 1 is overloaded — its tasks cannot keep up, which the
//! streaming layer turns into frame deadline misses.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::core::CoreId;
use tbp_arch::freq::Frequency;

use crate::task::TaskId;

/// The run queue of one core.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreScheduler {
    core: CoreId,
    tasks: Vec<TaskId>,
}

impl CoreScheduler {
    /// Creates an empty scheduler for `core`.
    pub fn new(core: CoreId) -> Self {
        CoreScheduler {
            core,
            tasks: Vec::new(),
        }
    }

    /// The core this scheduler belongs to.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Tasks currently assigned to this core, in admission order.
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// Number of tasks on this core.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Returns `true` when no task is assigned to this core.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Returns `true` when the given task is assigned to this core.
    pub fn contains(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }

    /// Admits a task to this core's run queue (no-op if already present).
    pub fn admit(&mut self, task: TaskId) {
        if !self.contains(task) {
            self.tasks.push(task);
        }
    }

    /// Removes a task from this core's run queue. Returns `true` when the
    /// task was present.
    pub fn evict(&mut self, task: TaskId) -> bool {
        let before = self.tasks.len();
        self.tasks.retain(|&t| t != task);
        self.tasks.len() != before
    }
}

impl fmt::Display for CoreScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} run queue ({} tasks)", self.core, self.tasks.len())
    }
}

/// Load figures of one core derived from its run queue.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoreLoad {
    /// Sum of FSE loads of the runnable tasks on the core.
    pub fse_load: f64,
    /// Utilisation at the core's current frequency (`fse · f_max / f`),
    /// clamped to `[0, 1]`.
    pub utilization: f64,
    /// Raw (unclamped) utilisation demand; values above 1 mean the core is
    /// overloaded at its current frequency.
    pub demand: f64,
}

impl CoreLoad {
    /// Computes the load figures for a given FSE sum, current frequency and
    /// maximum frequency.
    pub fn from_fse(fse_load: f64, current: Frequency, max: Frequency) -> Self {
        let demand = if current == Frequency::ZERO {
            if fse_load > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            fse_load * max.as_hz() as f64 / current.as_hz() as f64
        };
        CoreLoad {
            fse_load,
            utilization: demand.clamp(0.0, 1.0),
            demand,
        }
    }

    /// Returns `true` when the core cannot serve its tasks at the current
    /// frequency.
    pub fn is_overloaded(&self) -> bool {
        self.demand > 1.0 + 1e-9
    }

    /// The fraction of the demanded work the core actually delivers
    /// (1 when not overloaded, `1/demand` when overloaded, 0 when halted with
    /// pending load).
    pub fn service_ratio(&self) -> f64 {
        if self.demand <= 1.0 {
            1.0
        } else if self.demand.is_infinite() {
            0.0
        } else {
            1.0 / self.demand
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_queue_admission_and_eviction() {
        let mut sched = CoreScheduler::new(CoreId(1));
        assert_eq!(sched.core(), CoreId(1));
        assert!(sched.is_empty());
        sched.admit(TaskId(0));
        sched.admit(TaskId(1));
        sched.admit(TaskId(0)); // duplicate ignored
        assert_eq!(sched.len(), 2);
        assert!(sched.contains(TaskId(0)));
        assert!(!sched.contains(TaskId(5)));
        assert_eq!(sched.tasks(), &[TaskId(0), TaskId(1)]);
        assert!(sched.evict(TaskId(0)));
        assert!(!sched.evict(TaskId(0)));
        assert_eq!(sched.len(), 1);
        assert!(sched.to_string().contains("core1"));
        assert_eq!(CoreScheduler::default().core(), CoreId(0));
    }

    #[test]
    fn load_at_full_speed_equals_fse() {
        let max = Frequency::from_mhz(533.0);
        let load = CoreLoad::from_fse(0.65, max, max);
        assert!((load.utilization - 0.65).abs() < 1e-12);
        assert!((load.demand - 0.65).abs() < 1e-12);
        assert!(!load.is_overloaded());
        assert_eq!(load.service_ratio(), 1.0);
    }

    #[test]
    fn load_scales_up_at_lower_frequency() {
        let max = Frequency::from_mhz(533.0);
        let half = Frequency::from_mhz(266.0);
        // Table 2: BPF2 + Σ = 33.5 % FSE runs at 67.1 % utilisation at 266 MHz.
        let load = CoreLoad::from_fse(0.335, half, max);
        assert!((load.utilization - 0.671).abs() < 0.01);
        assert!(!load.is_overloaded());
        // Too much FSE load for the frequency -> overloaded.
        let over = CoreLoad::from_fse(0.6, half, max);
        assert!(over.is_overloaded());
        assert!(over.utilization <= 1.0);
        assert!(over.service_ratio() < 1.0);
        assert!((over.service_ratio() - 1.0 / over.demand).abs() < 1e-12);
    }

    #[test]
    fn halted_core_has_zero_service() {
        let max = Frequency::from_mhz(533.0);
        let load = CoreLoad::from_fse(0.3, Frequency::ZERO, max);
        assert!(load.demand.is_infinite());
        assert!(load.is_overloaded());
        assert_eq!(load.service_ratio(), 0.0);
        assert_eq!(load.utilization, 1.0);
        // Idle halted core is fine.
        let idle = CoreLoad::from_fse(0.0, Frequency::ZERO, max);
        assert_eq!(idle.demand, 0.0);
        assert_eq!(idle.service_ratio(), 1.0);
        assert_eq!(CoreLoad::default().fse_load, 0.0);
    }
}
