//! # tbp-os — multiprocessor OS and task-migration middleware model
//!
//! The paper's platform runs one uClinux instance per core plus a layered
//! middleware providing message passing and task migration (Section 3.2).
//! This crate models the pieces of that software stack that matter for the
//! thermal-balancing study:
//!
//! * [`task`] — tasks characterised by their full-speed-equivalent (FSE)
//!   load, context size and checkpoint period;
//! * [`scheduler`] — per-core run queues and the utilisation each core sees
//!   at its current frequency;
//! * [`governor`] — the DVFS policy the balancing algorithm sits on top of
//!   (each core picks the lowest frequency that covers its load);
//! * [`migration`] — the migration middleware: master/slave daemons,
//!   checkpoint-based hand-off, the task-replication and task-recreation
//!   back-ends, and the cycle-cost model of Figure 2;
//! * [`mpos`] — [`mpos::Mpos`], the assembled OS layer that the
//!   co-simulation engine drives.
//!
//! # Example
//!
//! ```
//! use tbp_os::mpos::Mpos;
//! use tbp_os::task::TaskDescriptor;
//! use tbp_arch::core::CoreId;
//! use tbp_arch::freq::DvfsScale;
//! use tbp_arch::units::Bytes;
//!
//! # fn main() -> Result<(), tbp_os::OsError> {
//! let mut os = Mpos::new(3, DvfsScale::paper_default());
//! let task = os.spawn(TaskDescriptor::new("bpf1", 0.367, Bytes::from_kib(64)), CoreId(0))?;
//! assert_eq!(os.core_of(task)?, CoreId(0));
//! // The governor picks 266 MHz for a 36.7 % FSE load.
//! let plan = os.frequency_plan()?;
//! assert_eq!(plan[0].as_mhz(), 266.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod error;
pub mod governor;
pub mod migration;
pub mod mpos;
pub mod scheduler;
pub mod stats;
pub mod task;

pub use error::OsError;
pub use mpos::Mpos;
pub use task::{TaskDescriptor, TaskId};
