//! Task descriptors and run-time task state.
//!
//! Section 3 of the paper characterises tasks by their **full-speed
//! equivalent (FSE) load** — the fraction of a core's cycles the task needs
//! when the core runs at its maximum frequency — and by the amount of data
//! that has to cross the shared memory when the task migrates (its context
//! size; the paper's middleware always transfers at least 64 kB, the minimum
//! allocation of the OS). Migration is only possible at user-defined
//! checkpoints, so a task also carries a checkpoint period.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::core::CoreId;
use tbp_arch::units::{Bytes, Seconds};

use crate::error::OsError;

/// Identifier of a task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub usize);

impl TaskId {
    /// Index of the task as a `usize`.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Static description of a task, as known to the master daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDescriptor {
    /// Human-readable name (e.g. `BPF1`, `DEMOD`).
    pub name: String,
    /// Full-speed-equivalent load in `[0, 1]`.
    pub fse_load: f64,
    /// Amount of data transferred through the shared memory when the task
    /// migrates (address-space/context size). The paper's platform never
    /// moves less than 64 kB.
    pub context_size: Bytes,
    /// Interval between two migration checkpoints of the task.
    pub checkpoint_period: Seconds,
    /// Whether the middleware is allowed to migrate this task at all.
    pub migratable: bool,
}

impl TaskDescriptor {
    /// Creates a migratable task with the default 50 ms checkpoint period.
    pub fn new(name: &str, fse_load: f64, context_size: Bytes) -> Self {
        TaskDescriptor {
            name: name.to_string(),
            fse_load,
            context_size,
            checkpoint_period: Seconds::from_millis(50.0),
            migratable: true,
        }
    }

    /// Overrides the checkpoint period.
    pub fn with_checkpoint_period(mut self, period: Seconds) -> Self {
        self.checkpoint_period = period;
        self
    }

    /// Marks the task as pinned (not migratable).
    pub fn pinned(mut self) -> Self {
        self.migratable = false;
        self
    }

    /// Validates the descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidTask`] when the FSE load is outside
    /// `[0, 1]`, the context size is zero, or the checkpoint period is not
    /// positive.
    pub fn validate(&self) -> Result<(), OsError> {
        if !(0.0..=1.0).contains(&self.fse_load) || !self.fse_load.is_finite() {
            return Err(OsError::InvalidTask(format!(
                "FSE load {} of `{}` must be in [0, 1]",
                self.fse_load, self.name
            )));
        }
        if self.context_size == Bytes::ZERO {
            return Err(OsError::InvalidTask(format!(
                "context size of `{}` must be > 0",
                self.name
            )));
        }
        if self.checkpoint_period.is_zero() {
            return Err(OsError::InvalidTask(format!(
                "checkpoint period of `{}` must be > 0",
                self.name
            )));
        }
        Ok(())
    }
}

/// Execution state of a task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskState {
    /// The task is runnable on its current core.
    Running,
    /// The task hit a checkpoint with a pending migration request and is
    /// frozen while its context is transferred.
    Migrating,
    /// The task is a passive replica waiting on a core it is not currently
    /// running on (task-replication strategy).
    Suspended,
}

/// Run-time bookkeeping for a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    descriptor: TaskDescriptor,
    core: CoreId,
    state: TaskState,
    time_since_checkpoint: Seconds,
    migrations: u64,
}

impl Task {
    /// Creates a running task mapped to `core`.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::InvalidTask`] when the descriptor is invalid.
    pub fn new(id: TaskId, descriptor: TaskDescriptor, core: CoreId) -> Result<Self, OsError> {
        descriptor.validate()?;
        Ok(Task {
            id,
            descriptor,
            core,
            state: TaskState::Running,
            time_since_checkpoint: Seconds::ZERO,
            migrations: 0,
        })
    }

    /// The task identifier.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The task's static descriptor.
    pub fn descriptor(&self) -> &TaskDescriptor {
        &self.descriptor
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.descriptor.name
    }

    /// The task's FSE load.
    pub fn fse_load(&self) -> f64 {
        self.descriptor.fse_load
    }

    /// The core the task currently runs on (or is migrating away from).
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The task's current state.
    pub fn state(&self) -> TaskState {
        self.state
    }

    /// Returns `true` when the task contributes load to its core (i.e. is not
    /// frozen by a migration).
    pub fn is_running(&self) -> bool {
        self.state == TaskState::Running
    }

    /// Number of completed migrations of this task.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Time elapsed since the last checkpoint.
    pub fn time_since_checkpoint(&self) -> Seconds {
        self.time_since_checkpoint
    }

    /// Advances the task's checkpoint clock and returns `true` when the task
    /// crosses a checkpoint during this interval (only running tasks make
    /// progress towards checkpoints).
    pub fn advance(&mut self, dt: Seconds) -> bool {
        if self.state != TaskState::Running {
            return false;
        }
        self.time_since_checkpoint += dt;
        if self.time_since_checkpoint.as_secs() + 1e-12
            >= self.descriptor.checkpoint_period.as_secs()
        {
            self.time_since_checkpoint = Seconds::ZERO;
            true
        } else {
            false
        }
    }

    /// Freezes the task for migration (called by the middleware when the
    /// task reaches a checkpoint with a pending migration request).
    pub(crate) fn begin_migration(&mut self) {
        self.state = TaskState::Migrating;
    }

    /// Completes a migration: the task resumes on `destination`.
    pub(crate) fn finish_migration(&mut self, destination: CoreId) {
        self.core = destination;
        self.state = TaskState::Running;
        self.migrations += 1;
        self.time_since_checkpoint = Seconds::ZERO;
    }

    /// Re-pins the task to a core without going through the migration
    /// machinery (initial placement or test setup).
    pub(crate) fn place_on(&mut self, core: CoreId) {
        self.core = core;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor() -> TaskDescriptor {
        TaskDescriptor::new("bpf1", 0.367, Bytes::from_kib(64))
    }

    #[test]
    fn task_id_display() {
        assert_eq!(TaskId(4).to_string(), "task4");
        assert_eq!(TaskId(4).index(), 4);
    }

    #[test]
    fn descriptor_builders_and_validation() {
        let d = descriptor();
        assert!(d.validate().is_ok());
        assert!(d.migratable);
        assert_eq!(d.checkpoint_period, Seconds::from_millis(50.0));
        let pinned = descriptor().pinned();
        assert!(!pinned.migratable);
        let custom = descriptor().with_checkpoint_period(Seconds::from_millis(10.0));
        assert_eq!(custom.checkpoint_period, Seconds::from_millis(10.0));

        let bad_load = TaskDescriptor::new("x", 1.5, Bytes::from_kib(64));
        assert!(bad_load.validate().is_err());
        let bad_load = TaskDescriptor::new("x", -0.1, Bytes::from_kib(64));
        assert!(bad_load.validate().is_err());
        let bad_ctx = TaskDescriptor::new("x", 0.5, Bytes::ZERO);
        assert!(bad_ctx.validate().is_err());
        let bad_cp = descriptor().with_checkpoint_period(Seconds::ZERO);
        assert!(bad_cp.validate().is_err());
        assert!(Task::new(TaskId(0), bad_cp, CoreId(0)).is_err());
    }

    #[test]
    fn new_task_is_running_on_its_core() {
        let task = Task::new(TaskId(1), descriptor(), CoreId(2)).unwrap();
        assert_eq!(task.id(), TaskId(1));
        assert_eq!(task.core(), CoreId(2));
        assert_eq!(task.state(), TaskState::Running);
        assert!(task.is_running());
        assert_eq!(task.migrations(), 0);
        assert_eq!(task.name(), "bpf1");
        assert!((task.fse_load() - 0.367).abs() < 1e-12);
        assert_eq!(task.descriptor().context_size, Bytes::from_kib(64));
        assert_eq!(task.time_since_checkpoint(), Seconds::ZERO);
    }

    #[test]
    fn advance_reports_checkpoints() {
        let mut task = Task::new(TaskId(0), descriptor(), CoreId(0)).unwrap();
        assert!(!task.advance(Seconds::from_millis(20.0)));
        assert!(!task.advance(Seconds::from_millis(20.0)));
        assert!(task.advance(Seconds::from_millis(10.0)));
        // Counter resets after a checkpoint.
        assert!(!task.advance(Seconds::from_millis(20.0)));
        assert!(task.advance(Seconds::from_millis(30.0)));
    }

    #[test]
    fn frozen_task_makes_no_checkpoint_progress() {
        let mut task = Task::new(TaskId(0), descriptor(), CoreId(0)).unwrap();
        task.begin_migration();
        assert_eq!(task.state(), TaskState::Migrating);
        assert!(!task.is_running());
        assert!(!task.advance(Seconds::new(1.0)));
        task.finish_migration(CoreId(1));
        assert_eq!(task.core(), CoreId(1));
        assert_eq!(task.state(), TaskState::Running);
        assert_eq!(task.migrations(), 1);
    }

    #[test]
    fn place_on_changes_core_without_counting_migration() {
        let mut task = Task::new(TaskId(0), descriptor(), CoreId(0)).unwrap();
        task.place_on(CoreId(2));
        assert_eq!(task.core(), CoreId(2));
        assert_eq!(task.migrations(), 0);
    }
}
