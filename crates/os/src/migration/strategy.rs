//! Migration back-end strategies.
//!
//! The paper implements two mechanisms that differ in how the destination
//! core obtains the task's memory image (Section 3.2):
//!
//! * **task recreation** kills the process on the source and re-creates it
//!   (fork/exec) on the destination. It needs an OS with dynamic loading and
//!   position-independent code — which the MicroBlaze cores of the paper's
//!   platform do not support — and it is slower, but it wastes no memory.
//! * **task replication** keeps a frozen replica of every migratable task in
//!   every core's private memory, so only the live context has to move. It is
//!   faster but reserves memory for each replica on every core.

use serde::{Deserialize, Serialize};
use std::fmt;

use tbp_arch::units::Bytes;

/// How a task's memory image reaches the destination core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MigrationStrategy {
    /// A replica of the task exists on every core; only the context moves.
    /// This is the strategy the paper actually deploys (the MicroBlaze
    /// toolchain lacks position-independent code).
    #[default]
    TaskReplication,
    /// The task is killed on the source and re-created on the destination
    /// (requires dynamic loading support in the OS).
    TaskRecreation,
}

impl MigrationStrategy {
    /// Memory reserved in **each** core's private memory for one migratable
    /// task of the given size.
    ///
    /// Replication pre-allocates the task's address space everywhere; with
    /// recreation only the core currently hosting the task pays for it, so
    /// the per-other-core reservation is zero.
    pub fn replica_memory_per_core(self, task_size: Bytes) -> Bytes {
        match self {
            MigrationStrategy::TaskReplication => task_size,
            MigrationStrategy::TaskRecreation => Bytes::ZERO,
        }
    }

    /// Total memory reserved across an `n`-core platform for one migratable
    /// task of the given size (including the core that runs it).
    pub fn total_memory(self, task_size: Bytes, num_cores: usize) -> Bytes {
        match self {
            MigrationStrategy::TaskReplication => {
                Bytes::new(task_size.as_u64().saturating_mul(num_cores as u64))
            }
            MigrationStrategy::TaskRecreation => task_size,
        }
    }

    /// Returns `true` when the strategy requires OS support for dynamic
    /// loading (and position-independent code on MMU-less processors).
    pub fn requires_dynamic_loading(self) -> bool {
        matches!(self, MigrationStrategy::TaskRecreation)
    }
}

impl fmt::Display for MigrationStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationStrategy::TaskReplication => write!(f, "task replication"),
            MigrationStrategy::TaskRecreation => write!(f, "task re-creation"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_replication_like_the_paper() {
        assert_eq!(
            MigrationStrategy::default(),
            MigrationStrategy::TaskReplication
        );
    }

    #[test]
    fn replication_wastes_memory_on_every_core() {
        let size = Bytes::from_kib(64);
        assert_eq!(
            MigrationStrategy::TaskReplication.replica_memory_per_core(size),
            size
        );
        assert_eq!(
            MigrationStrategy::TaskRecreation.replica_memory_per_core(size),
            Bytes::ZERO
        );
        assert_eq!(
            MigrationStrategy::TaskReplication.total_memory(size, 3),
            Bytes::from_kib(192)
        );
        assert_eq!(
            MigrationStrategy::TaskRecreation.total_memory(size, 3),
            size
        );
    }

    #[test]
    fn recreation_needs_dynamic_loading() {
        assert!(MigrationStrategy::TaskRecreation.requires_dynamic_loading());
        assert!(!MigrationStrategy::TaskReplication.requires_dynamic_loading());
    }

    #[test]
    fn display_names() {
        assert_eq!(
            MigrationStrategy::TaskReplication.to_string(),
            "task replication"
        );
        assert_eq!(
            MigrationStrategy::TaskRecreation.to_string(),
            "task re-creation"
        );
    }
}
