//! Migration cost model (Figure 2 of the paper).
//!
//! Figure 2 plots the processor cycles needed to perform one migration as a
//! function of the task size, for the two back-ends:
//!
//! * **task replication** — the context is copied through the shared memory;
//!   the cost is essentially linear in the task size with a small offset
//!   (daemon synchronisation, PCB bookkeeping);
//! * **task recreation** — on top of the context copy, the destination kernel
//!   must `fork`/`exec` the process again and re-load its code from the file
//!   system, which adds a large constant offset, and the heavier shared-memory
//!   traffic increases bus contention, giving the curve a **larger slope**
//!   that grows with the task size.
//!
//! The constants below are calibrated to the shape of Figure 2 (hundreds of
//! thousands of cycles for 64 kB replication, millions of cycles for large
//! recreations); absolute values from the FPGA platform are not published, so
//! what matters — and what the tests pin down — is the offset between the two
//! curves and the slope relationship.

use serde::{Deserialize, Serialize};

use tbp_arch::units::Bytes;

use super::strategy::MigrationStrategy;

/// Minimum amount of data the OS moves for any migration (64 kB, "the
/// minimum memory space allocated by the OS", Section 5).
pub const MIN_TRANSFER: Bytes = Bytes::new(64 * 1024);

/// Cycle-cost model for task migrations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Fixed cycles for a replication hand-off (daemon sync, PCB update,
    /// queue re-attachment).
    pub replication_base_cycles: f64,
    /// Cycles per byte copied through the shared memory for replication.
    pub replication_cycles_per_byte: f64,
    /// Fixed cycles for a recreation (fork/exec plus code reload from the
    /// file system).
    pub recreation_base_cycles: f64,
    /// Cycles per byte for recreation (larger: the address space is written
    /// back and re-read, and code pages come from the file system).
    pub recreation_cycles_per_byte: f64,
    /// Additional super-linear contention term for recreation, in cycles per
    /// squared mebibyte, modelling the growing bus contention the paper
    /// observes for large task sizes.
    pub recreation_contention_cycles_per_mib2: f64,
}

impl MigrationCostModel {
    /// The default model calibrated to the shape of Figure 2.
    pub fn paper_default() -> Self {
        MigrationCostModel {
            replication_base_cycles: 120_000.0,
            replication_cycles_per_byte: 2.0,
            recreation_base_cycles: 1_800_000.0,
            recreation_cycles_per_byte: 3.2,
            recreation_contention_cycles_per_mib2: 400_000.0,
        }
    }

    /// Bytes actually moved through the shared memory for a task of
    /// `context_size`: never less than [`MIN_TRANSFER`], and recreation also
    /// re-loads the code image (modelled as the same amount again).
    pub fn transferred_bytes(&self, strategy: MigrationStrategy, context_size: Bytes) -> Bytes {
        let context = Bytes::new(context_size.as_u64().max(MIN_TRANSFER.as_u64()));
        match strategy {
            MigrationStrategy::TaskReplication => context,
            MigrationStrategy::TaskRecreation => Bytes::new(context.as_u64() * 2),
        }
    }

    /// Processor cycles needed to migrate a task of `context_size` with the
    /// given back-end.
    pub fn cycles(&self, strategy: MigrationStrategy, context_size: Bytes) -> f64 {
        let bytes = Bytes::new(context_size.as_u64().max(MIN_TRANSFER.as_u64()));
        let b = bytes.as_u64() as f64;
        match strategy {
            MigrationStrategy::TaskReplication => {
                self.replication_base_cycles + self.replication_cycles_per_byte * b
            }
            MigrationStrategy::TaskRecreation => {
                let mib = bytes.as_mib();
                self.recreation_base_cycles
                    + self.recreation_cycles_per_byte * b
                    + self.recreation_contention_cycles_per_mib2 * mib * mib
            }
        }
    }

    /// Slope (cycles per byte) of the cost curve around `context_size`,
    /// estimated by a central finite difference. Used by the Figure 2
    /// regeneration harness to verify that recreation has the steeper curve.
    pub fn slope_at(&self, strategy: MigrationStrategy, context_size: Bytes) -> f64 {
        let h = 4096.0;
        let base = context_size.as_u64().max(MIN_TRANSFER.as_u64()) as f64;
        let lo = Bytes::new((base - h).max(MIN_TRANSFER.as_u64() as f64) as u64);
        let hi = Bytes::new((base + h) as u64);
        let d_bytes = (hi.as_u64() - lo.as_u64()) as f64;
        if d_bytes == 0.0 {
            return 0.0;
        }
        (self.cycles(strategy, hi) - self.cycles(strategy, lo)) / d_bytes
    }
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        MigrationCostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_transfer_is_64_kib() {
        let model = MigrationCostModel::paper_default();
        assert_eq!(MIN_TRANSFER, Bytes::from_kib(64));
        // Tiny tasks still move 64 kB.
        assert_eq!(
            model.transferred_bytes(MigrationStrategy::TaskReplication, Bytes::new(100)),
            Bytes::from_kib(64)
        );
        // Larger tasks move their full context.
        assert_eq!(
            model.transferred_bytes(MigrationStrategy::TaskReplication, Bytes::from_kib(256)),
            Bytes::from_kib(256)
        );
        // Recreation re-loads the code image as well.
        assert_eq!(
            model.transferred_bytes(MigrationStrategy::TaskRecreation, Bytes::from_kib(256)),
            Bytes::from_kib(512)
        );
    }

    #[test]
    fn recreation_has_offset_over_replication() {
        // Figure 2: an offset appears between the two curves because task
        // recreation re-loads the program code from the file system.
        let model = MigrationCostModel::paper_default();
        for kib in [64u64, 128, 256, 512, 1024] {
            let size = Bytes::from_kib(kib);
            let repl = model.cycles(MigrationStrategy::TaskReplication, size);
            let recr = model.cycles(MigrationStrategy::TaskRecreation, size);
            assert!(
                recr > repl + 1_000_000.0,
                "recreation should cost much more at {kib} kB ({recr} vs {repl})"
            );
        }
    }

    #[test]
    fn recreation_slope_is_larger_and_grows_with_size() {
        // Figure 2: the recreation curve has a larger slope, and the slope
        // grows with the task size because of bus contention.
        let model = MigrationCostModel::paper_default();
        let small = Bytes::from_kib(64);
        let large = Bytes::from_mib(1);
        let repl_slope_small = model.slope_at(MigrationStrategy::TaskReplication, small);
        let repl_slope_large = model.slope_at(MigrationStrategy::TaskReplication, large);
        let recr_slope_small = model.slope_at(MigrationStrategy::TaskRecreation, small);
        let recr_slope_large = model.slope_at(MigrationStrategy::TaskRecreation, large);
        assert!(recr_slope_small > repl_slope_small);
        assert!(recr_slope_large > repl_slope_large);
        // Replication is linear; recreation slope increases with size.
        assert!((repl_slope_large - repl_slope_small).abs() < 1e-6);
        assert!(recr_slope_large > recr_slope_small * 1.05);
    }

    #[test]
    fn costs_are_monotone_in_size() {
        let model = MigrationCostModel::default();
        for strategy in [
            MigrationStrategy::TaskReplication,
            MigrationStrategy::TaskRecreation,
        ] {
            let mut last = 0.0;
            for kib in [64u64, 96, 128, 256, 384, 512, 768, 1024] {
                let c = model.cycles(strategy, Bytes::from_kib(kib));
                assert!(c > last, "{strategy:?} cost must grow with size");
                last = c;
            }
        }
    }

    #[test]
    fn replication_64k_cost_is_sub_millisecond_at_500mhz() {
        // Section 5 argues migration overhead is negligible: a 64 kB
        // replication must complete in well under a millisecond of CPU time.
        let model = MigrationCostModel::paper_default();
        let cycles = model.cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(64));
        let seconds = cycles / 500e6;
        assert!(seconds < 1e-3, "64 kB replication took {seconds} s of CPU");
    }
}
