//! Task-migration middleware.
//!
//! The paper implements migration as a cooperation between a **master
//! daemon** (one per system, dispatching tasks) and per-core **slave
//! daemons**, with tasks only allowing migration at user-defined
//! **checkpoints** (Section 3.2). Two back-ends are provided: task
//! **recreation** (fork/exec on the destination, requires dynamic loading)
//! and task **replication** (a frozen replica of every migratable task lives
//! on every core). The measured cycle cost of both is reported in Figure 2.
//!
//! This module models the full life cycle of a migration:
//!
//! 1. the policy asks the [`MigrationManager`] to move a task;
//! 2. the request waits until the task reaches its next checkpoint;
//! 3. the task freezes, its context is pushed through the shared memory (the
//!    traffic is offered to the platform's bus), and the freeze lasts for the
//!    number of cycles predicted by the [`cost::MigrationCostModel`];
//! 4. the task resumes on the destination core and the run queues are
//!    updated.

pub mod cost;
pub mod daemon;
pub mod strategy;

use serde::{Deserialize, Serialize};

use tbp_arch::core::CoreId;
use tbp_arch::freq::Frequency;
use tbp_arch::units::{Bytes, Seconds};

use crate::error::OsError;
use crate::task::TaskId;

pub use cost::MigrationCostModel;
pub use strategy::MigrationStrategy;

/// Phase of an in-flight migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MigrationPhase {
    /// Waiting for the task to reach its next checkpoint.
    WaitingForCheckpoint,
    /// The task is frozen and its context is being transferred; the field is
    /// the remaining freeze time.
    Transferring(Seconds),
}

/// An in-flight migration tracked by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRequest {
    /// The task being moved.
    pub task: TaskId,
    /// Core the task is leaving.
    pub from: CoreId,
    /// Core the task is moving to.
    pub to: CoreId,
    /// Current phase of the migration.
    pub phase: MigrationPhase,
    /// Bytes pushed through the shared memory once the transfer starts.
    pub bytes: Bytes,
    /// Total freeze time computed when the transfer started.
    pub freeze_total: Seconds,
}

/// A migration that completed during the last step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedMigration {
    /// The migrated task.
    pub task: TaskId,
    /// Source core.
    pub from: CoreId,
    /// Destination core.
    pub to: CoreId,
    /// Bytes pushed through the shared memory for this migration.
    pub bytes: Bytes,
    /// How long the task stayed frozen.
    pub freeze_time: Seconds,
}

/// Aggregate statistics of the migration middleware.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MigrationTotals {
    /// Number of completed migrations.
    pub migrations: u64,
    /// Total bytes transferred through the shared memory for migrations.
    pub bytes: Bytes,
    /// Total time tasks spent frozen.
    pub frozen_time: Seconds,
}

/// The migration middleware: tracks requests, freezes and completions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationManager {
    strategy: MigrationStrategy,
    cost_model: MigrationCostModel,
    in_flight: Vec<MigrationRequest>,
    totals: MigrationTotals,
}

impl MigrationManager {
    /// Creates a manager using the given back-end strategy and its default
    /// cost model.
    pub fn new(strategy: MigrationStrategy) -> Self {
        MigrationManager {
            strategy,
            cost_model: MigrationCostModel::paper_default(),
            in_flight: Vec::new(),
            totals: MigrationTotals::default(),
        }
    }

    /// Overrides the cost model (for ablation experiments).
    pub fn with_cost_model(mut self, cost_model: MigrationCostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The back-end strategy in use.
    pub fn strategy(&self) -> MigrationStrategy {
        self.strategy
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &MigrationCostModel {
        &self.cost_model
    }

    /// Currently in-flight migrations.
    pub fn in_flight(&self) -> &[MigrationRequest] {
        &self.in_flight
    }

    /// Aggregate statistics since construction.
    pub fn totals(&self) -> &MigrationTotals {
        &self.totals
    }

    /// Returns `true` when the task has a pending or executing migration.
    pub fn is_migrating(&self, task: TaskId) -> bool {
        self.in_flight.iter().any(|m| m.task == task)
    }

    /// Registers a migration request. The move actually starts at the task's
    /// next checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::AlreadyMigrating`] when the task already has a
    /// pending migration and [`OsError::SameCoreMigration`] when source and
    /// destination are identical.
    pub fn request(&mut self, task: TaskId, from: CoreId, to: CoreId) -> Result<(), OsError> {
        if from == to {
            return Err(OsError::SameCoreMigration(task));
        }
        if self.is_migrating(task) {
            return Err(OsError::AlreadyMigrating(task));
        }
        self.in_flight.push(MigrationRequest {
            task,
            from,
            to,
            phase: MigrationPhase::WaitingForCheckpoint,
            bytes: Bytes::ZERO,
            freeze_total: Seconds::ZERO,
        });
        Ok(())
    }

    /// Cancels any pending (not yet transferring) migration of `task`.
    /// Returns `true` when a request was removed.
    pub fn cancel_pending(&mut self, task: TaskId) -> bool {
        let before = self.in_flight.len();
        self.in_flight.retain(|m| {
            !(m.task == task && matches!(m.phase, MigrationPhase::WaitingForCheckpoint))
        });
        self.in_flight.len() != before
    }

    /// Called when `task` reaches a checkpoint: if a migration is waiting,
    /// the task freezes and the transfer begins. Returns the bytes to offer
    /// to the shared memory / bus, or `None` when no migration was pending.
    ///
    /// `source_frequency` is the frequency of the core executing the
    /// middleware code, and `bus_seconds_per_byte` the current effective
    /// cost of pushing one byte through the shared memory (including
    /// contention).
    pub fn on_checkpoint(
        &mut self,
        task: TaskId,
        context_size: Bytes,
        source_frequency: Frequency,
        bus_seconds_per_byte: f64,
    ) -> Option<Bytes> {
        let request = self
            .in_flight
            .iter_mut()
            .find(|m| m.task == task && matches!(m.phase, MigrationPhase::WaitingForCheckpoint))?;
        let bytes = self
            .cost_model
            .transferred_bytes(self.strategy, context_size);
        let cycles = self.cost_model.cycles(self.strategy, context_size);
        let cpu_time = source_frequency.time_for_cycles(cycles);
        let cpu_time = if cpu_time.is_finite() {
            cpu_time
        } else {
            // Source core halted: the middleware runs at the scale's lowest
            // frequency once the core is woken for the transfer; fall back to
            // a pessimistic 133 MHz.
            Frequency::from_mhz(133.0).time_for_cycles(cycles)
        };
        let bus_time = bytes.as_u64() as f64 * bus_seconds_per_byte;
        let freeze = Seconds::new(cpu_time + bus_time);
        request.phase = MigrationPhase::Transferring(freeze);
        request.bytes = bytes;
        request.freeze_total = freeze;
        Some(bytes)
    }

    /// Advances all transferring migrations by `dt` and returns those that
    /// completed. The caller is responsible for updating run queues and task
    /// states from the returned records.
    pub fn step(&mut self, dt: Seconds) -> Vec<CompletedMigration> {
        let mut completed = Vec::new();
        self.step_into(dt, &mut completed);
        completed
    }

    /// [`step`](Self::step) into a reusable buffer: `completed` is cleared
    /// and refilled, so a caller that keeps the buffer across steps stops
    /// allocating for the (rare) completion records.
    pub fn step_into(&mut self, dt: Seconds, completed: &mut Vec<CompletedMigration>) {
        completed.clear();
        self.in_flight.retain_mut(|m| {
            if let MigrationPhase::Transferring(remaining) = m.phase {
                let left = remaining.saturating_sub(dt);
                if left.is_zero() {
                    completed.push(CompletedMigration {
                        task: m.task,
                        from: m.from,
                        to: m.to,
                        bytes: m.bytes,
                        freeze_time: m.freeze_total,
                    });
                    false
                } else {
                    m.phase = MigrationPhase::Transferring(left);
                    true
                }
            } else {
                true
            }
        });
        for done in completed.iter() {
            self.totals.migrations += 1;
            self.totals.frozen_time += done.freeze_time;
        }
    }

    /// Records the bytes actually transferred for a completed migration (the
    /// manager cannot know the context size of a task by itself).
    pub fn record_transfer(&mut self, bytes: Bytes) {
        self.totals.bytes = self.totals.bytes.saturating_add(bytes);
    }

    /// Clears in-flight state and statistics.
    pub fn reset(&mut self) {
        self.in_flight.clear();
        self.totals = MigrationTotals::default();
    }
}

impl Default for MigrationManager {
    fn default() -> Self {
        MigrationManager::new(MigrationStrategy::TaskReplication)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_validation() {
        let mut mgr = MigrationManager::default();
        assert_eq!(mgr.strategy(), MigrationStrategy::TaskReplication);
        assert!(mgr.request(TaskId(0), CoreId(0), CoreId(0)).is_err());
        assert!(mgr.request(TaskId(0), CoreId(0), CoreId(1)).is_ok());
        assert!(matches!(
            mgr.request(TaskId(0), CoreId(0), CoreId(2)),
            Err(OsError::AlreadyMigrating(_))
        ));
        assert!(mgr.is_migrating(TaskId(0)));
        assert!(!mgr.is_migrating(TaskId(1)));
        assert_eq!(mgr.in_flight().len(), 1);
    }

    #[test]
    fn cancel_pending_only_removes_waiting_requests() {
        let mut mgr = MigrationManager::default();
        mgr.request(TaskId(0), CoreId(0), CoreId(1)).unwrap();
        assert!(mgr.cancel_pending(TaskId(0)));
        assert!(!mgr.cancel_pending(TaskId(0)));
        assert!(!mgr.is_migrating(TaskId(0)));

        // Once transferring, cancel does nothing.
        mgr.request(TaskId(1), CoreId(0), CoreId(1)).unwrap();
        mgr.on_checkpoint(
            TaskId(1),
            Bytes::from_kib(64),
            Frequency::from_mhz(533.0),
            2e-9,
        )
        .unwrap();
        assert!(!mgr.cancel_pending(TaskId(1)));
        assert!(mgr.is_migrating(TaskId(1)));
    }

    #[test]
    fn full_migration_lifecycle() {
        let mut mgr = MigrationManager::new(MigrationStrategy::TaskReplication);
        mgr.request(TaskId(3), CoreId(0), CoreId(2)).unwrap();

        // No transfer before the checkpoint.
        assert!(mgr.step(Seconds::from_millis(10.0)).is_empty());

        // Checkpoint on an unrelated task does nothing.
        assert!(mgr
            .on_checkpoint(
                TaskId(9),
                Bytes::from_kib(64),
                Frequency::from_mhz(533.0),
                2e-9
            )
            .is_none());

        let bytes = mgr
            .on_checkpoint(
                TaskId(3),
                Bytes::from_kib(64),
                Frequency::from_mhz(533.0),
                2e-9,
            )
            .unwrap();
        assert!(bytes >= Bytes::from_kib(64));
        mgr.record_transfer(bytes);

        // The freeze lasts a sub-millisecond time at 533 MHz for 64 kB; step
        // in 100 µs increments until it completes.
        let mut completed = Vec::new();
        for _ in 0..100 {
            completed = mgr.step(Seconds::from_micros(100.0));
            if !completed.is_empty() {
                break;
            }
        }
        assert_eq!(completed.len(), 1);
        assert_eq!(completed[0].task, TaskId(3));
        assert_eq!(completed[0].from, CoreId(0));
        assert_eq!(completed[0].to, CoreId(2));
        assert!(!mgr.is_migrating(TaskId(3)));
        assert_eq!(mgr.totals().migrations, 1);
        assert_eq!(mgr.totals().bytes, bytes);
        assert!(mgr.totals().frozen_time.as_secs() >= 0.0);
    }

    #[test]
    fn halted_source_core_still_migrates() {
        let mut mgr = MigrationManager::default();
        mgr.request(TaskId(0), CoreId(1), CoreId(2)).unwrap();
        let bytes = mgr.on_checkpoint(TaskId(0), Bytes::from_kib(64), Frequency::ZERO, 2e-9);
        assert!(bytes.is_some());
        // Completes eventually (pessimistic 133 MHz fallback).
        let mut done = false;
        for _ in 0..10_000 {
            if !mgr.step(Seconds::from_millis(1.0)).is_empty() {
                done = true;
                break;
            }
        }
        assert!(done);
    }

    #[test]
    fn reset_clears_everything() {
        let mut mgr = MigrationManager::default();
        mgr.request(TaskId(0), CoreId(0), CoreId(1)).unwrap();
        mgr.record_transfer(Bytes::from_kib(64));
        mgr.reset();
        assert!(mgr.in_flight().is_empty());
        assert_eq!(mgr.totals().migrations, 0);
        assert_eq!(mgr.totals().bytes, Bytes::ZERO);
        assert!(
            mgr.cost_model()
                .cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(64))
                > 0.0
        );
    }
}
