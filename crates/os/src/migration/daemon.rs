//! Master and slave migration daemons.
//!
//! In the paper's middleware a **master daemon** runs on one core and
//! dispatches tasks, while a **slave daemon** on every core periodically
//! writes per-task execution statistics (processor utilisation, memory
//! occupation) into a shared data structure that the master reads to assist
//! migration decisions (Section 3.2). This module models that message flow:
//! the daemons exchange [`DaemonMessage`]s through an in-memory mailbox that
//! stands in for the dedicated shared-memory area of the real platform.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use tbp_arch::core::CoreId;
use tbp_arch::units::Seconds;

use crate::stats::TaskStats;
use crate::task::TaskId;

/// Messages exchanged between the master daemon and the slave daemons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DaemonMessage {
    /// A slave publishes fresh statistics for the tasks it hosts.
    StatsReport {
        /// Reporting core.
        core: CoreId,
        /// Statistics of the tasks hosted on that core.
        stats: Vec<TaskStats>,
    },
    /// The master orders a migration.
    MigrateCommand {
        /// Task to move.
        task: TaskId,
        /// Source core.
        from: CoreId,
        /// Destination core.
        to: CoreId,
    },
    /// A slave acknowledges that a migration completed.
    MigrateAck {
        /// The migrated task.
        task: TaskId,
        /// The core the task now runs on.
        now_on: CoreId,
    },
}

/// The per-core slave daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaveDaemon {
    core: CoreId,
    report_period: Seconds,
    since_last_report: Seconds,
    reports_sent: u64,
}

impl SlaveDaemon {
    /// Creates a slave daemon for `core` reporting statistics every
    /// `report_period`.
    pub fn new(core: CoreId, report_period: Seconds) -> Self {
        SlaveDaemon {
            core,
            report_period,
            since_last_report: Seconds::ZERO,
            reports_sent: 0,
        }
    }

    /// The core this daemon runs on.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Number of statistics reports published so far.
    pub fn reports_sent(&self) -> u64 {
        self.reports_sent
    }

    /// Advances the daemon's clock; when the report period elapses the given
    /// statistics are published to the mailbox.
    pub fn tick(&mut self, dt: Seconds, stats: Vec<TaskStats>, mailbox: &mut DaemonMailbox) {
        if self.advance(dt) {
            self.publish(stats, mailbox);
        }
    }

    /// Advances the daemon's clock by `dt` and returns `true` when a
    /// statistics report is due. Splitting the clock from
    /// [`publish`](Self::publish) lets the OS step skip *computing* the
    /// statistics on the vast majority of steps where no report is due.
    pub fn advance(&mut self, dt: Seconds) -> bool {
        self.since_last_report += dt;
        self.since_last_report.as_secs() + 1e-12 >= self.report_period.as_secs()
    }

    /// Publishes a statistics report and restarts the report period (call
    /// when [`advance`](Self::advance) returned `true`).
    pub fn publish(&mut self, stats: Vec<TaskStats>, mailbox: &mut DaemonMailbox) {
        self.since_last_report = Seconds::ZERO;
        self.reports_sent += 1;
        mailbox.push(DaemonMessage::StatsReport {
            core: self.core,
            stats,
        });
    }

    /// Acknowledges a completed migration to the master.
    pub fn acknowledge(&self, task: TaskId, mailbox: &mut DaemonMailbox) {
        mailbox.push(DaemonMessage::MigrateAck {
            task,
            now_on: self.core,
        });
    }
}

/// The system-wide master daemon.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MasterDaemon {
    /// Latest statistics received from each core, indexed by core id.
    stats: Vec<Vec<TaskStats>>,
    commands_issued: u64,
    acks_received: u64,
}

impl MasterDaemon {
    /// Creates a master daemon aware of `num_cores` cores.
    pub fn new(num_cores: usize) -> Self {
        MasterDaemon {
            stats: vec![Vec::new(); num_cores],
            commands_issued: 0,
            acks_received: 0,
        }
    }

    /// Latest statistics snapshot for a core (empty before the first report).
    pub fn stats_for(&self, core: CoreId) -> &[TaskStats] {
        self.stats
            .get(core.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of migration commands issued.
    pub fn commands_issued(&self) -> u64 {
        self.commands_issued
    }

    /// Number of migration acknowledgements received.
    pub fn acks_received(&self) -> u64 {
        self.acks_received
    }

    /// Issues a migration command into the mailbox.
    pub fn command_migration(
        &mut self,
        task: TaskId,
        from: CoreId,
        to: CoreId,
        mailbox: &mut DaemonMailbox,
    ) {
        self.commands_issued += 1;
        mailbox.push(DaemonMessage::MigrateCommand { task, from, to });
    }

    /// Drains the mailbox, absorbing statistics reports and acknowledgements,
    /// and returns the migration commands found (so the middleware can hand
    /// them to the [`MigrationManager`](super::MigrationManager)).
    pub fn process_mailbox(&mut self, mailbox: &mut DaemonMailbox) -> Vec<DaemonMessage> {
        let mut commands = Vec::new();
        while let Some(message) = mailbox.pop() {
            match message {
                DaemonMessage::StatsReport { core, mut stats } => {
                    if let Some(slot) = self.stats.get_mut(core.index()) {
                        // Swap rather than assign: the displaced snapshot's
                        // buffer goes back into the mailbox's spare pool so
                        // the periodic reports stop churning the allocator.
                        std::mem::swap(slot, &mut stats);
                    }
                    mailbox.recycle(stats);
                }
                DaemonMessage::MigrateAck { .. } => {
                    self.acks_received += 1;
                }
                cmd @ DaemonMessage::MigrateCommand { .. } => commands.push(cmd),
            }
        }
        commands
    }
}

/// The shared-memory mailbox the daemons communicate through.
///
/// Besides the message queue it keeps a small pool of spare statistics
/// buffers: the master recycles the snapshot it displaces when absorbing a
/// report, and the slaves draw from the pool when composing the next one, so
/// steady-state statistics traffic performs no heap allocations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DaemonMailbox {
    messages: VecDeque<DaemonMessage>,
    /// Recycled statistics buffers (cleared, capacity retained).
    spare_stats: Vec<Vec<TaskStats>>,
}

impl DaemonMailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        DaemonMailbox::default()
    }

    /// Number of messages waiting.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Returns `true` when no message is waiting.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Appends a message.
    pub fn push(&mut self, message: DaemonMessage) {
        self.messages.push_back(message);
    }

    /// Removes and returns the oldest message.
    pub fn pop(&mut self) -> Option<DaemonMessage> {
        self.messages.pop_front()
    }

    /// Takes a cleared statistics buffer from the spare pool (empty when the
    /// pool is dry; the buffer then grows once and is recycled thereafter).
    pub fn take_spare_stats(&mut self) -> Vec<TaskStats> {
        self.spare_stats.pop().unwrap_or_default()
    }

    /// Returns a statistics buffer to the spare pool for reuse.
    pub fn recycle(&mut self, mut stats: Vec<TaskStats>) {
        stats.clear();
        // A handful of spares covers one in-flight report per core; beyond
        // that, let excess buffers drop.
        if self.spare_stats.len() < 64 {
            self.spare_stats.push(stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbp_arch::units::Bytes;

    fn stats(task: usize) -> TaskStats {
        TaskStats {
            task: TaskId(task),
            utilization: 0.4,
            memory: Bytes::from_kib(64),
            migrations: 0,
        }
    }

    #[test]
    fn slave_reports_on_schedule() {
        let mut mailbox = DaemonMailbox::new();
        let mut slave = SlaveDaemon::new(CoreId(1), Seconds::from_millis(100.0));
        assert_eq!(slave.core(), CoreId(1));
        slave.tick(Seconds::from_millis(40.0), vec![stats(0)], &mut mailbox);
        assert!(mailbox.is_empty());
        slave.tick(Seconds::from_millis(60.0), vec![stats(0)], &mut mailbox);
        assert_eq!(mailbox.len(), 1);
        assert_eq!(slave.reports_sent(), 1);
        // The period restarts after a report.
        slave.tick(Seconds::from_millis(40.0), vec![stats(0)], &mut mailbox);
        assert_eq!(mailbox.len(), 1);
    }

    #[test]
    fn master_absorbs_reports_and_returns_commands() {
        let mut mailbox = DaemonMailbox::new();
        let mut master = MasterDaemon::new(3);
        assert!(master.stats_for(CoreId(0)).is_empty());
        assert!(master.stats_for(CoreId(9)).is_empty());

        mailbox.push(DaemonMessage::StatsReport {
            core: CoreId(2),
            stats: vec![stats(4), stats(5)],
        });
        master.command_migration(TaskId(4), CoreId(2), CoreId(0), &mut mailbox);
        let commands = master.process_mailbox(&mut mailbox);
        assert_eq!(commands.len(), 1);
        assert!(matches!(
            commands[0],
            DaemonMessage::MigrateCommand {
                task: TaskId(4),
                from: CoreId(2),
                to: CoreId(0)
            }
        ));
        assert_eq!(master.stats_for(CoreId(2)).len(), 2);
        assert_eq!(master.commands_issued(), 1);
        assert!(mailbox.is_empty());
    }

    #[test]
    fn ack_round_trip() {
        let mut mailbox = DaemonMailbox::new();
        let mut master = MasterDaemon::new(2);
        let slave = SlaveDaemon::new(CoreId(1), Seconds::from_millis(100.0));
        slave.acknowledge(TaskId(7), &mut mailbox);
        let commands = master.process_mailbox(&mut mailbox);
        assert!(commands.is_empty());
        assert_eq!(master.acks_received(), 1);
        assert_eq!(MasterDaemon::default().acks_received(), 0);
    }
}
