//! Error type for the OS model.

use std::error::Error;
use std::fmt;

use tbp_arch::core::CoreId;
use tbp_arch::ArchError;

use crate::task::TaskId;

/// Errors produced by the OS and migration middleware model.
#[derive(Debug, Clone, PartialEq)]
pub enum OsError {
    /// A task identifier referenced a task that does not exist.
    UnknownTask(TaskId),
    /// A core identifier referenced a core that does not exist.
    UnknownCore(CoreId),
    /// A task descriptor carried an invalid parameter (load outside `[0, 1]`,
    /// zero context size, ...).
    InvalidTask(String),
    /// A migration was requested for a task that is already migrating.
    AlreadyMigrating(TaskId),
    /// A migration was requested with identical source and destination.
    SameCoreMigration(TaskId),
    /// The underlying architecture model reported an error.
    Arch(ArchError),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::UnknownTask(id) => write!(f, "unknown task {id}"),
            OsError::UnknownCore(id) => write!(f, "unknown core {id}"),
            OsError::InvalidTask(msg) => write!(f, "invalid task: {msg}"),
            OsError::AlreadyMigrating(id) => write!(f, "task {id} is already migrating"),
            OsError::SameCoreMigration(id) => {
                write!(f, "task {id} cannot migrate to the core it already runs on")
            }
            OsError::Arch(e) => write!(f, "architecture error: {e}"),
        }
    }
}

impl Error for OsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OsError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for OsError {
    fn from(value: ArchError) -> Self {
        OsError::Arch(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(OsError::UnknownTask(TaskId(3)).to_string().contains('3'));
        assert!(OsError::UnknownCore(CoreId(1))
            .to_string()
            .contains("core1"));
        assert!(OsError::InvalidTask("bad load".into())
            .to_string()
            .contains("bad load"));
        assert!(OsError::AlreadyMigrating(TaskId(2))
            .to_string()
            .contains('2'));
        assert!(
            OsError::SameCoreMigration(TaskId(2))
                .to_string()
                .contains("same")
                || OsError::SameCoreMigration(TaskId(2))
                    .to_string()
                    .contains("already runs")
        );
        let wrapped: OsError = ArchError::EmptyPlatform.into();
        assert!(Error::source(&wrapped).is_some());
        assert!(Error::source(&OsError::UnknownTask(TaskId(0))).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OsError>();
    }
}
