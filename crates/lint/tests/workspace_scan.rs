//! Regression tests over the REAL workspace: the committed baseline and
//! domain manifest must match a fresh scan exactly — no silent growth, no
//! stale entries, no drifted domains. These are the same checks CI's
//! `tbp_lint --deny` performs, pinned as cargo tests so `cargo test`
//! alone catches a desynced commit.

use std::path::PathBuf;

use tbp_lint::config::LintConfig;
use tbp_lint::engine;
use tbp_lint::rules::domain_drift;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn committed_baseline_matches_a_fresh_scan_exactly() {
    let root = workspace_root();
    let config = LintConfig::load(&root.join("lint.toml")).expect("workspace lint.toml parses");
    let scan = engine::scan(&root, &config).expect("workspace scan succeeds");
    let (_baseline, delta) =
        engine::compare_baseline(&root, &config, &scan).expect("baseline loads");
    let fresh: Vec<String> = delta.fresh.iter().map(|d| d.to_string()).collect();
    assert!(
        fresh.is_empty(),
        "new findings not in the committed baseline — fix them or (deliberately) \
         run `tbp_lint --update-baseline`:\n{}",
        fresh.join("\n")
    );
    let stale: Vec<String> = delta
        .stale
        .iter()
        .map(|(key, allowed, seen)| format!("`{key}`: baseline {allowed}, scan {seen}"))
        .collect();
    assert!(
        stale.is_empty(),
        "stale baseline entries — the grandfathered findings were (partly) fixed; \
         run `tbp_lint --update-baseline` to shrink the baseline:\n{}",
        stale.join("\n")
    );
}

#[test]
fn committed_manifest_is_byte_identical_to_a_regeneration() {
    let root = workspace_root();
    let config = LintConfig::load(&root.join("lint.toml")).expect("workspace lint.toml parses");
    let (fps, errs) = domain_drift::compute_fingerprints(&root, &config);
    assert!(
        errs.is_empty(),
        "domain fingerprinting failed:\n{}",
        errs.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(fps.len(), config.domains.len());
    let committed = std::fs::read_to_string(root.join(&config.manifest))
        .expect("committed domains.toml readable");
    assert_eq!(
        committed,
        domain_drift::render_manifest(&fps),
        "committed manifest differs from a fresh regeneration; run \
         `tbp_lint --update-manifest` (after bumping the domain's version \
         constant if the shape change was semantic)"
    );
}

#[test]
fn workspace_scan_covers_the_expected_surface() {
    let root = workspace_root();
    let config = LintConfig::load(&root.join("lint.toml")).expect("workspace lint.toml parses");
    let scan = engine::scan(&root, &config).expect("workspace scan succeeds");
    // The workspace has well over a hundred Rust files; a collapsed count
    // means the walker or the include roots broke.
    assert!(
        scan.files.len() > 100,
        "suspiciously few files scanned: {}",
        scan.files.len()
    );
    // The linter's own fixture corpus must stay excluded, or its deliberate
    // violations would pollute the workspace scan.
    assert!(
        scan.files.iter().all(|f| !f.contains("tests/fixtures/")),
        "fixture sources leaked into the workspace scan"
    );
}
