//! End-to-end drift demonstration against the REAL `ScenarioSpec`: copy the
//! actual spec and hash sources into a scratch tree, record a manifest,
//! then inject a new semantic field WITHOUT bumping the hash domain and
//! prove the rule fails — and that bumping the domain flips the failure to
//! the (distinct) stale-manifest message.

use std::path::{Path, PathBuf};

use tbp_lint::config::LintConfig;
use tbp_lint::engine;
use tbp_lint::rules::domain_drift;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crate lives two levels under the workspace root")
        .to_path_buf()
}

/// A scratch root holding copies of the real scenario sources; removed on
/// drop so reruns start clean.
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root =
            std::env::temp_dir().join(format!("tbp_lint_drift_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("scenario")).expect("scratch tree");
        let ws = workspace_root();
        for name in ["spec.rs", "hash.rs"] {
            std::fs::copy(
                ws.join("crates/core/src/scenario").join(name),
                root.join("scenario").join(name),
            )
            .expect("copy real scenario source");
        }
        Scratch { root }
    }

    fn config(&self) -> LintConfig {
        LintConfig::from_str(
            r#"
[domain_drift]
manifest = "domains.toml"

[[domain_drift.domain]]
name = "scenario-hash"
kind = "struct"
file = "scenario/spec.rs"
symbol = "ScenarioSpec"
version = [
  "scenario/hash.rs::HASH_DOMAIN",
  "scenario/hash.rs::HASH_DOMAIN_PHASED",
]
"#,
            "drift-test",
        )
        .expect("inline config parses")
    }

    fn edit(&self, rel: &str, from: &str, to: &str) {
        let path = self.root.join(rel);
        let text = std::fs::read_to_string(&path).expect("scratch file readable");
        assert!(
            text.contains(from),
            "expected `{from}` in {rel} — did the real source change shape?"
        );
        std::fs::write(&path, text.replacen(from, to, 1)).expect("scratch file writable");
    }

    fn drift_findings(&self, config: &LintConfig) -> Vec<String> {
        let mut out = Vec::new();
        domain_drift::check(&self.root, config, &mut out);
        out.iter().map(|d| d.to_string()).collect()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn record_manifest(root: &Path, config: &LintConfig) {
    engine::update_manifest(root, config).expect("manifest regeneration succeeds");
}

#[test]
fn adding_a_scenario_field_without_a_hash_bump_is_caught() {
    let scratch = Scratch::new("no_bump");
    let config = scratch.config();
    record_manifest(&scratch.root, &config);
    // In-sync first: the freshly recorded manifest must scan clean.
    assert!(scratch.drift_findings(&config).is_empty());
    // Inject a new semantic field at the top of the real struct, leaving
    // HASH_DOMAIN / HASH_DOMAIN_PHASED untouched.
    scratch.edit(
        "scenario/spec.rs",
        "pub struct ScenarioSpec {",
        "pub struct ScenarioSpec {\n    pub injected_knob: Option<u32>,",
    );
    let findings = scratch.drift_findings(&config);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(
        findings[0].contains("without a version bump"),
        "{findings:#?}"
    );
    assert!(
        findings[0].contains("injected_knob : Option < u32 >"),
        "{findings:#?}"
    );
    assert!(findings[0].contains("HASH_DOMAIN"), "{findings:#?}");
}

#[test]
fn bumping_the_hash_domain_flips_the_failure_to_stale_manifest() {
    let scratch = Scratch::new("bump");
    let config = scratch.config();
    record_manifest(&scratch.root, &config);
    scratch.edit(
        "scenario/spec.rs",
        "pub struct ScenarioSpec {",
        "pub struct ScenarioSpec {\n    pub injected_knob: Option<u32>,",
    );
    scratch.edit(
        "scenario/hash.rs",
        "tbp-scenario-spec-v2",
        "tbp-scenario-spec-v99",
    );
    let findings = scratch.drift_findings(&config);
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(findings[0].contains("--update-manifest"), "{findings:#?}");
    assert!(
        !findings[0].contains("without a version bump"),
        "{findings:#?}"
    );
    // And regenerating the manifest makes the domain clean again.
    record_manifest(&scratch.root, &config);
    assert!(scratch.drift_findings(&config).is_empty());
}
