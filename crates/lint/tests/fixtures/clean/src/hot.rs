//! Negative no-alloc cases: a hot function that only writes through
//! borrowed buffers, one justified suppression, and free allocation in a
//! cold function.

pub fn hot_step(acc: &mut [u32], xs: &[u32], scratch: &mut Vec<u32>) {
    for (a, x) in acc.iter_mut().zip(xs) {
        *a = a.wrapping_add(*x);
    }
    if scratch.is_empty() {
        // tbp-lint: allow(no-alloc): one-time warmup copy, amortized to zero per step
        *scratch = xs.to_vec();
    }
}

/// Allocation outside the declared hot region is not the rule's business.
pub fn cold_setup(n: usize) -> Vec<u32> {
    vec![0; n]
}
