//! In-sync domain: the `knob` field was added WITH a version bump
//! (v1 -> v2) and the manifest was regenerated to match.

pub const SPEC_DOMAIN: &str = "demo-spec-v2";

pub struct DemoSpec {
    pub name: String,
    pub knob: u32,
}
