//! Negative exit-code cases: a binary speaking the contract — usage errors
//! exit 2, runtime failures exit 1, success returns from `main`.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() > 2 {
        eprintln!("usage: tool [input]");
        std::process::exit(2);
    }
    if args.get(1).map(String::as_str) == Some("fail") {
        eprintln!("runtime failure");
        std::process::exit(1);
    }
}
