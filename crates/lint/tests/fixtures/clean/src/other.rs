//! Negative determinism case: wall-clock and hash containers OUTSIDE the
//! configured semantic paths are allowed (observability code needs them).

use std::collections::HashMap;
use std::time::Instant;

pub fn observe() -> u128 {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    seen.insert(1, 2);
    Instant::now().elapsed().as_nanos()
}
