//! Negative determinism case: ordered containers in a semantic path; the
//! rule has nothing to say. Mentions in comments (`HashMap`, `Instant::now`)
//! and strings are prose, not code.

use std::collections::BTreeMap;

pub fn stamp() -> usize {
    let map: BTreeMap<u32, u32> = BTreeMap::new();
    let label = "HashMap in a string is fine";
    map.len() + label.len()
}
