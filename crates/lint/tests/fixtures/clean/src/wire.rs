//! In-sync domain: shape and version both match the manifest.

pub const WIRE_VERSION: u32 = 1;

pub enum DemoMsg {
    Ping,
    Pong(u64),
}
