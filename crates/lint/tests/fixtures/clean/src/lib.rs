//! Clean fixture library: no rule has anything to report here.

pub mod hot;
pub mod other;
pub mod semantic {
    pub mod state;
}
pub mod unsafe_code;

/// Library code reports failure by returning it, not by exiting.
pub fn try_bail() -> Result<(), String> {
    Err("propagate me".to_string())
}
