//! Negative unsafe-audit cases: every form of `unsafe`, each audited.

/// Reads a byte through a raw pointer.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: emptiness asserted on the line above.
    unsafe { *xs.as_ptr() }
}

pub struct Token(u8);

// SAFETY: `Token` is a plain byte; it owns no thread-affine state.
unsafe impl Send for Token {}
