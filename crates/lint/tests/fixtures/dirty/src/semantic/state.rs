//! Positive determinism cases: randomized-order containers and wall-clock
//! reads inside a configured semantic path.

use std::collections::HashMap;
use std::time::Instant;

pub fn stamp() -> usize {
    let map: HashMap<u32, u32> = HashMap::new();
    let _started = Instant::now();
    map.len()
}
