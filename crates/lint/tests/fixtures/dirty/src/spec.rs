//! Drift-without-bump: `knob` was added but `SPEC_DOMAIN` still says v1,
//! and the manifest records the old single-field shape.

pub const SPEC_DOMAIN: &str = "demo-spec-v1";

pub struct DemoSpec {
    pub name: String,
    pub knob: u32,
}
