//! Positive no-alloc cases: five distinct allocation shapes inside the
//! declared hot function, none suppressed.

pub fn hot_step(xs: &[u32]) -> Vec<u32> {
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    let copy = doubled.clone();
    let label = format!("{} items", copy.len());
    let mut out = Vec::new();
    out.push(label.len() as u32);
    let extra = vec![1u32, 2];
    out.extend(extra);
    out
}

/// Negative case: the same shapes outside the hot region are fine.
pub fn cold_setup(n: usize) -> Vec<u32> {
    vec![0; n]
}
