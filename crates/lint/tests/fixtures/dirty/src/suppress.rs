//! Positive suppression cases: three broken directives, each its own
//! finding. None of these can be silenced — `suppression` findings are not
//! suppressible.

// tbp-lint: allow(no-alloc)
pub fn unjustified() {}

// tbp-lint: allow(bogus-rule): the rule id does not exist
pub fn unknown_rule() {}

// tbp-lint: this is not a directive shape at all
pub fn malformed() {}
