//! Positive exit-code case: a binary exiting with a code outside the
//! contract (0 must return from `main`, not call `exit`).

fn main() {
    std::process::exit(0);
}
