//! Stale manifest: the version constant was bumped to 2 (correctly, say,
//! for some wire change) but the manifest still records version 1.

pub const WIRE_VERSION: u32 = 2;

pub enum DemoMsg {
    Ping,
    Pong,
}
