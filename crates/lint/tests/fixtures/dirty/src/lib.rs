//! Positive exit-code case: terminating the process from library code.

pub mod hot;
pub mod semantic {
    pub mod state;
}
pub mod suppress;
pub mod unsafe_code;

pub fn bail() -> ! {
    std::process::exit(3);
}
