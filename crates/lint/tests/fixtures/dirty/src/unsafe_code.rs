//! Positive unsafe-audit case: a raw-pointer read with no safety argument.

pub fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
