//! Fixture-corpus tests: the dirty fixture trips every rule (positive
//! cases), the clean fixture trips none (negative cases), and both go
//! through the same engine the `tbp_lint` binary uses.

use std::collections::BTreeMap;
use std::path::PathBuf;

use tbp_lint::config::LintConfig;
use tbp_lint::engine::{self, Scan};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn scan_fixture(name: &str) -> Scan {
    let root = fixture_root(name);
    let config = LintConfig::load(&root.join("lint.toml")).expect("fixture config parses");
    engine::scan(&root, &config).expect("fixture scan succeeds")
}

fn count_by_rule(scan: &Scan) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for d in &scan.diagnostics {
        *counts.entry(d.rule).or_insert(0) += 1;
    }
    counts
}

#[test]
fn dirty_fixture_trips_every_rule() {
    let scan = scan_fixture("dirty");
    let counts = count_by_rule(&scan);
    let all: Vec<String> = scan.diagnostics.iter().map(|d| d.to_string()).collect();
    // Five allocation shapes in `hot_step` (collect, clone, format!,
    // Vec::new, vec!); the identical shapes in `cold_setup` stay silent.
    assert_eq!(counts.get("no-alloc"), Some(&5), "{all:#?}");
    // `use HashMap` + type + constructor, plus `Instant::now`.
    assert_eq!(counts.get("determinism"), Some(&4), "{all:#?}");
    assert_eq!(counts.get("unsafe-audit"), Some(&1), "{all:#?}");
    // `process::exit(3)` in lib.rs, `process::exit(0)` in the bin.
    assert_eq!(counts.get("exit-code"), Some(&2), "{all:#?}");
    // Unjustified, unknown-rule, and malformed directives.
    assert_eq!(counts.get("suppression"), Some(&3), "{all:#?}");
    // demo-spec drifted without a bump; demo-wire bumped without a
    // manifest regen.
    assert_eq!(counts.get("domain-drift"), Some(&2), "{all:#?}");
    assert_eq!(scan.suppressed, 0);
}

#[test]
fn dirty_fixture_drift_messages_distinguish_the_two_failures() {
    let scan = scan_fixture("dirty");
    let drift: Vec<&str> = scan
        .diagnostics
        .iter()
        .filter(|d| d.rule == "domain-drift")
        .map(|d| d.message.as_str())
        .collect();
    assert!(
        drift
            .iter()
            .any(|m| m.contains("without a version bump") && m.contains("demo-spec")),
        "{drift:#?}"
    );
    assert!(
        drift
            .iter()
            .any(|m| m.contains("--update-manifest") && m.contains("demo-wire")),
        "{drift:#?}"
    );
    // The drift finding names the field that appeared.
    assert!(drift.iter().any(|m| m.contains("knob : u32")), "{drift:#?}");
}

#[test]
fn dirty_fixture_findings_carry_positions() {
    let scan = scan_fixture("dirty");
    let unsafe_hit = scan
        .diagnostics
        .iter()
        .find(|d| d.rule == "unsafe-audit")
        .expect("unsafe finding present");
    assert_eq!(unsafe_hit.file, "src/unsafe_code.rs");
    assert_eq!(unsafe_hit.line, 4);
    assert!(unsafe_hit.col > 0);
}

#[test]
fn clean_fixture_is_quiet_and_counts_its_one_suppression() {
    let scan = scan_fixture("clean");
    let all: Vec<String> = scan.diagnostics.iter().map(|d| d.to_string()).collect();
    assert!(scan.diagnostics.is_empty(), "{all:#?}");
    // The justified warmup suppression in hot.rs absorbed exactly one
    // finding — proving both that the shape WOULD have been caught and
    // that a justified directive silences it.
    assert_eq!(scan.suppressed, 1);
}

#[test]
fn baseline_grandfathers_dirty_findings_and_flags_growth_both_ways() {
    use tbp_lint::baseline::Baseline;
    let scan = scan_fixture("dirty");
    let base = Baseline::capture(&scan.diagnostics);
    // Re-parse through the rendered file form, as CI would.
    let reparsed = Baseline::parse(&base.render()).expect("rendered baseline parses");
    assert!(reparsed.compare(&scan.diagnostics).is_clean());
    // One finding fewer -> stale entry; one extra -> fresh finding.
    let mut fewer = scan.diagnostics.clone();
    fewer.pop();
    let delta = reparsed.compare(&fewer);
    assert!(delta.fresh.is_empty());
    assert_eq!(delta.stale.len(), 1);
    let mut more = scan.diagnostics.clone();
    more.push(scan.diagnostics[0].clone());
    let delta = reparsed.compare(&more);
    assert!(!delta.fresh.is_empty());
    assert!(delta.stale.is_empty());
}
