//! Property tests for the linter's tokenizer. The rules' soundness rests on
//! the lexer's invariants (spans in bounds and non-overlapping, comments and
//! strings correctly fenced), so those are pinned over randomized snippet
//! soups rather than a handful of examples.

use proptest::prelude::*;

use tbp_lint::lexer::{tokenize, TokenKind};

/// Snippet pool: every lexical shape the tokenizer special-cases, including
/// the adversarial ones (raw strings with fences, nested block comments,
/// lifetimes vs char literals, rule keywords inside strings).
const SNIPPETS: [&str; 24] = [
    "fn step(x: u32) -> u32 { x + 1 }",
    "let v: Vec<u8> = Vec::new();",
    "// line comment with vec![] inside",
    "/// doc comment mentioning unsafe {}",
    "/* block /* nested */ comment */",
    "\"plain string with // not-a-comment\"",
    "\"escaped \\\" quote and \\\\ backslash\"",
    "r\"raw string\"",
    "r#\"raw with \" fence\"#",
    "r##\"double \"# fence\"##",
    "b\"bytes\"",
    "br#\"raw bytes \" too\"#",
    "'x'",
    "'\\n'",
    "b'q'",
    "'static",
    "'a",
    "let t = <T as Trait<'b>>::default();",
    "1_000_000",
    "0x1F / 2.5e-3",
    "std::process::exit(1);",
    "let m = std::collections::HashMap::<u32, u32>::new();",
    "x.collect::<Vec<_>>()",
    "r#match",
];

fn soup(indices: &[usize], seps: &[bool]) -> String {
    let mut out = String::new();
    for (n, &i) in indices.iter().enumerate() {
        out.push_str(SNIPPETS[i % SNIPPETS.len()]);
        out.push(if seps.get(n).copied().unwrap_or(true) {
            '\n'
        } else {
            ' '
        });
    }
    out
}

proptest! {
    /// Spans are in bounds, strictly ordered, non-overlapping, and aligned
    /// to character boundaries; lines and columns are 1-based and monotone.
    #[test]
    fn spans_are_sound(
        indices in proptest::collection::vec(0usize..SNIPPETS.len(), 0..40),
        seps in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let src = soup(&indices, &seps);
        let tokens = tokenize(&src);
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for tok in &tokens {
            prop_assert!(tok.start < tok.end, "empty span in {src:?}");
            prop_assert!(tok.end <= src.len());
            prop_assert!(tok.start >= prev_end, "overlap in {src:?}");
            prop_assert!(src.is_char_boundary(tok.start) && src.is_char_boundary(tok.end));
            prop_assert!(tok.line >= prev_line, "line went backwards in {src:?}");
            prop_assert!(tok.line >= 1 && tok.col >= 1);
            prev_end = tok.end;
            prev_line = tok.line;
        }
    }

    /// Lexing is a pure function: same input, same tokens.
    #[test]
    fn lexing_is_deterministic(
        indices in proptest::collection::vec(0usize..SNIPPETS.len(), 0..30),
        seps in proptest::collection::vec(any::<bool>(), 0..30),
    ) {
        let src = soup(&indices, &seps);
        prop_assert_eq!(tokenize(&src), tokenize(&src));
    }

    /// Everything the lexer skipped between tokens is whitespace — i.e. no
    /// source text silently vanishes. (Rules depend on this: a lexer that
    /// dropped code could hide a violation.)
    #[test]
    fn gaps_are_whitespace_only(
        indices in proptest::collection::vec(0usize..SNIPPETS.len(), 0..40),
        seps in proptest::collection::vec(any::<bool>(), 0..40),
    ) {
        let src = soup(&indices, &seps);
        let tokens = tokenize(&src);
        let mut cursor = 0usize;
        for tok in &tokens {
            prop_assert!(
                src[cursor..tok.start].chars().all(char::is_whitespace),
                "non-whitespace gap {:?} in {src:?}",
                &src[cursor..tok.start],
            );
            cursor = tok.end;
        }
        prop_assert!(src[cursor..].chars().all(char::is_whitespace));
    }

    /// Code wrapped in a line comment or a plain string produces no
    /// Ident/Punct tokens from its interior — the fencing property every
    /// rule relies on to ignore prose.
    #[test]
    fn comments_and_strings_fence_their_interiors(
        indices in proptest::collection::vec(0usize..SNIPPETS.len(), 1..20),
    ) {
        let inner: String = indices
            .iter()
            .map(|&i| SNIPPETS[i % SNIPPETS.len()])
            .collect::<Vec<_>>()
            .join(" ")
            .replace(['"', '\\', '\n', '\r'], " ");
        let commented = format!("// {inner}\nlet after = 1;\n");
        let tokens = tokenize(&commented);
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::LineComment).count(),
            1
        );
        // Exactly the 5 code tokens of the trailing line survive.
        prop_assert_eq!(tokens.iter().filter(|t| !t.is_comment()).count(), 5);

        let quoted = format!("let s = \"{inner}\";\n");
        let tokens = tokenize(&quoted);
        let literals = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        prop_assert_eq!(literals, 1, "{:?}", quoted);
        // let, s, =, <literal>, ; — nothing from the string's interior.
        prop_assert_eq!(tokens.len(), 5, "{:?}", quoted);
    }
}
