//! The scan engine: file discovery, rule dispatch, suppression filtering,
//! and the two `--update-*` writers.

use std::path::Path;

use crate::baseline::{Baseline, BaselineDelta};
use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::rules;
use crate::source::SourceFile;

/// The result of one workspace scan.
#[derive(Debug)]
pub struct Scan {
    /// Workspace-relative paths of every `.rs` file scanned, sorted.
    pub files: Vec<String>,
    /// All findings after suppression filtering, sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// How many findings inline directives suppressed.
    pub suppressed: usize,
}

/// Scans the workspace rooted at `root` with `config`.
pub fn scan(root: &Path, config: &LintConfig) -> Result<Scan, String> {
    let mut rel_files = Vec::new();
    for inc in &config.include {
        let inc = inc.trim_end_matches('/');
        if !root.join(inc).exists() {
            return Err(format!(
                "include root `{inc}` does not exist under {}",
                root.display()
            ));
        }
        collect_rs(root, inc, config, &mut rel_files)?;
    }
    rel_files.sort();
    rel_files.dedup();
    let mut diags = Vec::new();
    let mut suppressed = 0usize;
    for rel in &rel_files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        let file = SourceFile::new(rel.clone(), text);
        let mut file_diags = Vec::new();
        rules::no_alloc::check(&file, config, &mut file_diags);
        rules::determinism::check(&file, config, &mut file_diags);
        rules::unsafe_audit::check(&file, config, &mut file_diags);
        rules::exit_code::check(&file, config, &mut file_diags);
        // Directive problems are findings too; `is_suppressed` refuses to
        // suppress them, so they always survive the filter below.
        file_diags.extend(file.suppression_diags.iter().cloned());
        for d in file_diags {
            if file.is_suppressed(&d) {
                suppressed += 1;
            } else {
                diags.push(d);
            }
        }
    }
    rules::domain_drift::check(root, config, &mut diags);
    diags.sort();
    Ok(Scan {
        files: rel_files,
        diagnostics: diags,
        suppressed,
    })
}

/// Whether `rel` falls under one of the configured exclude prefixes.
fn excluded(rel: &str, config: &LintConfig) -> bool {
    config.exclude.iter().any(|ex| {
        let ex = ex.trim_end_matches('/');
        rel == ex || rel.starts_with(&format!("{ex}/"))
    })
}

/// Recursively collects `.rs` files under `rel`, depth-first in sorted
/// order. Hidden entries and `target/` directories are always skipped.
fn collect_rs(
    root: &Path,
    rel: &str,
    config: &LintConfig,
    out: &mut Vec<String>,
) -> Result<(), String> {
    if excluded(rel, config) {
        return Ok(());
    }
    let full = root.join(rel);
    let meta = std::fs::metadata(&full).map_err(|e| format!("cannot stat {rel}: {e}"))?;
    if meta.is_file() {
        if rel.ends_with(".rs") {
            out.push(rel.to_string());
        }
        return Ok(());
    }
    let mut names = Vec::new();
    let entries = std::fs::read_dir(&full).map_err(|e| format!("cannot read dir {rel}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read dir {rel}: {e}"))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        names.push(name);
    }
    names.sort();
    for name in names {
        collect_rs(root, &format!("{rel}/{name}"), config, out)?;
    }
    Ok(())
}

/// Loads the configured baseline and compares the scan against it.
pub fn compare_baseline(
    root: &Path,
    config: &LintConfig,
    scan: &Scan,
) -> Result<(Baseline, BaselineDelta), String> {
    let baseline = Baseline::load(&root.join(&config.baseline))?;
    let delta = baseline.compare(&scan.diagnostics);
    Ok((baseline, delta))
}

/// Rewrites the baseline to capture the scan exactly.
pub fn update_baseline(root: &Path, config: &LintConfig, scan: &Scan) -> Result<(), String> {
    let baseline = Baseline::capture(&scan.diagnostics);
    let path = root.join(&config.baseline);
    std::fs::write(&path, baseline.render())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Re-fingerprints every configured domain and rewrites the manifest.
/// Refuses if any domain cannot be extracted — a manifest that silently
/// drops a domain would disable the rule for it.
pub fn update_manifest(root: &Path, config: &LintConfig) -> Result<(), String> {
    let (fps, errs) = rules::domain_drift::compute_fingerprints(root, config);
    if !errs.is_empty() {
        let lines: Vec<String> = errs.iter().map(|d| d.to_string()).collect();
        return Err(format!("cannot regenerate manifest:\n{}", lines.join("\n")));
    }
    let path = root.join(&config.manifest);
    std::fs::write(&path, rules::domain_drift::render_manifest(&fps))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclude_prefixes_match_whole_components() {
        let mut cfg = LintConfig::from_str("", "test").unwrap();
        cfg.exclude = vec!["crates/lint/tests/fixtures".to_string()];
        assert!(excluded("crates/lint/tests/fixtures", &cfg));
        assert!(excluded("crates/lint/tests/fixtures/dirty/hot.rs", &cfg));
        assert!(!excluded("crates/lint/tests/fixtures_other/x.rs", &cfg));
    }
}
