//! Diagnostics: what a rule reports and how it is rendered.

use std::fmt;

/// One finding, pointing at a `file:line:col` with a rule id.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id, e.g. `no-alloc`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Line-number-free identity used by the baseline: findings with the
    /// same key are interchangeable occurrences of the same problem, so
    /// pure motion within a file never churns the baseline.
    pub key: String,
}

impl Diagnostic {
    /// Builds a finding; `key_detail` is the stable, line-free description
    /// folded into the baseline key.
    pub fn new(
        rule: &'static str,
        file: &str,
        line: u32,
        col: u32,
        message: impl Into<String>,
        key_detail: impl AsRef<str>,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            col,
            rule,
            message: message.into(),
            key: format!("{rule} {file} {}", key_detail.as_ref()),
        }
    }

    /// Renders the finding as JSON (hand-rolled; the crate is std-only).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"key\":{}}}",
            json_str(self.rule),
            json_str(&self.file),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.key),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_json_forms() {
        let d = Diagnostic::new("no-alloc", "src/a.rs", 3, 7, "call `vec!`", "vec! in `hot`");
        assert_eq!(d.to_string(), "src/a.rs:3:7: no-alloc: call `vec!`");
        assert_eq!(d.key, "no-alloc src/a.rs vec! in `hot`");
        let json = d.to_json();
        assert!(json.contains("\"rule\":\"no-alloc\""), "{json}");
        assert!(json.contains("\"line\":3"), "{json}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
