//! `lint.toml` — the linter's declarative configuration.
//!
//! The linter is deliberately dependency-free (see the crate manifest), so
//! this module carries its own parser for the small TOML subset the config
//! and the domain manifest use: `[tables]`, `[[arrays.of.tables]]`, string /
//! integer / boolean scalars, flat arrays (multi-line allowed), and `#`
//! comments. It is not a general TOML implementation and does not try to be
//! one; anything outside the subset is a loud error, never a silent skip.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Error raised while reading configuration or manifest files.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError {
    /// Human-readable description with file/line context.
    pub message: String,
}

impl ConfigError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        ConfigError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ConfigError {}

// ---------------------------------------------------------------------------
// Minimal TOML value tree
// ---------------------------------------------------------------------------

/// A scalar or flat array in the supported TOML subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    /// Basic or literal string.
    Str(String),
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Flat array of scalars.
    List(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::Int(_) => "integer",
            TomlValue::Bool(_) => "boolean",
            TomlValue::List(_) => "array",
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// One `[section]` or `[[section]]` instance: its dotted path and its
/// key/value assignments in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlTable {
    /// Dotted path of the header, e.g. `["no_alloc", "hot"]`. Empty for the
    /// implicit root table.
    pub path: Vec<String>,
    /// Assignments in file order.
    pub entries: Vec<(String, TomlValue)>,
}

impl TomlTable {
    /// The value assigned to `key`, if present.
    pub fn get(&self, key: &str) -> Option<&TomlValue> {
        self.entries
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// A required string entry.
    pub fn str_entry(&self, key: &str, ctx: &str) -> Result<String, ConfigError> {
        match self.get(key) {
            Some(TomlValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(ConfigError::new(format!(
                "{ctx}: `{key}` must be a string, found {}",
                other.type_name()
            ))),
            None => Err(ConfigError::new(format!("{ctx}: missing `{key}`"))),
        }
    }

    /// An optional array-of-strings entry; absent means empty.
    pub fn str_list(&self, key: &str, ctx: &str) -> Result<Vec<String>, ConfigError> {
        match self.get(key) {
            None => Ok(Vec::new()),
            Some(TomlValue::List(items)) => items
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        ConfigError::new(format!(
                            "{ctx}: `{key}` entries must be strings, found {}",
                            v.type_name()
                        ))
                    })
                })
                .collect(),
            Some(other) => Err(ConfigError::new(format!(
                "{ctx}: `{key}` must be an array, found {}",
                other.type_name()
            ))),
        }
    }
}

/// A parsed document: tables in file order. `[[t]]` headers repeat the same
/// path once per instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TomlDoc {
    /// All tables in file order, the implicit root first.
    pub tables: Vec<TomlTable>,
}

impl TomlDoc {
    /// All tables whose dotted path is exactly `path`.
    pub fn tables_at<'a>(&'a self, path: &'a [&'a str]) -> impl Iterator<Item = &'a TomlTable> {
        self.tables
            .iter()
            .filter(move |t| t.path.len() == path.len() && t.path.iter().eq(path.iter()))
    }

    /// The first table at `path`, if any.
    pub fn table(&self, path: &[&str]) -> Option<&TomlTable> {
        self.tables
            .iter()
            .find(|t| t.path.len() == path.len() && t.path.iter().eq(path.iter()))
    }
}

/// Parses the supported TOML subset.
pub fn parse_toml(text: &str, origin: &str) -> Result<TomlDoc, ConfigError> {
    let mut doc = TomlDoc {
        tables: vec![TomlTable::default()],
    };
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
            doc.tables.push(TomlTable {
                path: split_dotted(header, origin, lineno)?,
                entries: Vec::new(),
            });
        } else if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            doc.tables.push(TomlTable {
                path: split_dotted(header, origin, lineno)?,
                entries: Vec::new(),
            });
        } else if let Some(eq) = find_unquoted(line, '=') {
            let key = unquote_key(line[..eq].trim(), origin, lineno)?;
            let mut value_text = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming lines until brackets balance.
            while array_open(&value_text) {
                match lines.next() {
                    Some((_, next)) => {
                        value_text.push(' ');
                        value_text.push_str(strip_comment(next).trim());
                    }
                    None => {
                        return Err(ConfigError::new(format!(
                            "{origin}:{lineno}: unterminated array for key `{key}`"
                        )))
                    }
                }
            }
            let value = parse_value(value_text.trim(), origin, lineno)?;
            doc.tables
                .last_mut()
                .expect("root table always present")
                .entries
                .push((key, value));
        } else {
            return Err(ConfigError::new(format!(
                "{origin}:{lineno}: expected `[table]`, `[[table]]` or `key = value`, found `{line}`"
            )));
        }
    }
    Ok(doc)
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    match find_unquoted(line, '#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Finds `needle` outside of basic/literal strings.
fn find_unquoted(line: &str, needle: char) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            c if c == needle && !in_basic && !in_literal => return Some(i),
            _ => {}
        }
    }
    None
}

/// Whether an array value still has unbalanced brackets (outside strings).
fn array_open(text: &str) -> bool {
    if !text.starts_with('[') {
        return false;
    }
    let mut depth = 0i32;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for c in text.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_basic => escaped = true,
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' if !in_basic && !in_literal => depth += 1,
            ']' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

fn split_dotted(header: &str, origin: &str, lineno: usize) -> Result<Vec<String>, ConfigError> {
    header
        .split('.')
        .map(|part| unquote_key(part.trim(), origin, lineno))
        .collect()
}

fn unquote_key(key: &str, origin: &str, lineno: usize) -> Result<String, ConfigError> {
    if key.is_empty() {
        return Err(ConfigError::new(format!("{origin}:{lineno}: empty key")));
    }
    if let Some(inner) = key
        .strip_prefix('"')
        .and_then(|k| k.strip_suffix('"'))
        .or_else(|| key.strip_prefix('\'').and_then(|k| k.strip_suffix('\'')))
    {
        return Ok(inner.to_string());
    }
    if key
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(key.to_string())
    } else {
        Err(ConfigError::new(format!(
            "{origin}:{lineno}: unsupported key `{key}`"
        )))
    }
}

fn parse_value(text: &str, origin: &str, lineno: usize) -> Result<TomlValue, ConfigError> {
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| {
                ConfigError::new(format!("{origin}:{lineno}: malformed array `{text}`"))
            })?;
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if !piece.is_empty() {
                items.push(parse_value(piece, origin, lineno)?);
            }
        }
        return Ok(TomlValue::List(items));
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(TomlValue::Str(unescape(inner)));
    }
    if let Some(inner) = text.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        return Ok(TomlValue::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    cleaned.parse::<i64>().map(TomlValue::Int).map_err(|_| {
        ConfigError::new(format!(
            "{origin}:{lineno}: unsupported value `{text}` (expected string, \
             integer, boolean or array)"
        ))
    })
}

/// Splits an array body on commas that sit outside strings and brackets.
fn split_top_level(text: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for c in text.chars() {
        if escaped {
            escaped = false;
            current.push(c);
            continue;
        }
        match c {
            '\\' if in_basic => {
                escaped = true;
                current.push(c);
            }
            '"' if !in_literal => {
                in_basic = !in_basic;
                current.push(c);
            }
            '\'' if !in_basic => {
                in_literal = !in_literal;
                current.push(c);
            }
            ',' if !in_basic && !in_literal => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Typed configuration
// ---------------------------------------------------------------------------

/// One region where allocation-shaped calls are forbidden.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPath {
    /// Workspace-relative file path (forward slashes).
    pub path: String,
    /// Functions within the file that are hot; empty means the whole file.
    pub functions: Vec<String>,
}

/// Which kind of item a domain fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// Named fields of a struct.
    Struct,
    /// Variants of an enum.
    Enum,
}

/// One versioned hash/wire domain watched by the `domain-drift` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSpec {
    /// Manifest key, e.g. `scenario-hash`.
    pub name: String,
    /// Struct or enum.
    pub kind: SymbolKind,
    /// File declaring the symbol (workspace-relative).
    pub file: String,
    /// The struct/enum name.
    pub symbol: String,
    /// Version constants guarding the domain, each as `<file>::<CONST>`.
    pub version: Vec<(String, String)>,
}

/// The linter's full configuration, loaded from `lint.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct LintConfig {
    /// Directory roots (workspace-relative) scanned for `.rs` files.
    pub include: Vec<String>,
    /// Workspace-relative path prefixes excluded from the scan.
    pub exclude: Vec<String>,
    /// Baseline file path (workspace-relative).
    pub baseline: String,
    /// `no-alloc` hot regions.
    pub hot_paths: Vec<HotPath>,
    /// `determinism` path prefixes (semantic code).
    pub determinism_paths: Vec<String>,
    /// Path fragments identifying binary targets for `exit-code`.
    pub exit_bins: Vec<String>,
    /// Allowed `process::exit` arguments in binaries (literals or consts).
    pub exit_allowed: Vec<String>,
    /// Domain manifest path (workspace-relative).
    pub manifest: String,
    /// Watched domains.
    pub domains: Vec<DomainSpec>,
}

impl LintConfig {
    /// Loads and validates `lint.toml` from `path`.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ConfigError::new(format!("cannot read {}: {e}", path.display())))?;
        Self::from_str(&text, &path.display().to_string())
    }

    /// Parses a config from text; `origin` names the source in errors.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str, origin: &str) -> Result<Self, ConfigError> {
        let doc = parse_toml(text, origin)?;
        let files = doc.table(&["files"]);
        let include = match files {
            Some(t) => t.str_list("include", "[files]")?,
            None => Vec::new(),
        };
        let include = if include.is_empty() {
            vec!["crates".to_string()]
        } else {
            include
        };
        let exclude = files
            .map(|t| t.str_list("exclude", "[files]"))
            .transpose()?
            .unwrap_or_default();
        let baseline = match doc.table(&["baseline"]) {
            Some(t) => t.str_entry("path", "[baseline]")?,
            None => "lint.baseline".to_string(),
        };
        let mut hot_paths = Vec::new();
        for table in doc.tables_at(&["no_alloc", "hot"]) {
            hot_paths.push(HotPath {
                path: table.str_entry("path", "[[no_alloc.hot]]")?,
                functions: table.str_list("functions", "[[no_alloc.hot]]")?,
            });
        }
        let determinism_paths = match doc.table(&["determinism"]) {
            Some(t) => t.str_list("paths", "[determinism]")?,
            None => Vec::new(),
        };
        let (exit_bins, exit_allowed) = match doc.table(&["exit_code"]) {
            Some(t) => (
                t.str_list("bins", "[exit_code]")?,
                t.str_list("allowed", "[exit_code]")?,
            ),
            None => (Vec::new(), Vec::new()),
        };
        let exit_bins = if exit_bins.is_empty() {
            vec!["src/bin/".to_string(), "src/main.rs".to_string()]
        } else {
            exit_bins
        };
        let exit_allowed = if exit_allowed.is_empty() {
            vec!["1".to_string(), "2".to_string()]
        } else {
            exit_allowed
        };
        let manifest = match doc.table(&["domain_drift"]) {
            Some(t) => t.str_entry("manifest", "[domain_drift]")?,
            None => "crates/lint/domains.toml".to_string(),
        };
        let mut domains = Vec::new();
        for table in doc.tables_at(&["domain_drift", "domain"]) {
            let ctx = "[[domain_drift.domain]]";
            let kind = match table.str_entry("kind", ctx)?.as_str() {
                "struct" => SymbolKind::Struct,
                "enum" => SymbolKind::Enum,
                other => {
                    return Err(ConfigError::new(format!(
                        "{ctx}: kind must be `struct` or `enum`, found `{other}`"
                    )))
                }
            };
            let mut version = Vec::new();
            for entry in table.str_list("version", ctx)? {
                let (file, constant) = entry.rsplit_once("::").ok_or_else(|| {
                    ConfigError::new(format!(
                        "{ctx}: version entry `{entry}` must look like `path/to/file.rs::CONST`"
                    ))
                })?;
                version.push((file.to_string(), constant.to_string()));
            }
            if version.is_empty() {
                return Err(ConfigError::new(format!(
                    "{ctx}: at least one `version` constant is required"
                )));
            }
            domains.push(DomainSpec {
                name: table.str_entry("name", ctx)?,
                kind,
                file: table.str_entry("file", ctx)?,
                symbol: table.str_entry("symbol", ctx)?,
                version,
            });
        }
        let mut seen = BTreeMap::new();
        for d in &domains {
            if seen.insert(d.name.clone(), ()).is_some() {
                return Err(ConfigError::new(format!(
                    "[[domain_drift.domain]]: duplicate domain name `{}`",
                    d.name
                )));
            }
        }
        Ok(LintConfig {
            include,
            exclude,
            baseline,
            hot_paths,
            determinism_paths,
            exit_bins,
            exit_allowed,
            manifest,
            domains,
        })
    }

    /// Resolves a workspace-relative config path against the scan root.
    pub fn resolve(&self, root: &Path, relative: &str) -> PathBuf {
        root.join(relative)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = parse_toml(
            "top = 1\n[files]\ninclude = [\"a\", \"b\"]\n# comment\n[[hot]]\npath = 'x.rs'\nflag = true\n[[hot]]\npath = \"y.rs\"\n",
            "test",
        )
        .unwrap();
        assert_eq!(doc.tables[0].get("top"), Some(&TomlValue::Int(1)));
        let files = doc.table(&["files"]).unwrap();
        assert_eq!(
            files.str_list("include", "t").unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
        let hots: Vec<_> = doc.tables_at(&["hot"]).collect();
        assert_eq!(hots.len(), 2);
        assert_eq!(hots[0].get("flag"), Some(&TomlValue::Bool(true)));
    }

    #[test]
    fn multi_line_arrays() {
        let doc = parse_toml(
            "[t]\nitems = [\n  \"one\", # trailing comment\n  \"two\",\n]\n",
            "test",
        )
        .unwrap();
        assert_eq!(
            doc.table(&["t"]).unwrap().str_list("items", "t").unwrap(),
            vec!["one".to_string(), "two".to_string()]
        );
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse_toml("k = \"has # inside\"\n", "test").unwrap();
        assert_eq!(
            doc.tables[0].get("k"),
            Some(&TomlValue::Str("has # inside".into()))
        );
    }

    #[test]
    fn malformed_lines_error_with_location() {
        let err = parse_toml("what is this\n", "cfg.toml").unwrap_err();
        assert!(err.message.contains("cfg.toml:1"), "{}", err.message);
    }

    #[test]
    fn full_config_round_trip() {
        let cfg = LintConfig::from_str(
            r#"
[files]
include = ["crates"]
exclude = ["crates/lint/tests/fixtures"]

[baseline]
path = "lint.baseline"

[[no_alloc.hot]]
path = "crates/x/src/hot.rs"
functions = ["step"]

[determinism]
paths = ["crates/x/src/sem"]

[exit_code]
bins = ["bin/"]
allowed = ["1", "2", "EXIT_USAGE"]

[domain_drift]
manifest = "domains.toml"

[[domain_drift.domain]]
name = "demo"
kind = "struct"
file = "crates/x/src/spec.rs"
symbol = "Spec"
version = ["crates/x/src/spec.rs::VERSION"]
"#,
            "test",
        )
        .unwrap();
        assert_eq!(cfg.hot_paths.len(), 1);
        assert_eq!(cfg.domains[0].version[0].1, "VERSION");
        assert_eq!(cfg.exit_allowed.len(), 3);
    }

    #[test]
    fn domain_requires_version() {
        let err = LintConfig::from_str(
            "[[domain_drift.domain]]\nname = \"d\"\nkind = \"enum\"\nfile = \"f.rs\"\nsymbol = \"E\"\n",
            "test",
        )
        .unwrap_err();
        assert!(err.message.contains("version"), "{}", err.message);
    }
}
