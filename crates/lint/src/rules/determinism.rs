//! `determinism`: no nondeterminism sources in semantic code paths.
//!
//! Byte-identical output across execution paths (lanes, shards, the
//! distributed sweep) is the repo's headline invariant: every differential
//! test (`lane_equivalence`, shard merge, sweep chaos) compares runs
//! byte-for-byte. The classic ways to lose it silently are iteration over a
//! randomized-order container (`HashMap`/`HashSet`), wall-clock reads
//! (`Instant::now`, `SystemTime::now`) feeding values that end up in
//! reports, and thread identity. This rule forbids those shapes outright in
//! the configured *semantic* paths — code whose output is cached, hashed,
//! or shipped over the wire. Use `BTreeMap`/`BTreeSet` (deterministic
//! order) or keep time/thread identity in the observability layers, which
//! are deliberately outside the semantic path list.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "determinism";

/// Container types whose iteration order is randomized.
const ORDERLESS: [&str; 2] = ["HashMap", "HashSet"];

/// `Type::method` calls reading ambient nondeterministic state.
const AMBIENT_CALLS: [(&str, &str); 3] = [
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("thread", "current"),
];

/// Whether a file is inside one of the configured semantic paths.
fn is_semantic(rel_path: &str, config: &LintConfig) -> bool {
    config.determinism_paths.iter().any(|p| {
        let p = p.trim_end_matches('/');
        rel_path == p || rel_path.starts_with(&format!("{p}/"))
    })
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    if !is_semantic(&file.rel_path, config) {
        return;
    }
    for i in 0..file.code.len() {
        let Some(text) = file.code_text(i) else {
            continue;
        };
        let hit: Option<String> = if ORDERLESS.contains(&text) {
            Some(format!(
                "`{text}` (iteration order is randomized; use BTreeMap/BTreeSet \
                 in semantic paths)"
            ))
        } else if file.code_text(i + 1) == Some("::")
            && AMBIENT_CALLS
                .iter()
                .any(|&(ty, m)| ty == text && file.code_text(i + 2) == Some(m))
        {
            Some(format!(
                "`{text}::{}` (ambient nondeterminism in a semantic path)",
                file.code_text(i + 2).unwrap_or_default()
            ))
        } else {
            None
        };
        if let Some(what) = hit {
            let tok = file.code_tok(i).expect("index in range");
            out.push(Diagnostic::new(
                RULE,
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "{what}; semantic paths must be byte-deterministic \
                     (see docs/LINTING.md#determinism)"
                ),
                what.split(' ').next().unwrap_or(&what),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let mut cfg = LintConfig::from_str("", "test").unwrap();
        cfg.determinism_paths = vec!["src/semantic".to_string(), "src/one_file.rs".to_string()];
        let file = SourceFile::new(rel.to_string(), src.to_string());
        let mut out = Vec::new();
        check(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn flags_orderless_containers_and_clock_reads() {
        let src = "use std::collections::HashMap;\nfn f() { let t = Instant::now(); let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let hits = run("src/semantic/order.rs", src);
        assert_eq!(hits.len(), 4, "{hits:?}"); // use + Instant::now + type + ctor
    }

    #[test]
    fn thread_identity_is_flagged() {
        let hits = run(
            "src/semantic/t.rs",
            "fn f() { let id = thread::current().id(); }\n",
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn non_semantic_paths_are_free() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(run("src/other/obs.rs", src).is_empty());
    }

    #[test]
    fn single_file_paths_match_exactly() {
        assert_eq!(
            run("src/one_file.rs", "fn f() { SystemTime::now(); }\n").len(),
            1
        );
        assert!(run("src/one_file_extra.rs", "fn f() { SystemTime::now(); }\n").is_empty());
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let src = "// HashMap and Instant::now\nfn f() { let s = \"HashMap\"; }\n";
        assert!(run("src/semantic/c.rs", src).is_empty());
    }
}
