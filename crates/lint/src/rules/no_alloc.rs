//! `no-alloc`: no allocation-shaped calls inside declared hot paths.
//!
//! The static complement of the counting-allocator integration test
//! (`crates/core/tests/alloc_free_step.rs`): the test proves a handful of
//! configurations allocate nothing per step at runtime; this rule rejects
//! the *code shapes* that would allocate — `Vec::new`, `vec!`, `format!`,
//! `.clone()`, `.collect()`, `.to_vec()`, `Box::new`, … — anywhere in the
//! hot regions declared in `lint.toml`, for every configuration at once,
//! before anything runs.
//!
//! Regions are declared per file as a function-name list (empty list = the
//! whole file). The rule finds `fn <name>` and lints to the matching close
//! brace of the body.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "no-alloc";

/// `Type::method` pairs that allocate.
const PATH_CALLS: [(&str, &str); 9] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Macros that allocate.
const MACROS: [&str; 2] = ["vec", "format"];

/// Method names whose call allocates (or is allocation-shaped enough that a
/// hot path must justify it explicitly).
const METHODS: [&str; 5] = ["clone", "collect", "to_vec", "to_string", "to_owned"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    let Some(hot) = config.hot_paths.iter().find(|h| h.path == file.rel_path) else {
        return;
    };
    if hot.functions.is_empty() {
        scan_region(file, 0, file.code.len(), "<file>", out);
        return;
    }
    for name in &hot.functions {
        for (body_start, body_end) in function_bodies(file, name) {
            scan_region(file, body_start, body_end, name, out);
        }
    }
}

/// Finds the code-token ranges of every `fn <name>` body in the file
/// (methods of different impl blocks may share a name).
fn function_bodies(file: &SourceFile, name: &str) -> Vec<(usize, usize)> {
    let mut bodies = Vec::new();
    let n = file.code.len();
    for i in 0..n {
        if file.code_text(i) != Some("fn") || file.code_text(i + 1) != Some(name) {
            continue;
        }
        // First `{` after the signature opens the body; track nesting to the
        // matching `}`.
        let mut j = i + 2;
        while j < n && file.code_text(j) != Some("{") {
            j += 1;
        }
        let body_start = j;
        let mut depth = 0usize;
        while j < n {
            match file.code_text(j) {
                Some("{") => depth += 1,
                Some("}") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        bodies.push((body_start, j));
    }
    bodies
}

/// Scans code tokens `[start, end)` for allocation shapes.
fn scan_region(
    file: &SourceFile,
    start: usize,
    end: usize,
    region: &str,
    out: &mut Vec<Diagnostic>,
) {
    let end = end.min(file.code.len());
    for i in start..end {
        let Some(text) = file.code_text(i) else {
            continue;
        };
        let next = file.code_text(i + 1);
        let prev = if i > 0 { file.code_text(i - 1) } else { None };
        let hit: Option<String> = if MACROS.contains(&text) && next == Some("!") {
            Some(format!("{text}!"))
        } else if next == Some("::")
            && PATH_CALLS
                .iter()
                .any(|&(ty, m)| ty == text && file.code_text(i + 2) == Some(m))
        {
            Some(format!(
                "{text}::{}",
                file.code_text(i + 2).unwrap_or_default()
            ))
        } else if METHODS.contains(&text)
            && prev == Some(".")
            && (next == Some("(") || next == Some("::"))
        {
            // `(` is a plain call; `::` catches the turbofish form
            // `.collect::<Vec<_>>()`.
            Some(format!(".{text}()"))
        } else {
            None
        };
        if let Some(shape) = hit {
            let tok = file.code_tok(i).expect("index in range");
            out.push(Diagnostic::new(
                RULE,
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "allocation-shaped call `{shape}` inside hot path `{region}`; hot \
                     regions must stay allocation-free (see docs/LINTING.md#no-alloc)"
                ),
                format!("`{shape}` in `{region}`"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HotPath, LintConfig};

    fn config(functions: &[&str]) -> LintConfig {
        let mut cfg = LintConfig::from_str("", "test").unwrap();
        cfg.hot_paths = vec![HotPath {
            path: "hot.rs".to_string(),
            functions: functions.iter().map(|s| s.to_string()).collect(),
        }];
        cfg
    }

    fn run(src: &str, functions: &[&str]) -> Vec<Diagnostic> {
        let file = SourceFile::new("hot.rs".to_string(), src.to_string());
        let mut out = Vec::new();
        check(&file, &config(functions), &mut out);
        out
    }

    #[test]
    fn flags_every_allocation_shape_in_a_hot_fn() {
        let src = r#"
fn hot(xs: &[u32]) {
    let v = vec![1];
    let s = format!("{v:?}");
    let w = Vec::new();
    let b = Box::new(s.clone());
    let c: Vec<u32> = xs.iter().copied().collect();
    let t = xs.to_vec();
}
"#;
        let hits = run(src, &["hot"]);
        let shapes: Vec<&str> = hits.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(hits.len(), 7, "{shapes:?}");
    }

    #[test]
    fn cold_functions_stay_quiet() {
        let src = "fn cold() { let v = vec![1]; }\nfn hot() { let x = 1 + 2; }\n";
        assert!(run(src, &["hot"]).is_empty());
    }

    #[test]
    fn whole_file_mode_lints_everything() {
        let src = "fn a() { let v = vec![1]; }\nfn b() { let s = x.to_owned(); }\n";
        assert_eq!(run(src, &[]).len(), 2);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
fn hot() {
    // vec![] and format!() and .clone() in a comment
    let s = "Vec::new() .collect()";
}
"#;
        assert!(run(src, &["hot"]).is_empty());
    }

    #[test]
    fn nested_braces_stay_inside_the_body() {
        let src = r#"
fn hot(x: u32) {
    match x {
        0 => { let _ = x; }
        _ => {}
    }
}
fn after() { let v = vec![1]; }
"#;
        assert!(run(src, &["hot"]).is_empty());
    }

    #[test]
    fn field_access_named_clone_is_not_a_call() {
        let src = "fn hot(c: C) { let x = c.clone; }\n";
        assert!(run(src, &["hot"]).is_empty());
    }
}
