//! The rule catalog.
//!
//! Every rule targets one repo-wide invariant that earlier PRs enforce only
//! at runtime (or by reviewer vigilance); see `docs/LINTING.md` for the
//! prose catalog. Per-file rules receive the shared [`SourceFile`] model;
//! `domain-drift` runs once per scan over the configured workspace files.

pub mod determinism;
pub mod domain_drift;
pub mod exit_code;
pub mod no_alloc;
pub mod unsafe_audit;

/// Rule ids accepted by `allow(...)` suppressions, in catalog order. The
/// meta rule `suppression` is deliberately absent: findings about the
/// suppression mechanism cannot themselves be suppressed.
pub const RULES: [&str; 5] = [
    no_alloc::RULE,
    determinism::RULE,
    unsafe_audit::RULE,
    domain_drift::RULE,
    exit_code::RULE,
];

/// Whether `name` is a suppressible rule id.
pub fn is_known_rule(name: &str) -> bool {
    RULES.contains(&name)
}
