//! `domain-drift`: versioned domains cannot change shape silently.
//!
//! Three artifacts in this repo are consumed outside the process that wrote
//! them: scenario hashes (cached sweep results keyed by `HASH_DOMAIN`), the
//! sweep wire protocol (`PROTOCOL_VERSION`), and the binary trace format
//! (`MAGIC`). Each is guarded by a version constant that MUST be bumped when
//! the underlying shape changes — otherwise old caches collide with new
//! semantics, old workers parse new frames, old traces decode wrong.
//!
//! The rule fingerprints each domain's defining item (struct fields or enum
//! variants, including payload shapes) plus its version constants, and
//! compares against the committed manifest (`domains.toml`):
//!
//! * shape changed, version unchanged → **drift** — the real bug this rule
//!   exists to catch; bump the version constant(s);
//! * version changed (shape may or may not have) → **stale manifest** — the
//!   bump was made; run `tbp_lint --update-manifest` to re-record;
//! * domain missing from the manifest, or manifest entry with no config →
//!   configuration errors, also fixed by `--update-manifest`.
//!
//! The fingerprint is deliberately over-strict: field order, types and
//! variant payloads all participate. A reordering that would be hash- or
//! wire-compatible still flags; re-recording the manifest is cheap, a silent
//! incompatibility is not.

use std::collections::BTreeMap;
use std::path::Path;

use crate::config::{ConfigError, DomainSpec, LintConfig, SymbolKind, TomlValue};
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "domain-drift";

/// The current shape of one domain, as extracted from the workspace.
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Domain name from the config.
    pub name: String,
    /// File declaring the symbol (workspace-relative).
    pub file: String,
    /// Line of the `struct`/`enum` keyword, for diagnostics.
    pub line: u32,
    /// One entry per version constant: `<file>::<CONST> = <value tokens>`.
    pub version: Vec<String>,
    /// Normalized field/variant shapes, in declaration order.
    pub fields: Vec<String>,
}

/// One recorded domain from the committed manifest.
#[derive(Debug, Clone, PartialEq)]
struct ManifestEntry {
    version: Vec<String>,
    fields: Vec<String>,
}

/// Runs the rule once per scan: fingerprint every configured domain and
/// compare against the manifest.
pub fn check(root: &Path, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    if config.domains.is_empty() {
        return;
    }
    let (fps, mut errs) = compute_fingerprints(root, config);
    out.append(&mut errs);
    let manifest_path = root.join(&config.manifest);
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(_) => {
            out.push(Diagnostic::new(
                RULE,
                &config.manifest,
                1,
                1,
                format!(
                    "domain manifest `{}` is missing; run `tbp_lint --update-manifest` \
                     to record the current fingerprints",
                    config.manifest
                ),
                "manifest missing",
            ));
            return;
        }
    };
    let manifest = match parse_manifest(&text, &config.manifest) {
        Ok(m) => m,
        Err(e) => {
            out.push(Diagnostic::new(
                RULE,
                &config.manifest,
                1,
                1,
                format!("cannot parse domain manifest: {e}"),
                "manifest unparsable",
            ));
            return;
        }
    };
    for name in manifest.keys() {
        if !config.domains.iter().any(|d| &d.name == name) {
            out.push(Diagnostic::new(
                RULE,
                &config.manifest,
                1,
                1,
                format!(
                    "manifest records domain `{name}` that lint.toml does not \
                     declare; run `tbp_lint --update-manifest`"
                ),
                format!("unknown domain `{name}` in manifest"),
            ));
        }
    }
    for fp in &fps {
        match manifest.get(&fp.name) {
            None => out.push(Diagnostic::new(
                RULE,
                &config.manifest,
                1,
                1,
                format!(
                    "domain `{}` is not recorded in the manifest; run \
                     `tbp_lint --update-manifest`",
                    fp.name
                ),
                format!("domain `{}` unrecorded", fp.name),
            )),
            Some(entry) => compare(fp, entry, out),
        }
    }
}

/// Compares one live fingerprint against its manifest record.
fn compare(fp: &Fingerprint, entry: &ManifestEntry, out: &mut Vec<Diagnostic>) {
    let version_same = fp.version == entry.version;
    let fields_same = fp.fields == entry.fields;
    if version_same && fields_same {
        return;
    }
    if !version_same {
        // The version constant moved; whether or not the shape also moved,
        // the fix is the same — re-record the fingerprint.
        out.push(Diagnostic::new(
            RULE,
            &fp.file,
            fp.line,
            1,
            format!(
                "version constant for domain `{}` changed ({}) but the manifest \
                 still records the previous fingerprint; run `tbp_lint \
                 --update-manifest` and commit the result",
                fp.name,
                fp.version.join("; "),
            ),
            format!("manifest stale for `{}`", fp.name),
        ));
        return;
    }
    // Shape drift with the version held still — the headline failure.
    let added: Vec<&String> = fp
        .fields
        .iter()
        .filter(|f| !entry.fields.contains(f))
        .collect();
    let removed: Vec<&String> = entry
        .fields
        .iter()
        .filter(|f| !fp.fields.contains(f))
        .collect();
    let what = if added.is_empty() && removed.is_empty() {
        "fields were reordered".to_string()
    } else {
        let mut parts = Vec::new();
        if !added.is_empty() {
            parts.push(format!(
                "added: {}",
                added
                    .iter()
                    .map(|f| format!("`{f}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        if !removed.is_empty() {
            parts.push(format!(
                "removed: {}",
                removed
                    .iter()
                    .map(|f| format!("`{f}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        parts.join("; ")
    };
    out.push(Diagnostic::new(
        RULE,
        &fp.file,
        fp.line,
        1,
        format!(
            "domain `{}` drifted without a version bump ({what}); bump {} and \
             then run `tbp_lint --update-manifest`",
            fp.name,
            entry.version.join("; "),
        ),
        format!("drift in `{}`", fp.name),
    ));
}

/// Fingerprints every configured domain, reading files from `root`.
/// Extraction failures come back as diagnostics, not panics.
pub fn compute_fingerprints(
    root: &Path,
    config: &LintConfig,
) -> (Vec<Fingerprint>, Vec<Diagnostic>) {
    let mut cache: BTreeMap<String, SourceFile> = BTreeMap::new();
    let mut fps = Vec::new();
    let mut errs = Vec::new();
    for spec in &config.domains {
        let mut needed: Vec<&str> = vec![spec.file.as_str()];
        needed.extend(spec.version.iter().map(|(f, _)| f.as_str()));
        let mut failed = false;
        for rel in needed {
            if cache.contains_key(rel) {
                continue;
            }
            match std::fs::read_to_string(root.join(rel)) {
                Ok(text) => {
                    cache.insert(rel.to_string(), SourceFile::new(rel.to_string(), text));
                }
                Err(e) => {
                    errs.push(Diagnostic::new(
                        RULE,
                        rel,
                        1,
                        1,
                        format!("domain `{}`: cannot read `{rel}`: {e}", spec.name),
                        format!("unreadable file for `{}`", spec.name),
                    ));
                    failed = true;
                }
            }
        }
        if failed {
            continue;
        }
        match fingerprint_from_sources(spec, &cache) {
            Ok(fp) => fps.push(fp),
            Err(why) => errs.push(Diagnostic::new(
                RULE,
                &spec.file,
                1,
                1,
                format!("domain `{}`: {why}", spec.name),
                format!("unextractable domain `{}`", spec.name),
            )),
        }
    }
    (fps, errs)
}

/// Extracts one fingerprint from already-loaded sources.
pub fn fingerprint_from_sources(
    spec: &DomainSpec,
    files: &BTreeMap<String, SourceFile>,
) -> Result<Fingerprint, String> {
    let file = files
        .get(&spec.file)
        .ok_or_else(|| format!("`{}` not loaded", spec.file))?;
    let keyword = match spec.kind {
        SymbolKind::Struct => "struct",
        SymbolKind::Enum => "enum",
    };
    let at = find_item(file, keyword, &spec.symbol)
        .ok_or_else(|| format!("`{keyword} {}` not found in `{}`", spec.symbol, spec.file))?;
    let line = file.code_tok(at).expect("index in range").line;
    let fields = extract_members(file, at, spec.kind)?;
    let mut version = Vec::new();
    for (rel, name) in &spec.version {
        let vfile = files
            .get(rel)
            .ok_or_else(|| format!("`{rel}` not loaded"))?;
        let value = extract_const(vfile, name)
            .ok_or_else(|| format!("`const {name}` not found in `{rel}`"))?;
        version.push(format!("{rel}::{name} = {value}"));
    }
    Ok(Fingerprint {
        name: spec.name.clone(),
        file: spec.file.clone(),
        line,
        version,
        fields,
    })
}

/// Finds the code index of `keyword` immediately followed by `symbol`.
fn find_item(file: &SourceFile, keyword: &str, symbol: &str) -> Option<usize> {
    (0..file.code.len())
        .find(|&i| file.code_text(i) == Some(keyword) && file.code_text(i + 1) == Some(symbol))
}

/// Extracts normalized member shapes from the `{ … }` body after `at`.
fn extract_members(file: &SourceFile, at: usize, kind: SymbolKind) -> Result<Vec<String>, String> {
    let n = file.code.len();
    let mut open = at + 2;
    while open < n && file.code_text(open) != Some("{") {
        open += 1;
    }
    if open >= n {
        return Err("item has no `{ … }` body (tuple structs are not supported)".to_string());
    }
    // Collect code indices strictly inside the body, tracking brace depth for
    // nested payloads (struct-variant enums).
    let mut inner = Vec::new();
    let mut depth = 1usize;
    let mut j = open + 1;
    while j < n {
        match file.code_text(j) {
            Some("{") => depth += 1,
            Some("}") => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        inner.push(j);
        j += 1;
    }
    if depth != 0 {
        return Err("unbalanced braces in item body".to_string());
    }
    let mut members = Vec::new();
    for segment in split_segments(file, &inner) {
        if let Some(shape) = clean_segment(file, &segment, kind) {
            members.push(shape);
        }
    }
    if members.is_empty() {
        return Err("item body declares no members".to_string());
    }
    Ok(members)
}

/// Splits body token indices on commas at nesting depth zero. Braces,
/// parentheses, brackets and angle brackets all nest; `>` only closes an
/// angle context that a `<` opened, so `->` in a field type is harmless.
fn split_segments(file: &SourceFile, inner: &[usize]) -> Vec<Vec<usize>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let (mut brace, mut paren, mut bracket, mut angle) = (0i32, 0i32, 0i32, 0i32);
    for &i in inner {
        match file.code_text(i) {
            Some("{") => brace += 1,
            Some("}") => brace -= 1,
            Some("(") => paren += 1,
            Some(")") => paren -= 1,
            Some("[") => bracket += 1,
            Some("]") => bracket -= 1,
            Some("<") => angle += 1,
            Some(">") if angle > 0 => angle -= 1,
            Some(",") if brace == 0 && paren == 0 && bracket == 0 && angle == 0 => {
                segments.push(std::mem::take(&mut current));
                continue;
            }
            _ => {}
        }
        current.push(i);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Normalizes one member segment: drop attributes and visibility, join the
/// rest with single spaces. Returns `None` for empty segments (trailing
/// commas).
fn clean_segment(file: &SourceFile, toks: &[usize], kind: SymbolKind) -> Option<String> {
    let mut i = 0;
    while i < toks.len() {
        match file.code_text(toks[i]) {
            // `#[...]` attribute: skip to the matching `]`.
            Some("#")
                if file.code_text(toks.get(i + 1).copied().unwrap_or(usize::MAX)) == Some("[") =>
            {
                let mut depth = 0i32;
                i += 1;
                while i < toks.len() {
                    match file.code_text(toks[i]) {
                        Some("[") => depth += 1,
                        Some("]") => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            // Visibility is not part of the shape (structs only; an enum
            // variant named `pub` cannot exist).
            Some("pub") if kind == SymbolKind::Struct => {
                i += 1;
                if file.code_text(toks.get(i).copied().unwrap_or(usize::MAX)) == Some("(") {
                    while i < toks.len() && file.code_text(toks[i]) != Some(")") {
                        i += 1;
                    }
                    i += 1;
                }
            }
            _ => break,
        }
    }
    if i >= toks.len() {
        return None;
    }
    let parts: Vec<&str> = toks[i..]
        .iter()
        .filter_map(|&t| file.code_text(t))
        .collect();
    Some(parts.join(" "))
}

/// Extracts the value tokens of `const NAME … = <value> ;`, joined with
/// spaces (type annotation excluded — the value is what gets hashed/written).
fn extract_const(file: &SourceFile, name: &str) -> Option<String> {
    let n = file.code.len();
    for i in 0..n {
        if file.code_text(i) != Some("const") || file.code_text(i + 1) != Some(name) {
            continue;
        }
        let mut j = i + 2;
        while j < n && file.code_text(j) != Some("=") {
            j += 1;
        }
        let mut value = Vec::new();
        j += 1;
        while j < n && file.code_text(j) != Some(";") {
            value.push(file.code_text(j)?);
            j += 1;
        }
        if value.is_empty() {
            return None;
        }
        return Some(value.join(" "));
    }
    None
}

// ---------------------------------------------------------------------------
// Manifest I/O
// ---------------------------------------------------------------------------

/// Renders the manifest for `--update-manifest`. Deterministic: domains are
/// sorted by name, entries by declaration order.
pub fn render_manifest(fps: &[Fingerprint]) -> String {
    let mut sorted: Vec<&Fingerprint> = fps.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    out.push_str(
        "# Domain fingerprint manifest — generated by `tbp_lint --update-manifest`.\n\
         # Records the member shape and version constants of every versioned\n\
         # domain; the `domain-drift` rule fails when a shape changes without a\n\
         # version bump. Regenerate with `tbp_lint --update-manifest`; never edit\n\
         # by hand.\n",
    );
    for fp in sorted {
        out.push('\n');
        out.push_str("[[domain]]\n");
        out.push_str(&format!("name = \"{}\"\n", toml_escape(&fp.name)));
        out.push_str("version = [\n");
        for v in &fp.version {
            out.push_str(&format!("  \"{}\",\n", toml_escape(v)));
        }
        out.push_str("]\n");
        out.push_str("fields = [\n");
        for f in &fp.fields {
            out.push_str(&format!("  \"{}\",\n", toml_escape(f)));
        }
        out.push_str("]\n");
    }
    out
}

fn toml_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses a manifest into name → entry.
fn parse_manifest(
    text: &str,
    origin: &str,
) -> Result<BTreeMap<String, ManifestEntry>, ConfigError> {
    let doc = crate::config::parse_toml(text, origin)?;
    let mut out = BTreeMap::new();
    for table in doc.tables_at(&["domain"]) {
        let ctx = "[[domain]]";
        let name = table.str_entry("name", ctx)?;
        let version = str_list_required(table.get("version"), "version", ctx)?;
        let fields = str_list_required(table.get("fields"), "fields", ctx)?;
        if out
            .insert(name.clone(), ManifestEntry { version, fields })
            .is_some()
        {
            return Err(ConfigError::new(format!(
                "{origin}: duplicate manifest entry for `{name}`"
            )));
        }
    }
    Ok(out)
}

fn str_list_required(
    value: Option<&TomlValue>,
    key: &str,
    ctx: &str,
) -> Result<Vec<String>, ConfigError> {
    match value {
        Some(TomlValue::List(items)) => items
            .iter()
            .map(|v| {
                v.as_str().map(str::to_string).ok_or_else(|| {
                    ConfigError::new(format!("{ctx}: `{key}` entries must be strings"))
                })
            })
            .collect(),
        _ => Err(ConfigError::new(format!(
            "{ctx}: missing or non-array `{key}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: SymbolKind, symbol: &str) -> DomainSpec {
        DomainSpec {
            name: "demo".to_string(),
            kind,
            file: "item.rs".to_string(),
            symbol: symbol.to_string(),
            version: vec![("ver.rs".to_string(), "VERSION".to_string())],
        }
    }

    fn sources(item: &str, ver: &str) -> BTreeMap<String, SourceFile> {
        let mut m = BTreeMap::new();
        m.insert(
            "item.rs".to_string(),
            SourceFile::new("item.rs".to_string(), item.to_string()),
        );
        m.insert(
            "ver.rs".to_string(),
            SourceFile::new("ver.rs".to_string(), ver.to_string()),
        );
        m
    }

    const VER: &str = "pub const VERSION: &str = \"v2\";\n";

    #[test]
    fn struct_fields_fingerprint() {
        let files = sources(
            "/// Doc.\npub struct Spec {\n    pub name: String,\n    #[allow(dead_code)]\n    pub map: BTreeMap<String, f64>,\n    pub(crate) hidden: u32,\n}\n",
            VER,
        );
        let fp = fingerprint_from_sources(&spec(SymbolKind::Struct, "Spec"), &files).unwrap();
        assert_eq!(
            fp.fields,
            vec![
                "name : String",
                "map : BTreeMap < String , f64 >",
                "hidden : u32"
            ]
        );
        assert_eq!(fp.version, vec!["ver.rs::VERSION = \"v2\""]);
    }

    #[test]
    fn enum_variants_include_payload_shapes() {
        let files = sources(
            "pub enum Msg {\n    Hello { worker: String, proto: u32 },\n    Lease(u64),\n    Shutdown,\n}\n",
            VER,
        );
        let fp = fingerprint_from_sources(&spec(SymbolKind::Enum, "Msg"), &files).unwrap();
        assert_eq!(fp.fields.len(), 3);
        assert!(fp.fields[0].contains("worker : String"));
        assert_eq!(fp.fields[1], "Lease ( u64 )");
        assert_eq!(fp.fields[2], "Shutdown");
    }

    #[test]
    fn missing_symbol_is_an_error() {
        let files = sources("pub struct Other { a: u32 }\n", VER);
        let err = fingerprint_from_sources(&spec(SymbolKind::Struct, "Spec"), &files).unwrap_err();
        assert!(err.contains("struct Spec"), "{err}");
    }

    #[test]
    fn manifest_round_trip() {
        let fp = Fingerprint {
            name: "demo".to_string(),
            file: "item.rs".to_string(),
            line: 2,
            version: vec!["ver.rs::VERSION = \"v2\"".to_string()],
            fields: vec!["name : String".to_string()],
        };
        let rendered = render_manifest(std::slice::from_ref(&fp));
        let parsed = parse_manifest(&rendered, "test").unwrap();
        let entry = parsed.get("demo").unwrap();
        assert_eq!(entry.version, fp.version);
        assert_eq!(entry.fields, fp.fields);
    }

    #[test]
    fn drift_without_bump_is_flagged_and_bump_means_stale() {
        let old = ManifestEntry {
            version: vec!["ver.rs::VERSION = \"v2\"".to_string()],
            fields: vec!["name : String".to_string()],
        };
        // Field added, version unchanged → drift.
        let drifted = Fingerprint {
            name: "demo".to_string(),
            file: "item.rs".to_string(),
            line: 2,
            version: old.version.clone(),
            fields: vec!["name : String".to_string(), "knob : u32".to_string()],
        };
        let mut out = Vec::new();
        compare(&drifted, &old, &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("without a version bump"),
            "{}",
            out[0].message
        );
        assert!(out[0].message.contains("knob : u32"));
        // Version bumped → stale manifest, a different message.
        let bumped = Fingerprint {
            version: vec!["ver.rs::VERSION = \"v3\"".to_string()],
            ..drifted
        };
        let mut out = Vec::new();
        compare(&bumped, &old, &mut out);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].message.contains("--update-manifest"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn in_sync_domain_is_quiet() {
        let fp = Fingerprint {
            name: "demo".to_string(),
            file: "item.rs".to_string(),
            line: 2,
            version: vec!["v".to_string()],
            fields: vec!["a : u32".to_string()],
        };
        let entry = ManifestEntry {
            version: fp.version.clone(),
            fields: fp.fields.clone(),
        };
        let mut out = Vec::new();
        compare(&fp, &entry, &mut out);
        assert!(out.is_empty());
    }
}
