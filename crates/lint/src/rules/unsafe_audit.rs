//! `unsafe-audit`: every `unsafe` site carries a safety argument.
//!
//! The SIMD kernels are the only `unsafe` in the tree, and their soundness
//! rests on invariants (CPU feature detected, adjacency bounds asserted at
//! construction) that live far from the call sites. This rule makes the
//! argument travel with the code: each `unsafe` block, fn, impl or trait
//! must have a `// SAFETY: …` comment immediately above it (attributes and
//! blank lines may intervene), a trailing `// SAFETY:` on the same line, or
//! — for `unsafe fn`/`unsafe impl`/`unsafe trait` — a doc comment with a
//! `# Safety` section.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "unsafe-audit";

/// Whether a comment's text satisfies the audit.
fn is_safety_comment(text: &str) -> bool {
    text.contains("SAFETY") || text.contains("# Safety")
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, _config: &LintConfig, out: &mut Vec<Diagnostic>) {
    for n in 0..file.code.len() {
        if file.code_text(n) != Some("unsafe") {
            continue;
        }
        let tok = *file.code_tok(n).expect("index in range");
        // What follows `unsafe` shapes the message only; the requirement is
        // identical for every form.
        let form = match file.code_text(n + 1) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ => "unsafe block",
        };
        if covered(file, tok.line) {
            continue;
        }
        out.push(Diagnostic::new(
            RULE,
            &file.rel_path,
            tok.line,
            tok.col,
            format!(
                "{form} without a `// SAFETY:` comment (or `# Safety` doc \
                 section) stating why the invariants hold"
            ),
            format!("{form} unaudited"),
        ));
    }
}

/// Whether an `unsafe` on `line` has a safety comment in scope: on the same
/// line, or in the contiguous run of comment/attribute/blank lines above.
fn covered(file: &SourceFile, line: u32) -> bool {
    // `Some(true)` = a qualifying comment on the line; `Some(false)` =
    // comments present but none qualify; `None` = no comments at all.
    let comment_on = |l: u32| -> Option<bool> {
        let info = file.lines.get(l as usize)?;
        if info.comments.is_empty() {
            return None;
        }
        Some(
            info.comments
                .iter()
                .any(|&i| is_safety_comment(file.tok_text(i))),
        )
    };
    if comment_on(line) == Some(true) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let Some(info) = file.lines.get(l as usize) else {
            break;
        };
        match comment_on(l) {
            Some(true) => return true,
            Some(false) => {
                // A comment line that is not a safety comment: keep walking
                // (doc paragraphs above `# Safety` lines, rule prose, …).
                if info.first_code.is_some() {
                    // Trailing comment on a code line ends the run.
                    return false;
                }
                continue;
            }
            None => {}
        }
        match info.first_code {
            None => continue, // blank line
            Some(i) => {
                // Attribute lines (`#[target_feature(...)]`) continue the
                // run; any other code ends it.
                if file.tok_text(i) == "#" {
                    continue;
                }
                return false;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let cfg = LintConfig::from_str("", "test").unwrap();
        let file = SourceFile::new("u.rs".to_string(), src.to_string());
        let mut out = Vec::new();
        check(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn bare_unsafe_block_is_flagged() {
        let hits = run("fn f(p: *const u8) { let b = unsafe { *p }; }\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unsafe block"));
    }

    #[test]
    fn safety_comment_above_covers() {
        let src = "fn f(p: *const u8) {\n    // SAFETY: p is valid for reads by contract.\n    let b = unsafe { *p };\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn trailing_safety_comment_covers() {
        let src = "fn f(p: *const u8) { let b = unsafe { *p }; // SAFETY: contract\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn attributes_and_blanks_do_not_break_the_run() {
        let src = "// SAFETY: feature checked by caller.\n#[target_feature(enable = \"avx2\")]\n\nunsafe fn k() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n///\n/// Caller checks the CPU feature.\nunsafe fn k() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn plain_code_line_ends_the_search() {
        let src = "// SAFETY: too far away\nlet x = 1;\nlet b = unsafe { f() };\n";
        let hits = run(src);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn unsafe_impl_requires_audit() {
        let hits = run("unsafe impl Send for X {}\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("unsafe impl"));
        assert!(
            run("// SAFETY: X owns no thread-local state.\nunsafe impl Send for X {}\n").is_empty()
        );
    }

    #[test]
    fn safety_in_string_does_not_cover() {
        let hits = run("fn f() { let s = \"SAFETY: no\"; unsafe { g() } }\n");
        assert_eq!(hits.len(), 1);
    }
}
