//! `exit-code`: `process::exit` stays in binaries and speaks the contract.
//!
//! PR 9 fixed the CLI exit-code contract — usage errors exit 2, runtime
//! failures exit 1, success returns from `main` — and pinned it with
//! `cli_exit_codes.rs`. That test can only cover the paths it drives; this
//! rule covers the rest statically: `process::exit` may appear only in
//! files matching the configured binary patterns (`src/bin/`, `src/main.rs`
//! by default), and only with an allowed argument (the literals `1`/`2` or
//! a configured constant such as `EXIT_FAILURE`). Library code that wants
//! to terminate must return an error up to the binary instead — or carry a
//! baseline entry, which is exactly how the grandfathered `fail()` helpers
//! in `tbp_bench` are handled.

use crate::config::LintConfig;
use crate::diag::Diagnostic;
use crate::source::SourceFile;

/// Rule id.
pub const RULE: &str = "exit-code";

/// Runs the rule over one file.
pub fn check(file: &SourceFile, config: &LintConfig, out: &mut Vec<Diagnostic>) {
    let is_bin = config
        .exit_bins
        .iter()
        .any(|frag| file.rel_path.contains(frag.as_str()));
    for n in 0..file.code.len() {
        // Match `process :: exit` — `std::process::exit(..)` and
        // `process::exit(..)` both end in this triple.
        if file.code_text(n) != Some("process")
            || file.code_text(n + 1) != Some("::")
            || file.code_text(n + 2) != Some("exit")
        {
            continue;
        }
        let tok = *file.code_tok(n).expect("index in range");
        if !is_bin {
            out.push(Diagnostic::new(
                RULE,
                &file.rel_path,
                tok.line,
                tok.col,
                "`process::exit` outside a binary: library code must return \
                 errors to the caller, not terminate the process"
                    .to_string(),
                "process::exit outside a binary",
            ));
            continue;
        }
        // In a binary: the single argument must be an allowed literal or
        // constant (`exit(1)`, `exit(EXIT_USAGE)`); anything else — `0`,
        // arbitrary codes, computed values — breaks the CLI contract.
        let arg_ok = file.code_text(n + 3) == Some("(")
            && file
                .code_text(n + 4)
                .is_some_and(|arg| config.exit_allowed.iter().any(|a| a == arg))
            && file.code_text(n + 5) == Some(")");
        if !arg_ok {
            let arg = file.code_text(n + 4).unwrap_or("<none>").to_string();
            out.push(Diagnostic::new(
                RULE,
                &file.rel_path,
                tok.line,
                tok.col,
                format!(
                    "`process::exit({arg})` violates the CLI contract: allowed \
                     arguments are {} (usage errors exit 2, runtime failures \
                     exit 1, success returns from main)",
                    config.exit_allowed.join(", ")
                ),
                format!("process::exit({arg}) in a binary"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let mut cfg = LintConfig::from_str("", "test").unwrap();
        cfg.exit_bins = vec!["src/bin/".to_string()];
        cfg.exit_allowed = vec!["1".to_string(), "2".to_string(), "EXIT_FAILURE".to_string()];
        let file = SourceFile::new(rel.to_string(), src.to_string());
        let mut out = Vec::new();
        check(&file, &cfg, &mut out);
        out
    }

    #[test]
    fn exit_in_library_is_flagged() {
        let hits = run("src/lib.rs", "fn f() { std::process::exit(1); }\n");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("outside a binary"));
    }

    #[test]
    fn allowed_codes_in_bins_pass() {
        let src = "fn main() { std::process::exit(1); process::exit(2); std::process::exit(EXIT_FAILURE); }\n";
        assert!(run("src/bin/tool.rs", src).is_empty());
    }

    #[test]
    fn zero_and_arbitrary_codes_in_bins_fail() {
        let hits = run(
            "src/bin/tool.rs",
            "fn main() { std::process::exit(0); std::process::exit(42); std::process::exit(code); }\n",
        );
        assert_eq!(hits.len(), 3);
        assert!(hits[0].message.contains("exit(0)"));
    }

    #[test]
    fn computed_arguments_fail() {
        let hits = run(
            "src/bin/tool.rs",
            "fn main() { std::process::exit(1 + 1); }\n",
        );
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn mentions_in_strings_do_not_fire() {
        let src = "fn f() { let s = \"process::exit(3)\"; }\n";
        assert!(run("src/lib.rs", src).is_empty());
    }
}
