//! `tbp-lint` — the workspace's own static-analysis pass.
//!
//! Nine PRs in, this repo's correctness story rests on a handful of
//! invariants that ordinary tests check only *where a test happens to
//! look*: the hot simulation loop allocates nothing per step, semantic code
//! paths are byte-deterministic, every `unsafe` block argues its soundness,
//! versioned domains (scenario hash, sweep wire protocol, trace format)
//! never change shape without a version bump, and binaries speak the CLI
//! exit-code contract. `tbp-lint` checks the *code shapes* behind those
//! invariants across the whole workspace, before anything runs.
//!
//! The crate is deliberately std-only and dependency-free: the linter must
//! never be the component that fails to build. It carries its own
//! comment/string-aware Rust [`lexer`], a TOML-subset [`config`] parser, a
//! committed findings [`baseline`] (which fails CI on growth *and* on stale
//! entries), inline suppression directives with mandatory justifications
//! ([`source`]), and five [`rules`]. The `tbp_lint` binary wires it all to
//! the command line; see `docs/LINTING.md` for the user-facing catalog.

pub mod baseline;
pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;
