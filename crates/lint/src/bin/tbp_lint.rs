//! `tbp_lint` — command-line front end for the workspace linter.
//!
//! Exit codes follow the repo contract (and this binary is itself checked
//! by the `exit-code` rule): `2` for usage errors, `1` for runtime failures
//! or — under `--deny` — a scan that disagrees with the baseline, `0`
//! otherwise.

use std::path::PathBuf;
use std::process;

use tbp_lint::config::LintConfig;
use tbp_lint::diag::json_str;
use tbp_lint::engine;
use tbp_lint::rules;
use tbp_lint::source::SUPPRESSION_RULE;

const USAGE: &str = "\
tbp_lint — static-analysis pass for the tbp workspace

USAGE:
    tbp_lint [OPTIONS]

OPTIONS:
    --root <DIR>         Workspace root to scan (default: .)
    --config <PATH>      Config file (default: <root>/lint.toml)
    --format <FMT>       Output format: human (default) or json
    --deny               Exit 1 when the scan disagrees with the baseline
    --update-baseline    Rewrite the baseline to capture this scan exactly
    --update-manifest    Re-fingerprint all domains and rewrite the manifest
    --list-rules         Print the rule catalog and exit
    -h, --help           Show this help
";

#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
}

struct Opts {
    root: PathBuf,
    config: Option<PathBuf>,
    format: Format,
    deny: bool,
    update_baseline: bool,
    update_manifest: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Opts>, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: None,
        format: Format::Human,
        deny: false,
        update_baseline: false,
        update_manifest: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root requires a directory argument")?);
            }
            "--config" => {
                opts.config = Some(PathBuf::from(it.next().ok_or("--config requires a path")?));
            }
            "--format" => match it.next().map(String::as_str) {
                Some("human") => opts.format = Format::Human,
                Some("json") => opts.format = Format::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
                None => return Err("--format requires `human` or `json`".to_string()),
            },
            "--deny" => opts.deny = true,
            "--update-baseline" => opts.update_baseline = true,
            "--update-manifest" => opts.update_manifest = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return;
        }
        Err(why) => {
            eprintln!("tbp_lint: {why}");
            eprintln!();
            eprint!("{USAGE}");
            process::exit(2);
        }
    };

    if opts.list_rules {
        for rule in rules::RULES {
            println!("{rule}");
        }
        println!("{SUPPRESSION_RULE} (meta; not suppressible)");
        return;
    }

    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("lint.toml"));
    let config = match LintConfig::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("tbp_lint: {e}");
            process::exit(1);
        }
    };

    if opts.update_manifest {
        if let Err(why) = engine::update_manifest(&opts.root, &config) {
            eprintln!("tbp_lint: {why}");
            process::exit(1);
        }
        println!("wrote {}", config.manifest);
        return;
    }

    let scan = match engine::scan(&opts.root, &config) {
        Ok(s) => s,
        Err(why) => {
            eprintln!("tbp_lint: {why}");
            process::exit(1);
        }
    };

    if opts.update_baseline {
        if let Err(why) = engine::update_baseline(&opts.root, &config, &scan) {
            eprintln!("tbp_lint: {why}");
            process::exit(1);
        }
        println!(
            "wrote {} ({} finding(s) grandfathered)",
            config.baseline,
            scan.diagnostics.len()
        );
        return;
    }

    let (_baseline, delta) = match engine::compare_baseline(&opts.root, &config, &scan) {
        Ok(pair) => pair,
        Err(why) => {
            eprintln!("tbp_lint: {why}");
            process::exit(1);
        }
    };

    match opts.format {
        Format::Human => {
            for d in &delta.fresh {
                println!("{d}");
            }
            for (key, allowed, seen) in &delta.stale {
                println!(
                    "stale baseline entry `{key}`: baseline allows {allowed}, scan found \
                     {seen}; run `tbp_lint --update-baseline`"
                );
            }
            let grandfathered = scan.diagnostics.len() - delta.fresh.len();
            println!(
                "scanned {} file(s): {} new finding(s), {} grandfathered, {} suppressed, \
                 {} stale baseline entr(ies)",
                scan.files.len(),
                delta.fresh.len(),
                grandfathered,
                scan.suppressed,
                delta.stale.len()
            );
        }
        Format::Json => {
            let findings: Vec<String> = delta.fresh.iter().map(|d| d.to_json()).collect();
            let stale: Vec<String> = delta
                .stale
                .iter()
                .map(|(key, allowed, seen)| {
                    format!(
                        "{{\"key\":{},\"allowed\":{allowed},\"seen\":{seen}}}",
                        json_str(key)
                    )
                })
                .collect();
            println!(
                "{{\"files\":{},\"total_findings\":{},\"suppressed\":{},\"clean\":{},\
                 \"findings\":[{}],\"stale\":[{}]}}",
                scan.files.len(),
                scan.diagnostics.len(),
                scan.suppressed,
                delta.is_clean(),
                findings.join(","),
                stale.join(",")
            );
        }
    }

    if opts.deny && !delta.is_clean() {
        process::exit(1);
    }
}
