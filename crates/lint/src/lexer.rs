//! A lightweight Rust tokenizer, just precise enough for lint rules.
//!
//! The lexer does not build an AST; it classifies the byte stream into
//! idents, punctuation, literals and trivia so that rules matching on token
//! *shapes* (`Vec :: new`, `. clone (`, `unsafe`) can never be fooled by the
//! same text appearing inside a string literal, a raw string, a char
//! literal, or a comment — the classic failure mode of grep-based linting.
//!
//! Everything the grammar needs for that guarantee is implemented: nested
//! block comments, escapes in strings and chars, raw strings with arbitrary
//! `#` fences (including byte/C-string prefixes), raw identifiers
//! (`r#match`), and the lifetime-versus-char-literal ambiguity. Numeric
//! literals are tokenized coarsely (the rules only ever inspect small
//! integer arguments), and multi-character punctuation is collapsed only for
//! `::`, the one compound the rules distinguish.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `Vec`, `r#match`).
    Ident,
    /// Punctuation; every token is one char except the compound `::`.
    Punct,
    /// Numeric literal (coarse: `0x1F`, `1_000`, `2.5`; exponent signs lex
    /// as separate punctuation, which no rule cares about).
    Number,
    /// String-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`, `'x'`, `b'x'`.
    Literal,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// `// …` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* … */` comment, nesting-aware, including doc forms.
    BlockComment,
}

/// One token: classification plus location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte within its line.
    pub col: u32,
}

impl Token {
    /// The token's text within the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token is a comment of either form.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Never panics: malformed input (unterminated strings or
/// comments) produces a final token running to end-of-file.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining the line/column counters.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let b = self.peek(0);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.lex_string();
                    self.push(TokenKind::Literal, start, line, col);
                }
                b'\'' => self.lex_quote(start, line, col),
                b'r' | b'b' | b'c' if self.string_prefix().is_some() => {
                    let (skip, hashes, raw) = self.string_prefix().expect("guard");
                    self.bump_n(skip);
                    if raw {
                        self.lex_raw_string(hashes);
                    } else if self.peek(0) == b'\'' {
                        // b'x' byte char: lex_quote with a forced char form.
                        self.bump(); // the quote
                        self.lex_char_body();
                    } else {
                        self.lex_string();
                    }
                    self.push(TokenKind::Literal, start, line, col);
                }
                _ if is_ident_start(b) => {
                    // Raw identifier r#ident (the r#" raw-string case was
                    // handled by the arm above).
                    if b == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                        self.bump_n(2);
                    }
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ if b.is_ascii_digit() => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    // One fractional part, but never a `..` range operator.
                    if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                        self.bump();
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                    }
                    self.push(TokenKind::Number, start, line, col);
                }
                b':' if self.peek(1) == b':' => {
                    self.bump_n(2);
                    self.push(TokenKind::Punct, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    /// Detects a string-ish prefix at the cursor: returns
    /// `(bytes_to_skip_to_quote, raw_hashes, is_raw)`.
    fn string_prefix(&self) -> Option<(usize, usize, bool)> {
        let b0 = self.peek(0);
        // br" / br#" (rb is not legal Rust; cr neither).
        let (raw_at, quote_at) = match (b0, self.peek(1)) {
            (b'r', _) => (0usize, 1usize),
            (b'b' | b'c', b'r') => (1, 2),
            (b'b', b'"') => return Some((1, 0, false)),
            (b'b', b'\'') => return Some((1, 0, false)),
            (b'c', b'"') => return Some((1, 0, false)),
            _ => return None,
        };
        // After the `r`: count `#` fence, then require `"`.
        let mut hashes = 0usize;
        let mut at = raw_at + 1;
        while self.peek(at) == b'#' {
            hashes += 1;
            at += 1;
        }
        if self.peek(at) == b'"' {
            let _ = quote_at;
            Some((at + 1, hashes, true))
        } else {
            None
        }
    }

    /// Consumes a `"…"` body starting at the opening quote.
    fn lex_string(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body; the opening fence (`r##"`) has already
    /// been consumed and `hashes` counts its `#`s.
    fn lex_raw_string(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut matched = 0;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Consumes the remainder of a char literal after its opening `'`.
    fn lex_char_body(&mut self) {
        if self.peek(0) == b'\\' {
            self.bump_n(2);
        } else {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at an opening `'`.
    fn lex_quote(&mut self, start: usize, line: u32, col: u32) {
        // 'x… where x continues as an identifier and is NOT closed by a
        // quote is a lifetime; everything else is a char literal.
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.bump(); // '
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.push(TokenKind::Lifetime, start, line, col);
        } else {
            self.bump(); // '
            self.lex_char_body();
            self.push(TokenKind::Literal, start, line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let toks = kinds("Vec::new()");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "Vec".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "new".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "Vec::new() // not a comment";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "Vec" && t != "new")));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Literal));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r####"let s = r##"quote " and "# inside"## ; done"####;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t.starts_with("r##")));
        assert_eq!(toks.last().unwrap().1, "done");
    }

    #[test]
    fn byte_and_c_strings() {
        for src in ["b\"bytes\" x", "c\"cstr\" x", "br#\"raw\"# x", "b'q' x"] {
            let toks = kinds(src);
            assert_eq!(toks[0].0, TokenKind::Literal, "{src}");
            assert_eq!(toks[1], (TokenKind::Ident, "x".into()), "{src}");
        }
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let toks = kinds("r#match x");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("&'a str; 'x'; '\\n'; 'static");
        assert_eq!(toks[1], (TokenKind::Lifetime, "'a".into()));
        assert!(toks.contains(&(TokenKind::Literal, "'x'".into())));
        assert!(toks.contains(&(TokenKind::Literal, "'\\n'".into())));
        assert_eq!(
            toks.last().unwrap(),
            &(TokenKind::Lifetime, "'static".into())
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn line_and_column_tracking() {
        let src = "a\n  bb\n";
        let toks = tokenize(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokenKind::Number, "0".into()));
        assert_eq!(toks[3], (TokenKind::Number, "10".into()));
    }

    #[test]
    fn unterminated_input_never_panics() {
        for src in ["\"open", "/* open", "r#\"open", "'"] {
            let _ = tokenize(src);
        }
    }
}
