//! Per-file source model shared by all rules: tokens, per-line indexes, and
//! inline suppression directives.

use crate::diag::Diagnostic;
use crate::lexer::{tokenize, Token};
use crate::rules;

/// Rule id used for findings about the suppression mechanism itself.
pub const SUPPRESSION_RULE: &str = "suppression";

/// One `// tbp-lint: allow(rule, …): justification` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Suppression {
    /// Line the directive sits on; it covers this line and the next.
    pub line: u32,
    /// Rule ids it suppresses.
    pub rules: Vec<String>,
}

/// Summary of what one line contains, for comment-proximity rules.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Indices (into `tokens`) of comment tokens starting on this line.
    pub comments: Vec<usize>,
    /// Index of the first non-comment token starting on this line.
    pub first_code: Option<usize>,
}

/// A lexed file plus the indexes rules need.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// File content.
    pub text: String,
    /// All tokens.
    pub tokens: Vec<Token>,
    /// Indices of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Per-line info, indexed by 1-based line (entry 0 unused).
    pub lines: Vec<LineInfo>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Findings produced while parsing directives (malformed syntax,
    /// missing justification, unknown rule ids).
    pub suppression_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lexes `text` and builds all indexes.
    pub fn new(rel_path: String, text: String) -> Self {
        let tokens = tokenize(&text);
        let last_line = tokens.last().map(|t| t.line).unwrap_or(1);
        let mut lines = vec![LineInfo::default(); last_line as usize + 2];
        let mut code = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            let entry = &mut lines[tok.line as usize];
            if tok.is_comment() {
                entry.comments.push(i);
            } else {
                code.push(i);
                if entry.first_code.is_none() {
                    entry.first_code = Some(i);
                }
            }
        }
        let mut file = SourceFile {
            rel_path,
            text,
            tokens,
            code,
            lines,
            suppressions: Vec::new(),
            suppression_diags: Vec::new(),
        };
        file.parse_suppressions();
        file
    }

    /// The text of token `i`.
    pub fn tok_text(&self, i: usize) -> &str {
        self.tokens[i].text(&self.text)
    }

    /// The text of the `n`th code token, if it exists.
    pub fn code_text(&self, n: usize) -> Option<&str> {
        self.code.get(n).map(|&i| self.tok_text(i))
    }

    /// The token behind the `n`th code index.
    pub fn code_tok(&self, n: usize) -> Option<&Token> {
        self.code.get(n).map(|&i| &self.tokens[i])
    }

    /// Whether `diag` (already attributed to this file) is covered by a
    /// suppression directive.
    pub fn is_suppressed(&self, diag: &Diagnostic) -> bool {
        diag.rule != SUPPRESSION_RULE
            && self.suppressions.iter().any(|s| {
                (diag.line == s.line || diag.line == s.line + 1)
                    && s.rules.iter().any(|r| r == diag.rule)
            })
    }

    /// Scans comments for `tbp-lint:` directives. Valid directives become
    /// [`Suppression`]s; malformed ones become findings — an unjustified or
    /// misspelled suppression must never silently turn the linter off.
    fn parse_suppressions(&mut self) {
        const MARKER: &str = "tbp-lint:";
        let mut found = Vec::new();
        let mut diags = Vec::new();
        for tok in &self.tokens {
            if !tok.is_comment() {
                continue;
            }
            // A directive comment is `// tbp-lint: …` — the marker must open
            // the comment content. Mid-sentence mentions (like the docs in
            // this very file) are prose, not directives.
            let text = tok.text(&self.text);
            let content = text.trim_start_matches(['/', '*', '!']).trim_start();
            let Some(directive) = content.strip_prefix(MARKER) else {
                continue;
            };
            let directive = directive.trim();
            let mut fail = |why: String| {
                diags.push(Diagnostic::new(
                    SUPPRESSION_RULE,
                    &self.rel_path,
                    tok.line,
                    tok.col,
                    why.clone(),
                    why,
                ));
            };
            let Some(rest) = directive.strip_prefix("allow(") else {
                fail(format!(
                    "malformed directive `{}` (expected `tbp-lint: allow(<rule>): <justification>`)",
                    directive
                ));
                continue;
            };
            let Some((rule_list, tail)) = rest.split_once(')') else {
                fail("unclosed rule list in suppression directive".to_string());
                continue;
            };
            let rules_named: Vec<String> = rule_list
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            if rules_named.is_empty() {
                fail("suppression directive names no rules".to_string());
                continue;
            }
            if let Some(unknown) = rules_named.iter().find(|r| !rules::is_known_rule(r)) {
                fail(format!("suppression names unknown rule `{unknown}`"));
                continue;
            }
            let justification = tail.trim().strip_prefix(':').map(str::trim).unwrap_or("");
            if justification.is_empty() {
                fail(format!(
                    "suppression of `{}` lacks a justification (write \
                     `tbp-lint: allow({}): <why this is safe>`)",
                    rules_named.join(", "),
                    rules_named.join(", "),
                ));
                continue;
            }
            found.push(Suppression {
                line: tok.line,
                rules: rules_named,
            });
        }
        self.suppressions = found;
        self.suppression_diags = diags;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("test.rs".to_string(), src.to_string())
    }

    #[test]
    fn line_index_distinguishes_comments_from_code() {
        let f = file("// c1\nlet x = 1; // trailing\n");
        assert_eq!(f.lines[1].comments.len(), 1);
        assert!(f.lines[1].first_code.is_none());
        assert_eq!(f.lines[2].comments.len(), 1);
        assert!(f.lines[2].first_code.is_some());
    }

    #[test]
    fn valid_suppression_parses() {
        let f = file("// tbp-lint: allow(no-alloc, determinism): cold path only\nlet x = 1;\n");
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rules, vec!["no-alloc", "determinism"]);
        assert!(f.suppression_diags.is_empty());
        let d = Diagnostic::new("no-alloc", "test.rs", 2, 1, "m", "k");
        assert!(f.is_suppressed(&d));
        let far = Diagnostic::new("no-alloc", "test.rs", 3, 1, "m", "k");
        assert!(!f.is_suppressed(&far));
    }

    #[test]
    fn unjustified_suppression_is_a_finding() {
        let f = file("// tbp-lint: allow(no-alloc)\nlet x = 1;\n");
        assert!(f.suppressions.is_empty());
        assert_eq!(f.suppression_diags.len(), 1);
        assert!(f.suppression_diags[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let f = file("// tbp-lint: allow(no-such-rule): because\n");
        assert!(f.suppressions.is_empty());
        assert!(f.suppression_diags[0].message.contains("no-such-rule"));
    }

    #[test]
    fn directives_inside_strings_are_ignored() {
        let f = file("let s = \"tbp-lint: allow(no-alloc)\";\n");
        assert!(f.suppressions.is_empty());
        assert!(f.suppression_diags.is_empty());
    }

    #[test]
    fn suppression_findings_cannot_be_suppressed() {
        let f = file("// tbp-lint: allow(suppression): nice try\n");
        // `suppression` is not a known rule id for allow-lists.
        assert!(f.suppressions.is_empty());
        assert_eq!(f.suppression_diags.len(), 1);
    }
}
