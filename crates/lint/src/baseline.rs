//! The committed findings baseline.
//!
//! Grandfathered findings live in a plain-text file committed next to
//! `lint.toml`: one line per finding group, `<count>\t<key>`, sorted by key.
//! A fresh scan is compared group-by-group:
//!
//! * a group that is absent from the baseline, or larger than its recorded
//!   count, is **new** — CI fails;
//! * a baseline entry whose group shrank or vanished is **stale** — CI fails
//!   too, so the baseline can only ever be updated deliberately
//!   (`tbp_lint --update-baseline`), never drift silently in either
//!   direction.
//!
//! Keys contain no line numbers (see [`Diagnostic::key`]), so moving code
//! within a file does not churn the baseline.

use std::collections::BTreeMap;
use std::path::Path;

use crate::diag::Diagnostic;

/// Header written at the top of every generated baseline file.
const HEADER: &str = "# tbp-lint baseline: grandfathered findings, one `<count>\\t<key>` per line.\n\
                      # Regenerate deliberately with `tbp_lint --update-baseline`; CI fails when a\n\
                      # fresh scan grows beyond OR shrinks below this file.\n";

/// Parsed baseline: finding-group key to allowed count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Baseline {
    /// Allowed occurrences per finding key.
    pub allowed: BTreeMap<String, u32>,
}

/// Outcome of comparing a fresh scan against the baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDelta {
    /// Findings in groups that exceed their baseline allowance (all
    /// occurrences of the offending group, for actionable output).
    pub fresh: Vec<Diagnostic>,
    /// Baseline entries larger than the fresh scan: `(key, allowed, seen)`.
    pub stale: Vec<(String, u32, u32)>,
}

impl BaselineDelta {
    /// Whether scan and baseline agree exactly.
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty() && self.stale.is_empty()
    }
}

impl Baseline {
    /// Loads a baseline file; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Parses baseline text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut allowed = BTreeMap::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (count, key) = line
                .split_once('\t')
                .ok_or_else(|| format!("line {}: expected `<count>\\t<key>`", idx + 1))?;
            let count: u32 = count
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad count `{count}`", idx + 1))?;
            if count == 0 {
                return Err(format!("line {}: zero-count baseline entry", idx + 1));
            }
            if allowed.insert(key.to_string(), count).is_some() {
                return Err(format!("line {}: duplicate key `{key}`", idx + 1));
            }
        }
        Ok(Baseline { allowed })
    }

    /// Builds the baseline capturing every finding of `diags`.
    pub fn capture(diags: &[Diagnostic]) -> Self {
        let mut allowed = BTreeMap::new();
        for d in diags {
            *allowed.entry(d.key.clone()).or_insert(0) += 1;
        }
        Baseline { allowed }
    }

    /// Renders the baseline file content (sorted, with header).
    pub fn render(&self) -> String {
        let mut out = String::from(HEADER);
        for (key, count) in &self.allowed {
            out.push_str(&format!("{count}\t{key}\n"));
        }
        out
    }

    /// Compares a fresh scan against this baseline.
    pub fn compare(&self, diags: &[Diagnostic]) -> BaselineDelta {
        let seen = Baseline::capture(diags);
        let mut delta = BaselineDelta::default();
        for (key, &count) in &seen.allowed {
            if count > self.allowed.get(key).copied().unwrap_or(0) {
                delta
                    .fresh
                    .extend(diags.iter().filter(|d| &d.key == key).cloned());
            }
        }
        for (key, &allowed) in &self.allowed {
            let seen = seen.allowed.get(key).copied().unwrap_or(0);
            if seen < allowed {
                delta.stale.push((key.clone(), allowed, seen));
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, detail: &str) -> Diagnostic {
        Diagnostic::new(rule, file, 1, 1, detail.to_string(), detail)
    }

    #[test]
    fn capture_render_parse_round_trip() {
        let diags = vec![
            diag("exit-code", "a.rs", "exit outside bin"),
            diag("exit-code", "a.rs", "exit outside bin"),
            diag("no-alloc", "b.rs", "vec!"),
        ];
        let base = Baseline::capture(&diags);
        let parsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(parsed, base);
        assert_eq!(parsed.allowed["exit-code a.rs exit outside bin"], 2);
    }

    #[test]
    fn exact_match_is_clean() {
        let diags = vec![diag("no-alloc", "b.rs", "vec!")];
        assert!(Baseline::capture(&diags).compare(&diags).is_clean());
    }

    #[test]
    fn growth_is_fresh_and_shrink_is_stale() {
        let one = vec![diag("no-alloc", "b.rs", "vec!")];
        let two = vec![
            diag("no-alloc", "b.rs", "vec!"),
            diag("no-alloc", "b.rs", "vec!"),
        ];
        let base = Baseline::capture(&one);
        let grown = base.compare(&two);
        assert_eq!(grown.fresh.len(), 2, "whole group reported on growth");
        assert!(grown.stale.is_empty());
        let shrunk = Baseline::capture(&two).compare(&one);
        assert!(shrunk.fresh.is_empty());
        assert_eq!(shrunk.stale, vec![("no-alloc b.rs vec!".to_string(), 2, 1)]);
    }

    #[test]
    fn unknown_group_is_fresh() {
        let base = Baseline::default();
        let delta = base.compare(&[diag("determinism", "c.rs", "HashMap")]);
        assert_eq!(delta.fresh.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not a baseline\n").is_err());
        assert!(Baseline::parse("0\tkey\n").is_err());
        assert!(Baseline::parse("1\tk\n1\tk\n").is_err());
    }
}
