//! Compare the three policies of the paper on the same workload — as a
//! one-spec sweep executed in parallel by the batch runner.
//!
//! Runs the SDR benchmark under energy balancing, Stop&Go and the thermal
//! balancing policy (threshold 2 °C) on the mobile-embedded package and
//! prints the metrics the paper compares: temperature standard deviation,
//! deadline misses and migration overhead.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use tbp_core::scenario::{Runner, ScenarioSpec, SweepSpec};
use tbp_core::SimError;
use tbp_thermal::package::PackageKind;

fn main() -> Result<(), SimError> {
    let spec = ScenarioSpec::new("policy-comparison")
        .with_package(PackageKind::MobileEmbedded)
        .with_policy("thermal-balancing", 2.0)
        .with_schedule(8.0, 15.0)
        .with_sweep(SweepSpec::default().with_policies([
            "energy-balancing",
            "stop-and-go",
            "thermal-balancing",
        ]));
    let batch = Runner::new().run_spec(&spec)?;

    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>14} {:>12}",
        "policy", "σ [°C]", "spread [°C]", "misses", "migrations/s", "KiB/s"
    );
    for report in &batch.reports {
        let summary = report.summary().expect("simulation outcome");
        println!(
            "{:<20} {:>10.3} {:>12.2} {:>12} {:>14.2} {:>12.1}",
            summary.policy,
            summary.mean_spatial_std_dev(),
            summary.mean_spread(),
            summary.qos.deadline_misses,
            summary.migrations_per_second(),
            summary.migrated_kib_per_second()
        );
    }
    println!(
        "\nExpected ordering (paper): thermal balancing achieves the lowest σ with almost no\n\
         deadline misses; Stop&Go controls temperature but misses many frames; energy\n\
         balancing misses nothing but leaves the thermal gradient untouched."
    );
    Ok(())
}
