//! Stress the policy with fast thermal dynamics (the paper's second package).
//!
//! The high-performance package has one sixth of the mobile package's thermal
//! capacitance, so temperatures move 6× faster and the policy has far less
//! time to react — the regime where the paper concludes that "pure software
//! techniques cannot handle fast temperature variations".
//!
//! ```sh
//! cargo run --release --example high_performance_package
//! ```

use tbp_arch::units::Seconds;
use tbp_core::experiments::{build_sdr_simulation, ExperimentConfig, PolicyKind};
use tbp_core::SimError;
use tbp_thermal::package::PackageKind;

fn main() -> Result<(), SimError> {
    for (label, package) in [
        ("mobile embedded", PackageKind::MobileEmbedded),
        ("high performance", PackageKind::HighPerformance),
    ] {
        let config = ExperimentConfig {
            package,
            policy: PolicyKind::ThermalBalancing,
            threshold: 1.0,
            warmup: Seconds::new(6.0),
            duration: Seconds::new(15.0),
        };
        let mut sim = build_sdr_simulation(&config)?;
        sim.run_for(config.warmup + config.duration)?;
        let summary = sim.summary();
        println!("== {label} package ==");
        println!(
            "  σ = {:.3} °C, spread = {:.2} °C, peak = {:.1} °C",
            summary.mean_spatial_std_dev(),
            summary.mean_spread(),
            summary.thermal.peak_temperature
        );
        println!(
            "  migrations: {:.2}/s ({:.0} KiB/s), deadline misses: {}, time above band: {:.2} s",
            summary.migrations_per_second(),
            summary.migrated_kib_per_second(),
            summary.qos.deadline_misses,
            summary.thermal.time_above_upper_threshold.as_secs()
        );
        // Show a short excerpt of the recorded trace: the temperature of the
        // hottest core over the last second.
        let series = sim.trace().core_series(0);
        if let Some(window) = series.rchunks(10).next() {
            let line: Vec<String> = window.iter().map(|(_, t)| format!("{t:.1}")).collect();
            println!("  core 0 trace tail [°C]: {}", line.join(" "));
        }
        println!();
    }
    println!(
        "With the fast package the policy migrates more often (Figure 11) and tolerates\n\
         larger oscillations than with the mobile package — the same trend the paper reports."
    );
    Ok(())
}
