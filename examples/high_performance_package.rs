//! Stress the policy with fast thermal dynamics (the paper's second package)
//! using a package sweep axis.
//!
//! The high-performance package has one sixth of the mobile package's thermal
//! capacitance, so temperatures move 6× faster and the policy has far less
//! time to react — the regime where the paper concludes that "pure software
//! techniques cannot handle fast temperature variations".
//!
//! ```sh
//! cargo run --release --example high_performance_package
//! ```

use tbp_arch::units::Seconds;
use tbp_core::scenario::{package_label, Runner, ScenarioSpec, SweepSpec};
use tbp_core::SimError;
use tbp_thermal::package::PackageKind;

fn main() -> Result<(), SimError> {
    let spec = ScenarioSpec::new("package-comparison")
        .with_policy("thermal-balancing", 1.0)
        .with_schedule(6.0, 15.0)
        .with_sweep(
            SweepSpec::default()
                .with_packages([PackageKind::MobileEmbedded, PackageKind::HighPerformance]),
        );
    let batch = Runner::new().run_spec(&spec)?;
    for report in &batch.reports {
        let summary = report.summary().expect("simulation outcome");
        let package = report.package.expect("simulation report");
        println!("== {package} package ==");
        println!(
            "  σ = {:.3} °C, spread = {:.2} °C, peak = {:.1} °C",
            summary.mean_spatial_std_dev(),
            summary.mean_spread(),
            summary.thermal.peak_temperature
        );
        println!(
            "  migrations: {:.2}/s ({:.0} KiB/s), deadline misses: {}, time above band: {:.2} s",
            summary.migrations_per_second(),
            summary.migrated_kib_per_second(),
            summary.qos.deadline_misses,
            summary.thermal.time_above_upper_threshold.as_secs()
        );
        println!();
    }

    // A spec also builds a Simulation directly when the run needs live
    // access (traces, stepping): here the hot core's trace tail on the fast
    // package.
    let concrete = ScenarioSpec::new(format!(
        "trace-{}",
        package_label(PackageKind::HighPerformance)
    ))
    .with_package(PackageKind::HighPerformance)
    .with_policy("thermal-balancing", 1.0)
    .with_schedule(6.0, 15.0);
    let mut sim = concrete.build()?;
    sim.run_for(Seconds::new(21.0))?;
    let series = sim.trace().core_series(0);
    if let Some(window) = series.rchunks(10).next() {
        let line: Vec<String> = window.iter().map(|(_, t)| format!("{t:.1}")).collect();
        println!(
            "core 0 trace tail on the fast package [°C]: {}",
            line.join(" ")
        );
    }
    println!(
        "\nWith the fast package the policy migrates more often (Figure 11) and tolerates\n\
         larger oscillations than with the mobile package — the same trend the paper reports."
    );
    Ok(())
}
