//! Quickstart: run the paper's headline experiment in a few lines.
//!
//! Builds the 3-core streaming MPSoC, maps the Software Defined Radio
//! benchmark onto it (Table 2), lets DVFS warm the chip up, enables the
//! thermal balancing policy with a ±3 °C band and prints what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tbp_arch::units::Seconds;
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{SimulationBuilder, SimulationConfig};
use tbp_core::SimError;
use tbp_thermal::package::Package;

fn main() -> Result<(), SimError> {
    // The defaults reproduce the paper's setup: 3 cores, Table 1 power
    // figures, mobile-embedded package, SDR workload, thermal balancing at
    // ±3 °C on top of the per-core DVFS governor.
    let mut sim = SimulationBuilder::new()
        .with_package(Package::mobile_embedded())
        .with_workload(Workload::sdr())
        .with_threshold(3.0)
        .with_config(SimulationConfig {
            warmup: Seconds::new(8.0),
            ..SimulationConfig::paper_default()
        })
        .build()?;

    println!("simulating 8 s of warm-up + 20 s with thermal balancing enabled ...");
    sim.run_for(Seconds::new(28.0))?;

    let temps = sim.core_temperatures();
    println!("\nfinal core temperatures:");
    for (i, t) in temps.iter().enumerate() {
        println!("  core {i}: {t}");
    }

    let summary = sim.summary();
    println!("\n{summary}");
    println!(
        "\nmigration traffic: {:.0} KiB/s ({} migrations over the measured window)",
        summary.migrated_kib_per_second(),
        summary.migration.migrations
    );
    Ok(())
}
