//! Quickstart: run the paper's headline experiment from a declarative spec.
//!
//! A scenario is data: the TOML below describes the 3-core streaming MPSoC,
//! the SDR benchmark (Table 2), the mobile-embedded package and the thermal
//! balancing policy with a ±3 °C band. The runner executes it and returns a
//! structured report. The same text could live in a `.toml` file (see the
//! workspace's `scenarios/` directory).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tbp_core::scenario::{Runner, ScenarioSpec};
use tbp_core::SimError;

const SPEC: &str = r#"
name = "quickstart"
description = "The paper's headline experiment: SDR + thermal balancing at ±3 °C"
package = "MobileEmbedded"

[policy]
name = "thermal-balancing"
threshold = 3.0

[schedule]
warmup = 8.0
duration = 20.0
"#;

fn main() -> Result<(), SimError> {
    let spec = ScenarioSpec::from_toml_str(SPEC)?;
    println!(
        "simulating {} s of warm-up + {} s with thermal balancing enabled ...",
        spec.schedule().warmup.as_secs(),
        spec.schedule().duration.as_secs()
    );
    let batch = Runner::new().run_spec(&spec)?;
    let report = &batch.reports[0];
    let summary = report.summary().expect("simulation outcome");
    println!("\n{summary}");
    println!(
        "\nmigration traffic: {:.0} KiB/s ({} migrations over the measured window)",
        summary.migrated_kib_per_second(),
        summary.migration.migrations
    );
    println!("\nstructured CSV report:\n{}", batch.to_csv());
    Ok(())
}
