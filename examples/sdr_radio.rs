//! End-to-end Software Defined FM Radio: real DSP on generated samples.
//!
//! The co-simulation drives the SDR pipeline with abstract loads, but the
//! library also ships working kernels. This example generates an FM-modulated
//! I/Q stream, pushes it through the same LPF → DEMOD → BPF bank → Σ chain
//! the benchmark models (Figure 6 of the paper) and reports the recovered
//! audio bands.
//!
//! ```sh
//! cargo run --release --example sdr_radio
//! ```

use tbp_streaming::sdr::kernels::{BandPassFilter, FirFilter, FmDemodulator, WeightedMixer};
use tbp_streaming::sdr::signal::FmSignalGenerator;
use tbp_streaming::sdr::SdrBenchmark;

fn rms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|s| s * s).sum::<f64>() / samples.len() as f64).sqrt()
}

fn main() {
    // 1. The radio front end: an FM carrier modulated by a 1 kHz + 3 kHz
    //    message, sampled at 48 kHz.
    let sample_rate = 48_000.0;
    let mut generator =
        FmSignalGenerator::new(sample_rate, 5_000.0, vec![(1_000.0, 0.6), (3_000.0, 0.3)]);
    let seconds = 2.0;
    let iq = generator.block((sample_rate * seconds) as usize);
    println!(
        "generated {} I/Q samples ({seconds} s of FM signal)",
        iq.len()
    );

    // 2. LPF: remove out-of-band energy before demodulation.
    let mut lpf_i = FirFilter::low_pass(0.25, 63);
    let mut lpf_q = FirFilter::low_pass(0.25, 63);
    let filtered: Vec<(f64, f64)> = iq
        .iter()
        .map(|&(i, q)| (lpf_i.process_sample(i), lpf_q.process_sample(q)))
        .collect();

    // 3. DEMOD: quadrature FM discriminator recovers the audio.
    let mut demod = FmDemodulator::new();
    let audio = demod.process_block(&filtered);

    // 4. The parallel band-pass bank (the three BPF tasks of the benchmark).
    let bands = [
        ("low (≈1 kHz)", 1_000.0),
        ("mid (≈3 kHz)", 3_000.0),
        ("high (≈8 kHz)", 8_000.0),
    ];
    let mut outputs = Vec::new();
    for (name, center) in bands {
        let mut bpf = BandPassFilter::new(center / sample_rate, 2.0);
        let out = bpf.process_block(&audio);
        println!("band {name:>12}: RMS = {:.5}", rms(&out[1000..]));
        outputs.push(out);
    }

    // 5. Σ: the consumer mixes the equalised bands with per-band gains.
    let mixer = WeightedMixer::new(vec![1.0, 0.8, 0.4]);
    let mixed = mixer.mix(&outputs);
    println!(
        "mixed output: {} samples, RMS = {:.5}",
        mixed.len(),
        rms(&mixed[1000..])
    );

    // 6. The same application as the co-simulation sees it (Table 2 loads).
    let benchmark = SdrBenchmark::paper_default();
    println!("\nTable 2 task set used by the co-simulation:");
    for entry in benchmark.mapping() {
        println!(
            "  {:6} on core {} @ {:.0} MHz — load {:.1} % (FSE {:.3})",
            entry.name,
            entry.core.index() + 1,
            entry.core_frequency_mhz,
            entry.load_percent,
            entry.fse_load()
        );
    }
    println!(
        "total full-speed-equivalent load: {:.2} cores",
        benchmark.total_fse_load()
    );
}
