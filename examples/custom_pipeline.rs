//! Build a custom streaming application, platform and *policy*, beyond the
//! paper's SDR.
//!
//! Shows how a downstream user targets their own workload: a 4-stage video
//! analytics pipeline on a 4-core platform of the lower-power ARM11-class
//! cores (Conf2 of Table 1), balanced by a third-party policy that is
//! registered in a [`PolicyRegistry`] and resolved by name — no core code is
//! touched.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use tbp_arch::core::CoreId;
use tbp_arch::platform::PlatformConfig;
use tbp_arch::units::{Bytes, Seconds};
use tbp_core::policy::{Policy, PolicyAction, PolicyInput};
use tbp_core::scenario::{PolicyRegistry, PolicySpec};
use tbp_core::sim::{Simulation, SimulationConfig};
use tbp_core::SimError;
use tbp_os::mpos::Mpos;
use tbp_os::task::TaskDescriptor;
use tbp_streaming::graph::{PipelineGraph, StageDescriptor};
use tbp_streaming::pipeline::{PipelineConfig, PipelineRuntime};
use tbp_thermal::package::Package;
use tbp_thermal::{SensorBank, ThermalModel};

/// A deliberately simple third-party policy: when the spread between the
/// hottest and coolest core exceeds the band, migrate the hottest core's
/// lightest migratable task to the coolest core.
struct SpreadCapPolicy {
    band: f64,
}

impl Policy for SpreadCapPolicy {
    fn name(&self) -> &str {
        "spread-cap"
    }

    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction> {
        if input.migrations_in_flight > 0 || input.temperature_spread() <= self.band {
            return Vec::new();
        }
        let (Some(hot), Some(cool)) = (input.hottest_core(), input.coolest_core()) else {
            return Vec::new();
        };
        hot.tasks
            .iter()
            .filter(|t| t.migratable && !t.migrating)
            .min_by(|a, b| a.fse_load.total_cmp(&b.fse_load))
            .map(|t| {
                vec![PolicyAction::Migrate {
                    task: t.id,
                    to: cool.id,
                }]
            })
            .unwrap_or_default()
    }
}

fn main() -> Result<(), SimError> {
    // 1. Register the third-party policy; "spread-cap" now resolves next to
    //    the four built-ins wherever this registry is used.
    let mut registry = PolicyRegistry::with_builtins();
    registry.register("spread-cap", |spec| {
        Ok(Box::new(SpreadCapPolicy {
            band: spec.threshold_or_default(),
        }))
    });

    // 2. A 4-core platform built from the lower-power ARM11-class cores.
    let platform_config = PlatformConfig::paper_arm11().with_cores(4);
    let platform = tbp_arch::platform::MpsocPlatform::new(platform_config.clone())?;
    let thermal = ThermalModel::new(platform.floorplan(), Package::high_performance())?;
    let sensors = SensorBank::paper_default(platform.num_cores());

    // 3. The OS layer with a video-analytics task set: capture → detect →
    //    track → encode, plus a background telemetry task pinned to core 3.
    let mut os = Mpos::new(platform.num_cores(), platform_config.dvfs.clone());
    let capture = os.spawn(
        TaskDescriptor::new("capture", 0.18, Bytes::from_kib(128)),
        CoreId(0),
    )?;
    let detect = os.spawn(
        TaskDescriptor::new("detect", 0.55, Bytes::from_kib(256)),
        CoreId(1),
    )?;
    let track = os.spawn(
        TaskDescriptor::new("track", 0.35, Bytes::from_kib(128)),
        CoreId(2),
    )?;
    let encode = os.spawn(
        TaskDescriptor::new("encode", 0.30, Bytes::from_kib(192)),
        CoreId(3),
    )?;
    let _telemetry = os.spawn(
        TaskDescriptor::new("telemetry", 0.05, Bytes::from_kib(64)).pinned(),
        CoreId(3),
    )?;

    // 4. The pipeline graph: 30 frames/s, deep queues for the heavy detector.
    let frame_period = Seconds::from_millis(33.0);
    let cycles = |fse: f64| fse * 533e6 * frame_period.as_secs();
    let mut graph = PipelineGraph::new();
    let s_capture = graph.add_stage(StageDescriptor::new("capture", capture, cycles(0.18)))?;
    let s_detect = graph.add_stage(StageDescriptor::new("detect", detect, cycles(0.55)))?;
    let s_track = graph.add_stage(StageDescriptor::new("track", track, cycles(0.35)))?;
    let s_encode = graph.add_stage(StageDescriptor::new("encode", encode, cycles(0.30)))?;
    graph.connect(s_capture, s_detect)?;
    graph.connect(s_detect, s_track)?;
    graph.connect(s_track, s_encode)?;
    let pipeline = PipelineRuntime::new(
        graph,
        PipelineConfig {
            frame_period,
            queue_capacity: 8,
            prefill: 4,
        },
    )?;

    // 5. The policy, by name, at a tight ±1.5 °C band.
    let policy = registry.instantiate(&PolicySpec::named("spread-cap").with_threshold(1.5))?;

    // 6. Assemble and run.
    let mut sim = Simulation::from_parts(
        platform,
        thermal,
        sensors,
        os,
        Some(pipeline),
        policy,
        SimulationConfig {
            warmup: Seconds::new(4.0),
            metrics_threshold: 1.5,
            ..SimulationConfig::paper_default()
        },
    );
    sim.run_for(Seconds::new(20.0))?;

    let summary = sim.summary();
    println!("{summary}");
    println!("\nfinal placement of the migratable stages:");
    for task in sim.os().tasks() {
        println!(
            "  {:<10} -> core {} ({} migrations)",
            task.name(),
            task.core().index(),
            task.migrations()
        );
    }
    Ok(())
}
