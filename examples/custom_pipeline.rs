//! Build a custom streaming application, platform and *policy*, beyond the
//! paper's SDR.
//!
//! Shows how a downstream user targets their own workload without touching
//! core code, on both extension axes:
//!
//! * the **workload** comes from the `video-analytics` generator resolved by
//!   name through a [`WorkloadRegistry`] — the same registry that powers the
//!   `VideoAnalytics` scenario kind — parameterised with per-stage loads for
//!   a 4-core platform of the lower-power ARM11-class cores (Conf2 of
//!   Table 1);
//! * the **policy** is a third-party `SpreadCapPolicy` registered in a
//!   [`PolicyRegistry`] and resolved by name.
//!
//! ```sh
//! cargo run --release --example custom_pipeline
//! ```

use std::sync::Arc;

use tbp_arch::platform::PlatformConfig;
use tbp_core::policy::{Policy, PolicyAction, PolicyInput};
use tbp_core::scenario::PolicyRegistry;
use tbp_core::sim::{builder::Workload, SimulationBuilder};
use tbp_core::SimError;
use tbp_streaming::workloads::{WorkloadParams, WorkloadRegistry};
use tbp_thermal::package::Package;

/// A deliberately simple third-party policy: when the spread between the
/// hottest and coolest core exceeds the band, migrate the hottest core's
/// lightest migratable task to the coolest core.
struct SpreadCapPolicy {
    band: f64,
}

impl Policy for SpreadCapPolicy {
    fn name(&self) -> &str {
        "spread-cap"
    }

    fn decide(&mut self, input: &PolicyInput) -> Vec<PolicyAction> {
        if input.migrations_in_flight > 0 || input.temperature_spread() <= self.band {
            return Vec::new();
        }
        let (Some(hot), Some(cool)) = (input.hottest_core(), input.coolest_core()) else {
            return Vec::new();
        };
        hot.tasks
            .iter()
            .filter(|t| t.migratable && !t.migrating)
            .min_by(|a, b| a.fse_load.total_cmp(&b.fse_load))
            .map(|t| {
                vec![PolicyAction::Migrate {
                    task: t.id,
                    to: cool.id,
                }]
            })
            .unwrap_or_default()
    }
}

fn main() -> Result<(), SimError> {
    // 1. Register the third-party policy; "spread-cap" now resolves next to
    //    the four built-ins wherever this registry is used.
    let mut policies = PolicyRegistry::with_builtins();
    policies.register("spread-cap", |spec| {
        Ok(Box::new(SpreadCapPolicy {
            band: spec.threshold_or_default(),
        }))
    });

    // 2. The workload registry: "video-analytics" resolves to the built-in
    //    generator (a custom `WorkloadGenerator` would register here the
    //    same way the policy did above).
    let workloads = Arc::new(WorkloadRegistry::with_builtins());

    // 3. Parameterise the generator: one 30 fps camera chain — decode →
    //    detect → track → sink — with a heavy detector, a pinned background
    //    telemetry task, and deep queues. The generator builds the tasks,
    //    the stage graph and the initial placement; nothing is hand-rolled
    //    here.
    let mut params = WorkloadParams {
        seed: 0xF1DE0,
        ..WorkloadParams::default()
    };
    params.video.decode_load = Some(0.18);
    params.video.detect_load = Some(0.55);
    params.video.track_load = Some(0.35);
    params.video.sink_load = Some(0.30);
    params.queue_capacity = Some(8);

    // 4. Assemble: a 4-core platform of the lower-power ARM11-class cores,
    //    the high-performance package, the registry-resolved workload and
    //    the third-party policy at a tight ±1.5 °C band.
    let mut sim = SimulationBuilder::new()
        .with_platform(PlatformConfig::paper_arm11().with_cores(4))
        .with_package(Package::high_performance())
        .with_workload(Workload::Generated {
            generator: "video-analytics".into(),
            params: Box::new(params),
        })
        .with_workload_registry(workloads)
        .with_registry(Arc::new(policies))
        .with_policy_name("spread-cap")
        .with_config(tbp_core::sim::SimulationConfig {
            warmup: tbp_arch::units::Seconds::new(4.0),
            ..tbp_core::sim::SimulationConfig::paper_default()
        })
        .with_threshold(1.5)
        .build()?;
    sim.run_for(tbp_arch::units::Seconds::new(20.0))?;

    let summary = sim.summary();
    println!("{summary}");
    println!("\nfinal placement of the migratable stages:");
    for task in sim.os().tasks() {
        println!(
            "  {:<10} -> core {} ({} migrations)",
            task.name(),
            task.core().index(),
            task.migrations()
        );
    }
    Ok(())
}
