//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of the parallel-iterator API this workspace
//! uses — `vec.into_par_iter().map(f).collect()` — on top of
//! `std::thread::scope`. Items are split into contiguous chunks, one per
//! worker thread, and results are reassembled in input order, so a parallel
//! map is observably identical to its sequential counterpart.

use std::num::NonZeroUsize;

pub mod prelude {
    //! The traits needed to call `.into_par_iter()`.
    pub use crate::IntoParallelIterator;
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Conversion into a parallel iterator (the entry point of the API).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A pending parallel iteration over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f`, to be executed in parallel on `collect`.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items without a map (identity pipeline).
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A parallel map pipeline; `collect` executes it.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Executes the map on scoped worker threads and collects the results in
    /// input order.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        if n == 0 {
            return std::iter::empty().collect();
        }
        let threads = current_num_threads().min(n).max(1);
        if threads == 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut items = items;
        while !items.is_empty() {
            let take = chunk_size.min(items.len());
            let rest = items.split_off(take);
            chunks.push(items);
            items = rest;
        }
        let f = &f;
        let mut results: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel map worker panicked"))
                .collect()
        });
        results.drain(..).flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        let actual: Vec<u64> = input.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = vec![41u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn borrows_environment() {
        let offset = 10u64;
        let out: Vec<u64> = (0u64..100)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|x| x + offset)
            .collect();
        assert_eq!(out[99], 109);
    }
}
