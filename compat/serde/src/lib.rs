//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in an environment without access to a crates.io
//! registry, so the external `serde` dependency is replaced by this small,
//! self-contained serialization framework exposing the same import surface
//! (`use serde::{Serialize, Deserialize};` for both the traits and the derive
//! macros). Instead of serde's visitor-based zero-copy data model it uses a
//! simple owned [`Value`] tree:
//!
//! * [`Serialize`] converts a type into a [`Value`];
//! * [`Deserialize`] reconstructs a type from a [`Value`];
//! * the companion `serde_json` and `toml` crates render and parse `Value`s.
//!
//! Conventions match serde's defaults where the workspace relies on them:
//! structs become maps keyed by field name, newtype structs are transparent,
//! tuple structs become sequences, unit enum variants become strings and
//! payload-carrying variants become single-entry maps (external tagging).
//! `Option::None` fields are *omitted* from struct maps (TOML has no null),
//! and a missing key deserializes to `None`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// The serialized form of any value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`Option::None`, unit structs).
    Unit,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value does not fit `i64`).
    UInt(u64),
    /// A floating-point number (may be infinite or NaN).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted back into a type.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the serialization value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;

    /// The value to use when a struct field is absent entirely
    /// (`Some(None)` for `Option`, `None` — i.e. an error — otherwise).
    #[doc(hidden)]
    fn absent() -> Option<Self> {
        None
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let wide: u64 = match value {
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| Error::custom("negative integer for unsigned field"))?,
                    Value::UInt(u) => *u,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(value)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Unit,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Unit => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected tuple sequence, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )+};
}

impl_tuple!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Support functions used by the generated derive code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Extracts the entries of a map value.
    pub fn expect_map<'a>(value: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
        match value {
            Value::Map(entries) => Ok(entries),
            other => Err(Error::custom(format!(
                "{ty}: expected map, found {}",
                other.kind()
            ))),
        }
    }

    /// Extracts a sequence of exactly `len` elements.
    pub fn expect_seq<'a>(value: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
        match value {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => Err(Error::custom(format!(
                "{ty}: expected {len} elements, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "{ty}: expected sequence, found {}",
                other.kind()
            ))),
        }
    }

    /// Deserializes one named struct field, tolerating absence for types that
    /// support it (`Option`).
    pub fn field<T: Deserialize>(
        entries: &[(String, Value)],
        key: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match entries.iter().find(|(k, _)| k == key) {
            Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
            None => {
                T::absent().ok_or_else(|| Error::custom(format!("{ty}: missing field `{key}`")))
            }
        }
    }

    /// Deserializes one positional element of a tuple struct or variant.
    pub fn elem<T: Deserialize>(items: &[Value], index: usize, ty: &str) -> Result<T, Error> {
        T::from_value(&items[index]).map_err(|e| Error::custom(format!("{ty}.{index}: {e}")))
    }

    /// Pushes a field into a struct map, omitting `None`s (serialized as
    /// [`Value::Unit`]): TOML has no null, and a missing key round-trips back
    /// to `None`.
    pub fn push_field(entries: &mut Vec<(String, Value)>, key: &str, value: Value) {
        if !matches!(value, Value::Unit) {
            entries.push((key.to_string(), value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Unit).unwrap(), None::<u8>);
        assert_eq!(
            <(f64, f64)>::from_value(&(1.0, 2.0).to_value()).unwrap(),
            (1.0, 2.0)
        );
    }

    #[test]
    fn numeric_coercions_and_errors() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(u64::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(u64::from_value(&Value::Int(-1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(String::from_value(&Value::Int(1)).is_err());
    }

    #[test]
    fn absent_fields() {
        let entries: Vec<(String, Value)> = vec![("a".into(), Value::Int(1))];
        let a: i64 = __private::field(&entries, "a", "T").unwrap();
        assert_eq!(a, 1);
        let b: Option<i64> = __private::field(&entries, "b", "T").unwrap();
        assert_eq!(b, None);
        assert!(__private::field::<i64>(&entries, "b", "T").is_err());
    }
}
