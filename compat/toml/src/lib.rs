//! Offline stand-in for the `toml` crate.
//!
//! Implements the subset of TOML this workspace's scenario files use, over
//! the [`serde`] stand-in's value tree:
//!
//! * tables `[a.b]` and arrays of tables `[[a.b]]`;
//! * bare and quoted keys, dotted keys in assignments;
//! * strings (basic and literal), integers (with `_` separators), floats
//!   (including `inf`/`-inf`/`nan`), booleans;
//! * arrays (multi-line allowed) and inline tables `{ k = v }`;
//! * `#` comments.
//!
//! Serialization emits scalars first, then sub-tables, then arrays of
//! tables, so any value tree whose maps-in-arrays contain only maps is
//! representable. `Value::Unit` entries (i.e. `None` options) are omitted.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while parsing or rendering TOML.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(value: serde::Error) -> Self {
        Error::new(value.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a value to a TOML document.
///
/// # Errors
///
/// Returns [`Error`] when the value does not serialize to a map (TOML
/// documents are tables) or contains a shape TOML cannot express.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let value = value.to_value();
    let Value::Map(entries) = &value else {
        return Err(Error::new("top-level TOML value must be a table"));
    };
    let mut out = String::new();
    write_table(&mut out, &[], entries)?;
    Ok(out)
}

/// Alias for [`to_string`] (the real crate's pretty output differs only in
/// string style).
///
/// # Errors
///
/// See [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    to_string(value)
}

fn is_inline(value: &Value) -> bool {
    match value {
        Value::Map(_) => false,
        Value::Seq(items) => !items.iter().all(|i| matches!(i, Value::Map(_))) || items.is_empty(),
        _ => true,
    }
}

fn write_table(
    out: &mut String,
    path: &[String],
    entries: &[(String, Value)],
) -> Result<(), Error> {
    for (key, value) in entries {
        if matches!(value, Value::Unit) {
            continue;
        }
        if is_inline(value) {
            out.push_str(&format_key(key));
            out.push_str(" = ");
            write_inline(out, value)?;
            out.push('\n');
        }
    }
    for (key, value) in entries {
        match value {
            Value::Map(inner) => {
                let mut child = path.to_vec();
                child.push(key.clone());
                out.push('\n');
                out.push('[');
                out.push_str(&join_path(&child));
                out.push_str("]\n");
                write_table(out, &child, inner)?;
            }
            Value::Seq(items) if !is_inline(value) => {
                let mut child = path.to_vec();
                child.push(key.clone());
                for item in items {
                    let Value::Map(inner) = item else {
                        return Err(Error::new("mixed array of tables"));
                    };
                    out.push('\n');
                    out.push_str("[[");
                    out.push_str(&join_path(&child));
                    out.push_str("]]\n");
                    write_table(out, &child, inner)?;
                }
            }
            _ => {}
        }
    }
    Ok(())
}

fn write_inline(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Unit => return Err(Error::new("TOML cannot express null values")),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_inline(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            let mut first = true;
            for (key, item) in entries {
                if matches!(item, Value::Unit) {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format_key(key));
                out.push_str(" = ");
                write_inline(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn format_float(f: f64) -> String {
    if f.is_nan() {
        "nan".to_string()
    } else if f == f64::INFINITY {
        "inf".to_string()
    } else if f == f64::NEG_INFINITY {
        "-inf".to_string()
    } else {
        let repr = format!("{f:?}");
        // TOML floats need a `.` or exponent; `{:?}` guarantees one.
        repr
    }
}

fn is_bare_key(key: &str) -> bool {
    !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn format_key(key: &str) -> String {
    if is_bare_key(key) {
        key.to_string()
    } else {
        let mut out = String::new();
        write_string(&mut out, key);
        out
    }
}

fn join_path(path: &[String]) -> String {
    path.iter()
        .map(|p| format_key(p))
        .collect::<Vec<_>>()
        .join(".")
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04X}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a type from a TOML document.
///
/// # Errors
///
/// Returns [`Error`] on malformed TOML or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_document(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses a TOML document into the generic value tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed TOML.
pub fn parse_document(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    let mut root = Value::Map(Vec::new());
    // Path of the table header currently in effect.
    let mut header: Vec<String> = Vec::new();
    loop {
        parser.skip_trivia();
        if parser.at_end() {
            break;
        }
        if parser.peek() == Some('[') {
            parser.bump();
            let array = parser.peek() == Some('[');
            if array {
                parser.bump();
            }
            let path = parser.parse_dotted_key()?;
            parser.expect(']')?;
            if array {
                parser.expect(']')?;
                ensure_array_element(&mut root, &path)?;
            } else {
                ensure_table(&mut root, &path)?;
            }
            header = path;
            parser.expect_line_end()?;
        } else {
            let mut path = header.clone();
            path.extend(parser.parse_dotted_key()?);
            parser.skip_spaces();
            parser.expect('=')?;
            let value = parser.parse_value()?;
            let (key, parents) = path.split_last().expect("dotted key is never empty");
            let table = ensure_table(&mut root, parents)?;
            let Value::Map(entries) = table else {
                unreachable!("ensure_table returns maps")
            };
            if entries.iter().any(|(k, _)| k == key) {
                return Err(Error::new(format!("duplicate key `{key}`")));
            }
            entries.push((key.clone(), value));
            parser.expect_line_end()?;
        }
    }
    Ok(root)
}

/// Walks (creating as needed) the table at `path`, descending into the last
/// element of any array of tables along the way.
fn ensure_table<'a>(root: &'a mut Value, path: &[String]) -> Result<&'a mut Value, Error> {
    let mut current = root;
    for segment in path {
        // Descend through arrays of tables to their last element.
        let entries = match current {
            Value::Map(entries) => entries,
            _ => return Err(Error::new(format!("key `{segment}` is not a table"))),
        };
        let index = match entries.iter().position(|(k, _)| k == segment) {
            Some(i) => i,
            None => {
                entries.push((segment.clone(), Value::Map(Vec::new())));
                entries.len() - 1
            }
        };
        current = &mut entries[index].1;
        if let Value::Seq(items) = current {
            current = items
                .last_mut()
                .ok_or_else(|| Error::new(format!("array of tables `{segment}` is empty")))?;
        }
        if !matches!(current, Value::Map(_)) {
            return Err(Error::new(format!("key `{segment}` is not a table")));
        }
    }
    Ok(current)
}

/// Appends a fresh table to the array of tables at `path`, creating it if
/// needed.
fn ensure_array_element(root: &mut Value, path: &[String]) -> Result<(), Error> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| Error::new("empty table header"))?;
    let parent = ensure_table(root, parents)?;
    let Value::Map(entries) = parent else {
        unreachable!("ensure_table returns maps")
    };
    match entries.iter_mut().find(|(k, _)| k == last) {
        Some((_, Value::Seq(items))) => {
            items.push(Value::Map(Vec::new()));
            Ok(())
        }
        Some(_) => Err(Error::new(format!(
            "key `{last}` is not an array of tables"
        ))),
        None => {
            entries.push((last.clone(), Value::Seq(vec![Value::Map(Vec::new())])));
            Ok(())
        }
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn expect(&mut self, expected: char) -> Result<(), Error> {
        self.skip_spaces();
        match self.bump() {
            Some(c) if c == expected => Ok(()),
            other => Err(Error::new(format!(
                "expected `{expected}`, found {other:?}"
            ))),
        }
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_spaces(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, newlines and comments.
    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(' ') | Some('\t') | Some('\n') | Some('\r') => {
                    self.pos += 1;
                }
                Some('#') => {
                    while !matches!(self.peek(), None | Some('\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    /// After a value or header: only spaces and a comment may precede the
    /// end of the line.
    fn expect_line_end(&mut self) -> Result<(), Error> {
        self.skip_spaces();
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.pos += 1;
            }
        }
        match self.peek() {
            None => Ok(()),
            Some('\n') => {
                self.pos += 1;
                Ok(())
            }
            Some('\r') => {
                self.pos += 1;
                if self.peek() == Some('\n') {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(c) => Err(Error::new(format!("unexpected `{c}` before end of line"))),
        }
    }

    fn parse_dotted_key(&mut self) -> Result<Vec<String>, Error> {
        let mut parts = vec![self.parse_key_segment()?];
        loop {
            self.skip_spaces();
            if self.peek() == Some('.') {
                self.bump();
                parts.push(self.parse_key_segment()?);
            } else {
                return Ok(parts);
            }
        }
    }

    fn parse_key_segment(&mut self) -> Result<String, Error> {
        self.skip_spaces();
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some('\'') => self.parse_literal_string(),
            Some(c) if c.is_ascii_alphanumeric() || c == '_' || c == '-' => {
                let mut out = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                        out.push(c);
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(out)
            }
            other => Err(Error::new(format!("expected key, found {other:?}"))),
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_spaces();
        match self.peek() {
            None => Err(Error::new("unexpected end of input in value position")),
            Some('"') => Ok(Value::Str(self.parse_basic_string()?)),
            Some('\'') => Ok(Value::Str(self.parse_literal_string()?)),
            Some('[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(']') {
                        self.bump();
                        return Ok(Value::Seq(items));
                    }
                    items.push(self.parse_value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(',') => {
                            self.bump();
                        }
                        Some(']') => {
                            self.bump();
                            return Ok(Value::Seq(items));
                        }
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` in array, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some('{') => {
                self.bump();
                let mut entries: Vec<(String, Value)> = Vec::new();
                self.skip_spaces();
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok(Value::Map(entries));
                }
                loop {
                    let path = self.parse_dotted_key()?;
                    self.skip_spaces();
                    self.expect('=')?;
                    let value = self.parse_value()?;
                    insert_dotted(&mut entries, &path, value)?;
                    self.skip_spaces();
                    match self.bump() {
                        Some(',') => self.skip_spaces(),
                        Some('}') => return Ok(Value::Map(entries)),
                        other => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` in inline table, found {other:?}"
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_scalar(),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, Error> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') | Some('U') => {
                        let len = if self.chars[self.pos - 1] == 'u' {
                            4
                        } else {
                            8
                        };
                        let mut code = 0u32;
                        for _ in 0..len {
                            let c = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or_else(|| Error::new("invalid unicode escape"))?;
                            code = code * 16 + c;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode code point"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape {other:?}")));
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_literal_string(&mut self) -> Result<String, Error> {
        self.expect('\'')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::new("unterminated literal string")),
                Some('\'') => return Ok(out),
                Some(c) => out.push(c),
            }
        }
    }

    fn parse_scalar(&mut self) -> Result<Value, Error> {
        let mut token = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '+' | '-' | '_' | '.' | ':') {
                token.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        match token.as_str() {
            "" => Err(Error::new("empty value")),
            "true" => Ok(Value::Bool(true)),
            "false" => Ok(Value::Bool(false)),
            "inf" | "+inf" => Ok(Value::Float(f64::INFINITY)),
            "-inf" => Ok(Value::Float(f64::NEG_INFINITY)),
            "nan" | "+nan" | "-nan" => Ok(Value::Float(f64::NAN)),
            _ => {
                let cleaned: String = token.chars().filter(|&c| c != '_').collect();
                if cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E') {
                    cleaned
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| Error::new(format!("invalid float `{token}`")))
                } else if let Ok(i) = cleaned.parse::<i64>() {
                    Ok(Value::Int(i))
                } else if let Ok(u) = cleaned.parse::<u64>() {
                    Ok(Value::UInt(u))
                } else {
                    Err(Error::new(format!("unsupported value `{token}`")))
                }
            }
        }
    }
}

fn insert_dotted(
    entries: &mut Vec<(String, Value)>,
    path: &[String],
    value: Value,
) -> Result<(), Error> {
    let (key, rest) = path.split_first().expect("dotted key is never empty");
    if rest.is_empty() {
        if entries.iter().any(|(k, _)| k == key) {
            return Err(Error::new(format!("duplicate key `{key}`")));
        }
        entries.push((key.clone(), value));
        return Ok(());
    }
    let index = match entries.iter().position(|(k, _)| k == key) {
        Some(i) => i,
        None => {
            entries.push((key.clone(), Value::Map(Vec::new())));
            entries.len() - 1
        }
    };
    match &mut entries[index].1 {
        Value::Map(inner) => insert_dotted(inner, rest, value),
        _ => Err(Error::new(format!("key `{key}` is not a table"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = r#"
# top comment
name = "fig7"
count = 3
ratio = 2.5
flag = true
values = [1.0, 2.0, 3.0] # trailing comment
words = ["a", "b"]

[schedule]
warmup = 8.0
duration = 20.0

[[sweep]]
axis = "threshold"

[[sweep]]
axis = "policy"
nested = { kind = "x", n = 2 }
"#;
        let value = parse_document(doc).unwrap();
        assert_eq!(value.get("name"), Some(&Value::Str("fig7".into())));
        assert_eq!(value.get("count"), Some(&Value::Int(3)));
        assert_eq!(value.get("ratio"), Some(&Value::Float(2.5)));
        assert_eq!(value.get("flag"), Some(&Value::Bool(true)));
        assert_eq!(
            value.get("values"),
            Some(&Value::Seq(vec![
                Value::Float(1.0),
                Value::Float(2.0),
                Value::Float(3.0)
            ]))
        );
        let schedule = value.get("schedule").unwrap();
        assert_eq!(schedule.get("warmup"), Some(&Value::Float(8.0)));
        let Some(Value::Seq(sweep)) = value.get("sweep") else {
            panic!("sweep should be an array of tables");
        };
        assert_eq!(sweep.len(), 2);
        assert_eq!(
            sweep[1].get("nested").unwrap().get("kind"),
            Some(&Value::Str("x".into()))
        );
    }

    #[test]
    fn round_trips_nested_value() {
        let value = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("f".into(), Value::Float(-0.25)),
            ("s".into(), Value::Str("hi \"there\"".into())),
            (
                "t".into(),
                Value::Map(vec![
                    ("x".into(), Value::Float(f64::INFINITY)),
                    ("y".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
                ]),
            ),
            (
                "arr".into(),
                Value::Seq(vec![
                    Value::Map(vec![("k".into(), Value::Int(1))]),
                    Value::Map(vec![("k".into(), Value::Int(2))]),
                ]),
            ),
        ]);
        let mut out = String::new();
        write_table(
            &mut out,
            &[],
            match &value {
                Value::Map(e) => e,
                _ => unreachable!(),
            },
        )
        .unwrap();
        let parsed = parse_document(&out).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn multiline_arrays_parse() {
        let doc = "xs = [\n  1,\n  2, # comment\n  3,\n]\n";
        let value = parse_document(doc).unwrap();
        assert_eq!(
            value.get("xs"),
            Some(&Value::Seq(vec![
                Value::Int(1),
                Value::Int(2),
                Value::Int(3)
            ]))
        );
    }

    #[test]
    fn rejects_duplicates_and_garbage() {
        assert!(parse_document("a = 1\na = 2\n").is_err());
        assert!(parse_document("a = \n").is_err());
        assert!(parse_document("a = 1 b = 2\n").is_err());
    }
}
