//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses the [`serde::Value`] tree of the offline serde
//! stand-in. The emitted text is standard JSON except for three non-finite
//! number tokens (`Infinity`, `-Infinity`, `NaN`), which this crate both
//! emits and accepts so that metric reports containing empty running
//! statistics (whose min/max are ±∞) still round-trip.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while parsing or converting JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(value: serde::Error) -> Self {
        Error::new(value.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value model of the stand-in; the `Result` mirrors the
/// real `serde_json` signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the value model of the stand-in.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into the generic value tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses a type from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_str(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into the generic value tree.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON.
pub fn parse_value_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Unit => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&format_float(*f)),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn format_float(f: f64) -> String {
    if f.is_nan() {
        "NaN".to_string()
    } else if f == f64::INFINITY {
        "Infinity".to_string()
    } else if f == f64::NEG_INFINITY {
        "-Infinity".to_string()
    } else {
        // `{:?}` prints the shortest representation that round-trips and
        // always marks the value as a float ("8.0", "1e-10").
        format!("{f:?}")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected `:` at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(_) => parse_scalar(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_scalar(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    while *pos < bytes.len()
        && !matches!(
            bytes[*pos],
            b',' | b']' | b'}' | b' ' | b'\t' | b'\n' | b'\r' | b':'
        )
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| Error::new("invalid UTF-8 in scalar"))?;
    match token {
        "null" => Ok(Value::Unit),
        "true" => Ok(Value::Bool(true)),
        "false" => Ok(Value::Bool(false)),
        "NaN" => Ok(Value::Float(f64::NAN)),
        "Infinity" => Ok(Value::Float(f64::INFINITY)),
        "-Infinity" => Ok(Value::Float(f64::NEG_INFINITY)),
        _ => {
            if token.contains('.') || token.contains('e') || token.contains('E') {
                token
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{token}`")))
            } else if let Ok(i) = token.parse::<i64>() {
                Ok(Value::Int(i))
            } else if let Ok(u) = token.parse::<u64>() {
                Ok(Value::UInt(u))
            } else {
                Err(Error::new(format!("invalid token `{token}`")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let value = Value::Map(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Float(2.5)),
            ("c".into(), Value::Seq(vec![Value::Bool(true), Value::Unit])),
            ("d".into(), Value::Str("x \"y\"\nz".into())),
            ("inf".into(), Value::Float(f64::INFINITY)),
            ("ninf".into(), Value::Float(f64::NEG_INFINITY)),
        ]);
        let mut compact = String::new();
        write_value(&mut compact, &value, None, 0);
        assert_eq!(parse_value_str(&compact).unwrap(), value);
        let mut pretty = String::new();
        write_value(&mut pretty, &value, Some(2), 0);
        assert_eq!(parse_value_str(&pretty).unwrap(), value);
    }

    #[test]
    fn nan_round_trips_as_nan() {
        let mut out = String::new();
        write_value(&mut out, &Value::Float(f64::NAN), None, 0);
        assert_eq!(out, "NaN");
        match parse_value_str("NaN").unwrap() {
            Value::Float(f) => assert!(f.is_nan()),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn typed_round_trip() {
        let v: Vec<f64> = from_str(&to_string(&vec![1.0f64, 2.5]).unwrap()).unwrap();
        assert_eq!(v, vec![1.0, 2.5]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value_str("{").is_err());
        assert!(parse_value_str("[1,]").is_err());
        assert!(parse_value_str("1 2").is_err());
        assert!(parse_value_str("wibble").is_err());
    }
}
