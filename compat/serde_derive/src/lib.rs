//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! non-generic structs and enums by parsing the raw token stream (the real
//! `syn`/`quote` crates are unavailable offline). Only the shapes this
//! workspace uses are supported:
//!
//! * structs with named fields → maps keyed by field name;
//! * tuple structs: arity 1 is transparent (newtype), arity ≥ 2 a sequence;
//! * unit structs → unit;
//! * enums with unit, newtype, tuple and struct variants → externally tagged
//!   (`"Variant"` or `{ "Variant": payload }`), matching serde's default.
//!
//! Field/variant attributes (`#[serde(...)]`) and generics are not supported
//! and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a struct's or variant's fields.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives the `Serialize` trait of the offline serde stand-in.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the `Deserialize` trait of the offline serde stand-in.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(parsed) => parsed,
        Err(message) => {
            return format!("compile_error!({message:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&parsed)
    } else {
        gen_deserialize(&parsed)
    };
    code.parse().unwrap()
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let item_kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde stand-in derive: expected type name".to_string()),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stand-in derive does not support generic type `{name}`"
        ));
    }
    match item_kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                kind: Kind::Struct(Fields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Input {
                name,
                kind: Kind::Struct(Fields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))),
            }),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Input {
                name,
                kind: Kind::Struct(Fields::Unit),
            }),
            _ => Err(format!("serde stand-in derive: malformed struct `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input {
                name,
                kind: Kind::Enum(parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?),
            }),
            _ => Err(format!("serde stand-in derive: malformed enum `{name}`")),
        },
        other => Err(format!(
            "serde stand-in derive: unsupported item kind `{other}`"
        )),
    }
}

/// Skips outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Advances past a type (or any token run) until a comma at angle-bracket
/// depth zero, consuming the comma.
fn skip_to_top_level_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth: i64 = 0;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stand-in derive: expected field name".to_string()),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde stand-in derive: expected `:` after `{name}`"
                ))
            }
        }
        fields.push(name);
        skip_to_top_level_comma(tokens, &mut i);
    }
    Ok(fields)
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        count += 1;
        skip_to_top_level_comma(tokens, &mut i);
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde stand-in derive: expected variant name".to_string()),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                ))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        skip_to_top_level_comma(tokens, &mut i);
        variants.push((name, fields));
    }
    Ok(variants)
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "::serde::Value::Unit".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let mut code =
                String::from("let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                code.push_str(&format!(
                    "::serde::__private::push_field(&mut entries, {f:?}, ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            code.push_str("::serde::Value::Map(entries)");
            code
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{variant} => ::serde::Value::Str({variant:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{variant}(__f0) => ::serde::Value::Map(vec![({variant:?}.to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{variant}({}) => ::serde::Value::Map(vec![({variant:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(named) => {
                        let binders = named.join(", ");
                        let mut inner = String::from(
                            "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in named {
                            inner.push_str(&format!(
                                "::serde::__private::push_field(&mut entries, {f:?}, ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {binders} }} => {{ {inner} ::serde::Value::Map(vec![({variant:?}.to_string(), ::serde::Value::Map(entries))]) }},\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!(
            "match __value {{\n\
                 ::serde::Value::Unit => Ok({name}),\n\
                 __other => Err(::serde::Error::custom(format!(\"{name}: expected unit, found {{}}\", __other.kind()))),\n\
             }}"
        ),
        Kind::Struct(Fields::Tuple(1)) => format!(
            "Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::elem(__items, {i}, {name:?})?"))
                .collect();
            format!(
                "let __items = ::serde::__private::expect_seq(__value, {name:?}, {n})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__private::field(__entries, {f:?}, {name:?})?"))
                .collect();
            format!(
                "let __entries = ::serde::__private::expect_map(__value, {name:?})?;\n\
                 Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for (variant, fields) in variants {
                match fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!("{variant:?} => Ok({name}::{variant}),\n"));
                        map_arms.push_str(&format!("{variant:?} => Ok({name}::{variant}),\n"));
                    }
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "{variant:?} => Ok({name}::{variant}(::serde::Deserialize::from_value(__payload).map_err(|e| ::serde::Error::custom(format!(\"{name}::{variant}: {{e}}\")))?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::__private::elem(__items, {i}, \"{name}::{variant}\")?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "{variant:?} => {{\n\
                                 let __items = ::serde::__private::expect_seq(__payload, \"{name}::{variant}\", {n})?;\n\
                                 Ok({name}::{variant}({}))\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(named) => {
                        let items: Vec<String> = named
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::__private::field(__entries, {f:?}, \"{name}::{variant}\")?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "{variant:?} => {{\n\
                                 let __entries = ::serde::__private::expect_map(__payload, \"{name}::{variant}\")?;\n\
                                 Ok({name}::{variant} {{ {} }})\n\
                             }},\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {str_arms}\
                         __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = &__m[0];\n\
                         let _ = __payload;\n\
                         match __tag.as_str() {{\n\
                             {map_arms}\
                             __other => Err(::serde::Error::custom(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }},\n\
                     __other => Err(::serde::Error::custom(format!(\"{name}: expected variant, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
