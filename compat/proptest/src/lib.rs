//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro (with an optional `#![proptest_config(...)]` header), range and
//! `any::<T>()` strategies, `proptest::collection::vec`, and the
//! `prop_assert*` macros. Inputs are drawn from a deterministic per-test
//! PRNG (seeded from the test name), so failures are reproducible; there is
//! no shrinking.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic SplitMix64 PRNG used to draw test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 below `n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                if span == 0 {
                    return self.start;
                }
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u8, u16, u32, u64, i32, i64);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64() * 2e6 - 1e6
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing any value of `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`](fn@vec): an exact length or a range.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(value: usize) -> Self {
            SizeRange {
                lo: value,
                hi: value,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(value: Range<usize>) -> Self {
            SizeRange {
                lo: value.start,
                hi: value.end.saturating_sub(1).max(value.start),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1.5f64..3.5, n in 2usize..10, k in 1u64..100) {
            prop_assert!((1.5..3.5).contains(&x));
            prop_assert!((2..10).contains(&n));
            prop_assert!((1..100).contains(&k));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn vectors_respect_length(xs in crate::collection::vec(any::<bool>(), 1..4), ys in crate::collection::vec(0.0f64..=1.0, 3)) {
            prop_assert!((1..=3).contains(&xs.len()));
            prop_assert_eq!(ys.len(), 3);
            prop_assert!(ys.iter().all(|y| (0.0..=1.0).contains(y)));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
