//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use (`Criterion`,
//! benchmark groups, `Bencher::iter`, the `criterion_group!`/
//! `criterion_main!` macros). Instead of criterion's statistical analysis it
//! runs each benchmark for a small fixed number of iterations and prints the
//! mean wall-clock time per iteration.

use std::time::Instant;

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), &mut f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    nanos: f64,
}

impl Bencher {
    /// Times `f` over a fixed number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One warm-up iteration, then the timed ones.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(f());
        }
        self.nanos = start.elapsed().as_nanos() as f64 / self.iterations as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher {
        iterations: 3,
        nanos: 0.0,
    };
    f(&mut bencher);
    let per_iter = bencher.nanos;
    if per_iter >= 1e6 {
        println!("bench {id:<50} {:>12.3} ms/iter", per_iter / 1e6);
    } else {
        println!("bench {id:<50} {:>12.1} ns/iter", per_iter);
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        assert!(runs >= 4); // 1 warm-up + 3 timed
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
