//! End-to-end reproduction of the paper's headline narrative: the SDR
//! benchmark warms up into an unbalanced thermal state under DVFS alone, and
//! the migration-based policy balances it quickly at bounded cost.

use tbp_arch::units::{Celsius, Seconds};
use tbp_core::experiments::{build_sdr_simulation, ExperimentConfig, PolicyKind};
use tbp_thermal::package::PackageKind;

fn spread(temps: &[Celsius]) -> f64 {
    temps
        .iter()
        .map(|c| c.as_celsius())
        .fold(f64::MIN, f64::max)
        - temps
            .iter()
            .map(|c| c.as_celsius())
            .fold(f64::MAX, f64::min)
}

/// The paper: after 12.5 s of DVFS-only execution the temperatures are stable
/// but unbalanced, with roughly 10 °C between the hottest and coolest core,
/// and the two 266 MHz cores differ because of their floorplan position.
#[test]
fn warmup_produces_unbalanced_stable_gradient() {
    let config = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::DvfsOnly,
        threshold: 3.0,
        warmup: Seconds::new(0.0),
        duration: Seconds::new(12.5),
    };
    let mut sim = build_sdr_simulation(&config).unwrap();
    sim.run_for(Seconds::new(10.0)).unwrap();
    let at_10s = sim.core_temperatures();
    sim.run_for(Seconds::new(2.5)).unwrap();
    let at_12s = sim.core_temperatures();

    // Core 1 (the 533 MHz core of Table 2) is the hottest, core 3 the coolest.
    assert!(at_12s[0].as_celsius() > at_12s[1].as_celsius());
    assert!(at_12s[1].as_celsius() > at_12s[2].as_celsius());
    // The gradient is in the ballpark the paper reports (~10 °C).
    let gradient = spread(&at_12s);
    assert!(
        (6.0..14.0).contains(&gradient),
        "expected a gradient of roughly 10 °C, got {gradient:.1}"
    );
    // Cores 2 and 3 run at the same frequency but differ thermally because of
    // their position on the floorplan.
    assert!((at_12s[1].as_celsius() - at_12s[2].as_celsius()).abs() > 0.5);
    // The temperatatures are close to stable by 12.5 s (the paper's warm-up).
    for (a, b) in at_10s.iter().zip(&at_12s) {
        assert!((b.as_celsius() - a.as_celsius()).abs() < 2.5);
    }
    // Nothing else happened: no migrations, no misses.
    let summary = sim.summary();
    assert_eq!(summary.migration.migrations, 0);
    assert_eq!(summary.qos.deadline_misses, 0);
}

/// The paper: once the policy is enabled with a ±3 °C band, the temperatures
/// balance within about a second and the hot core exceeds the upper threshold
/// only briefly, at the cost of a handful of 64 kB migrations.
#[test]
fn enabling_the_policy_balances_within_seconds() {
    let config = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::ThermalBalancing,
        threshold: 3.0,
        warmup: Seconds::new(12.5),
        duration: Seconds::new(10.0),
    };
    let mut sim = build_sdr_simulation(&config).unwrap();
    sim.run_for(Seconds::new(12.5)).unwrap();
    let before = spread(&sim.core_temperatures());
    assert!(
        before > 6.0,
        "warm-up should leave a gradient, got {before:.1}"
    );

    // Advance in 100 ms slices and find when the spread first falls inside
    // the band (2 * threshold).
    let mut balanced_after = None;
    for i in 0..100 {
        sim.run_for(Seconds::from_millis(100.0)).unwrap();
        if spread(&sim.core_temperatures()) <= 6.0 {
            balanced_after = Some((i + 1) as f64 * 0.1);
            break;
        }
    }
    let balanced_after = balanced_after.expect("the policy must balance the chip");
    assert!(
        balanced_after <= 3.0,
        "balancing took {balanced_after:.1} s; the paper reports about a second"
    );

    // Let the run finish and check the cost stayed bounded.
    sim.run_for(Seconds::new(10.0 - balanced_after)).unwrap();
    let summary = sim.summary();
    assert!(summary.migration.migrations >= 1);
    assert!(
        summary.migration.migrations <= 60,
        "migration count should stay bounded, got {}",
        summary.migration.migrations
    );
    // Every migration moves at least the 64 kB minimum allocation.
    assert!(summary.migration.bytes.as_kib() >= 64.0 * summary.migration.migrations as f64);
    // QoS is preserved: the paper sees misses only at the smallest threshold.
    assert_eq!(summary.qos.deadline_misses, 0);
    // The balanced state has a much smaller deviation than the static one.
    assert!(summary.mean_spatial_std_dev() < 2.5);
}

/// The balanced steady state keeps every core close to the mean: the policy's
/// whole point is bounding |T_i - T_mean| by the threshold (small excursions
/// above are tolerated while a migration is in flight).
#[test]
fn balanced_state_keeps_cores_near_the_mean() {
    let config = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::ThermalBalancing,
        threshold: 2.0,
        warmup: Seconds::new(10.0),
        duration: Seconds::new(15.0),
    };
    let mut sim = build_sdr_simulation(&config).unwrap();
    sim.run_for(Seconds::new(25.0)).unwrap();
    let temps = sim.core_temperatures();
    let mean = temps.iter().map(|c| c.as_celsius()).sum::<f64>() / temps.len() as f64;
    for t in &temps {
        assert!(
            (t.as_celsius() - mean).abs() < 5.0,
            "core at {t} strays too far from the mean {mean:.1}"
        );
    }
    let summary = sim.summary();
    // The measured band-violation time is a small fraction of the run.
    assert!(
        summary.thermal.time_above_upper_threshold.as_secs()
            < 0.4 * summary.measured_time.as_secs()
    );
}
