//! Migration-cost behaviour across the whole stack (Figure 2 plus the
//! middleware): replication vs recreation cost curves, end-to-end freeze
//! times and the memory price of replication.

use proptest::prelude::*;

use tbp_arch::core::CoreId;
use tbp_arch::freq::DvfsScale;
use tbp_arch::platform::{MpsocPlatform, PlatformConfig};
use tbp_arch::units::{Bytes, Seconds};
use tbp_os::migration::{MigrationCostModel, MigrationStrategy};
use tbp_os::mpos::Mpos;
use tbp_os::task::TaskDescriptor;

/// Figure 2: recreation is offset above replication and its slope grows with
/// the task size; both curves are monotone.
#[test]
fn fig2_cost_curve_shape() {
    let model = MigrationCostModel::paper_default();
    let mut previous_repl = 0.0;
    let mut previous_recr = 0.0;
    for kib in (64..=1024).step_by(64) {
        let size = Bytes::from_kib(kib);
        let repl = model.cycles(MigrationStrategy::TaskReplication, size);
        let recr = model.cycles(MigrationStrategy::TaskRecreation, size);
        assert!(repl > previous_repl);
        assert!(recr > previous_recr);
        assert!(
            recr > repl,
            "recreation must sit above replication at {kib} KiB"
        );
        previous_repl = repl;
        previous_recr = recr;
    }
    // The gap grows with size (larger slope for recreation).
    let gap_small = model.cycles(MigrationStrategy::TaskRecreation, Bytes::from_kib(64))
        - model.cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(64));
    let gap_large = model.cycles(MigrationStrategy::TaskRecreation, Bytes::from_kib(1024))
        - model.cycles(MigrationStrategy::TaskReplication, Bytes::from_kib(1024));
    assert!(gap_large > gap_small);
}

fn migrate_once(strategy: MigrationStrategy, context: Bytes) -> (u64, Seconds, Bytes) {
    let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
    let mut os = Mpos::new(3, DvfsScale::paper_default()).with_strategy(strategy);
    let task = os
        .spawn(TaskDescriptor::new("worker", 0.4, context), CoreId(0))
        .unwrap();
    os.spawn(
        TaskDescriptor::new("background", 0.2, Bytes::from_kib(64)),
        CoreId(2),
    )
    .unwrap();
    os.request_migration(task, CoreId(2)).unwrap();
    for _ in 0..400 {
        let report = os.step(&mut platform, Seconds::from_millis(5.0)).unwrap();
        if !report.completed_migrations.is_empty() {
            break;
        }
    }
    assert_eq!(
        os.core_of(task).unwrap(),
        CoreId(2),
        "migration must complete"
    );
    let totals = os.migration().totals();
    (totals.migrations, totals.frozen_time, totals.bytes)
}

/// End-to-end through the OS + platform: a recreation freezes the task for
/// longer and moves more bytes than a replication of the same context.
#[test]
fn recreation_freezes_longer_than_replication_end_to_end() {
    let context = Bytes::from_kib(256);
    let (repl_count, repl_frozen, repl_bytes) =
        migrate_once(MigrationStrategy::TaskReplication, context);
    let (recr_count, recr_frozen, recr_bytes) =
        migrate_once(MigrationStrategy::TaskRecreation, context);
    assert_eq!(repl_count, 1);
    assert_eq!(recr_count, 1);
    assert!(recr_frozen.as_secs() > repl_frozen.as_secs());
    assert!(recr_bytes > repl_bytes);
    // Replication of 256 kB freezes the task for far less than a frame
    // period (25 ms) — the reason the paper can call migration lightweight.
    assert!(repl_frozen.as_millis() < 25.0);
}

/// The paper's platform deploys replication because the MicroBlaze toolchain
/// lacks PIC; the price is one replica of each migratable task in every
/// core's private memory.
#[test]
fn replication_memory_overhead_scales_with_core_count() {
    let task = Bytes::from_kib(64);
    for cores in [2usize, 3, 4, 8] {
        let total = MigrationStrategy::TaskReplication.total_memory(task, cores);
        assert_eq!(total.as_u64(), task.as_u64() * cores as u64);
        assert_eq!(
            MigrationStrategy::TaskRecreation.total_memory(task, cores),
            task
        );
    }
}

proptest! {
    /// Property: migration cycle costs are monotone in the context size for
    /// both strategies, recreation always costs at least as much as
    /// replication, and every transfer moves at least the 64 kB minimum.
    #[test]
    fn migration_cost_invariants(size_a in 1u64..4096, size_b in 1u64..4096) {
        let model = MigrationCostModel::paper_default();
        let small = Bytes::from_kib(size_a.min(size_b));
        let large = Bytes::from_kib(size_a.max(size_b));
        for strategy in [MigrationStrategy::TaskReplication, MigrationStrategy::TaskRecreation] {
            prop_assert!(model.cycles(strategy, small) <= model.cycles(strategy, large));
            prop_assert!(model.cycles(strategy, small) > 0.0);
            prop_assert!(model.transferred_bytes(strategy, small) >= Bytes::from_kib(64));
        }
        prop_assert!(
            model.cycles(MigrationStrategy::TaskRecreation, large)
                >= model.cycles(MigrationStrategy::TaskReplication, large)
        );
    }

    /// Property: the end-to-end OS-level placement after an arbitrary chain of
    /// valid migration requests is always consistent (each task is in exactly
    /// one run queue, and it is the queue of the core it reports).
    #[test]
    fn run_queues_stay_consistent(destinations in proptest::collection::vec(0usize..3, 1..12)) {
        let mut platform = MpsocPlatform::new(PlatformConfig::paper_default()).unwrap();
        let mut os = Mpos::new(3, DvfsScale::paper_default());
        let task = os
            .spawn(TaskDescriptor::new("hopper", 0.3, Bytes::from_kib(64)), CoreId(0))
            .unwrap();
        for &dst in &destinations {
            // Invalid requests (same core / already migrating) are allowed to
            // fail; the state must stay consistent regardless.
            let _ = os.request_migration(task, CoreId(dst));
            for _ in 0..40 {
                os.step(&mut platform, Seconds::from_millis(5.0)).unwrap();
            }
        }
        let core = os.core_of(task).unwrap();
        let mut appearances = 0;
        for c in 0..3 {
            let on_core = os.tasks_on(CoreId(c)).unwrap().contains(&task);
            if on_core {
                appearances += 1;
                prop_assert_eq!(CoreId(c), core);
            }
        }
        prop_assert_eq!(appearances, 1);
    }
}
