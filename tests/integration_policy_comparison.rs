//! Reproduces the qualitative shapes of Figures 7–11: how the three policies
//! compare in temperature deviation, deadline misses and migration rate, on
//! both thermal packages.

use tbp_arch::units::Seconds;
use tbp_core::experiments::{
    run_sdr_experiment, run_threshold_sweep, ExperimentConfig, PolicyKind,
};
use tbp_core::metrics::SimulationSummary;
use tbp_thermal::package::PackageKind;

fn run(package: PackageKind, policy: PolicyKind, threshold: f64) -> SimulationSummary {
    let config = ExperimentConfig {
        package,
        policy,
        threshold,
        warmup: Seconds::new(6.0),
        duration: Seconds::new(12.0),
    };
    run_sdr_experiment(&config).expect("experiment runs")
}

/// Figure 7 (mobile package): the thermal balancing policy reduces the
/// temperature deviation well below the energy-balancing baseline, which does
/// not react to temperature at all.
#[test]
fn fig7_balancing_beats_energy_balancing_on_sigma() {
    let balancing = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        2.0,
    );
    let energy = run(
        PackageKind::MobileEmbedded,
        PolicyKind::EnergyBalancing,
        2.0,
    );
    assert!(
        balancing.mean_spatial_std_dev() < 0.7 * energy.mean_spatial_std_dev(),
        "balancing σ {:.2} should be well below energy-balancing σ {:.2}",
        balancing.mean_spatial_std_dev(),
        energy.mean_spatial_std_dev()
    );
    // Energy balancing performs no migrations and misses nothing.
    assert_eq!(energy.migration.migrations, 0);
    assert_eq!(energy.qos.deadline_misses, 0);
    // The balancing policy achieves this with a bounded migration rate.
    assert!(balancing.migrations_per_second() < 10.0);
}

/// Figures 7 and 9: the deviation achieved by the balancing policy grows with
/// the threshold (a wider allowed band tolerates larger gradients), while the
/// energy-balancing baseline is flat.
#[test]
fn sigma_grows_with_threshold_for_balancing_only() {
    let tight = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        1.0,
    );
    let loose = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        4.0,
    );
    assert!(
        tight.mean_spatial_std_dev() < loose.mean_spatial_std_dev() + 1e-9,
        "σ at 1 °C ({:.2}) should not exceed σ at 4 °C ({:.2})",
        tight.mean_spatial_std_dev(),
        loose.mean_spatial_std_dev()
    );
    let energy_tight = run(
        PackageKind::MobileEmbedded,
        PolicyKind::EnergyBalancing,
        1.0,
    );
    let energy_loose = run(
        PackageKind::MobileEmbedded,
        PolicyKind::EnergyBalancing,
        4.0,
    );
    assert!(
        (energy_tight.mean_spatial_std_dev() - energy_loose.mean_spatial_std_dev()).abs() < 0.2,
        "energy balancing does not depend on the threshold"
    );
}

/// Figures 8 and 10: Stop&Go controls temperature by halting cores, which
/// starves the pipeline and misses far more deadlines than the migration
/// based policy; the paper's policy stays near zero misses.
#[test]
fn stop_and_go_trades_misses_for_thermal_control() {
    let stopgo = run(PackageKind::MobileEmbedded, PolicyKind::StopGo, 2.0);
    let balancing = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        2.0,
    );
    assert!(
        stopgo.qos.deadline_misses > 20,
        "Stop&Go should miss many frames, got {}",
        stopgo.qos.deadline_misses
    );
    assert!(
        balancing.qos.deadline_misses <= 2,
        "the balancing policy should miss almost nothing, got {}",
        balancing.qos.deadline_misses
    );
    assert!(stopgo.qos.deadline_misses > 10 * balancing.qos.deadline_misses.max(1));
    // Stop&Go indeed issued halts; the balancing policy did not.
    assert!(stopgo.migration.halts > 0);
    assert_eq!(balancing.migration.halts, 0);
}

/// Figure 9/10 (high-performance package): with 6× faster thermal dynamics
/// Stop&Go can pin the deviation harder than the migration-based policy, but
/// only by sacrificing QoS — the crossover the paper highlights.
#[test]
fn fig9_fig10_high_performance_crossover() {
    let stopgo = run(PackageKind::HighPerformance, PolicyKind::StopGo, 1.0);
    let balancing = run(
        PackageKind::HighPerformance,
        PolicyKind::ThermalBalancing,
        1.0,
    );
    let energy = run(
        PackageKind::HighPerformance,
        PolicyKind::EnergyBalancing,
        1.0,
    );
    // Energy balancing is the worst at controlling the gradient.
    assert!(balancing.mean_spatial_std_dev() < energy.mean_spatial_std_dev());
    assert!(stopgo.mean_spatial_std_dev() < energy.mean_spatial_std_dev());
    // Stop&Go pays for its thermal control with deadline misses.
    assert!(stopgo.qos.deadline_misses > 10 * balancing.qos.deadline_misses.max(1));
}

/// Figure 11: the migration rate decreases as the threshold grows, and the
/// high-performance package needs at least as many migrations as the mobile
/// one at the tightest threshold.
#[test]
fn fig11_migration_rate_shape() {
    let mobile_tight = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        1.0,
    );
    let mobile_loose = run(
        PackageKind::MobileEmbedded,
        PolicyKind::ThermalBalancing,
        4.0,
    );
    let hiperf_tight = run(
        PackageKind::HighPerformance,
        PolicyKind::ThermalBalancing,
        1.0,
    );
    assert!(
        mobile_tight.migrations_per_second() >= mobile_loose.migrations_per_second(),
        "migration rate should not grow with the threshold"
    );
    assert!(
        hiperf_tight.migrations_per_second() >= mobile_tight.migrations_per_second() * 0.8,
        "the fast package should migrate at least as often as the mobile one"
    );
    // The overhead stays in the \"hundreds of kB/s\" range the paper calls
    // negligible (64 kB per migration).
    assert!(hiperf_tight.migrated_kib_per_second() < 1024.0);
}

/// The full sweep helper runs every (policy, threshold) combination and
/// returns one point per combination — this is what the figure binaries print.
#[test]
fn threshold_sweep_covers_all_points() {
    let points = run_threshold_sweep(PackageKind::HighPerformance, Seconds::new(4.0)).unwrap();
    assert_eq!(points.len(), 3 * 4);
    for point in &points {
        assert!(point.summary.measured_time.as_secs() > 3.0);
        assert!(point.summary.qos.frames_delivered + point.summary.qos.deadline_misses > 0);
    }
}
