//! Thermal-model behaviour through the full co-simulation: package time
//! constants, solver agreement, leakage feedback and floorplan effects.

use proptest::prelude::*;

use tbp_arch::floorplan::Floorplan;
use tbp_arch::units::{Seconds, Watts};
use tbp_core::experiments::{build_sdr_simulation, ExperimentConfig, PolicyKind};
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{SimulationBuilder, SimulationConfig};
use tbp_thermal::package::{Package, PackageKind};
use tbp_thermal::solver::SolverKind;
use tbp_thermal::ThermalModel;

fn warmup_sim(package: PackageKind) -> tbp_core::Simulation {
    let config = ExperimentConfig {
        package,
        policy: PolicyKind::DvfsOnly,
        threshold: 3.0,
        warmup: Seconds::new(0.0),
        duration: Seconds::new(2.0),
    };
    build_sdr_simulation(&config).unwrap()
}

/// Section 5: the high-performance package's temperature variations are six
/// times faster. After the same two seconds of the same workload, the fast
/// package must have risen much closer to its steady state.
#[test]
fn high_performance_package_heats_up_much_faster() {
    let mut mobile = warmup_sim(PackageKind::MobileEmbedded);
    let mut hiperf = warmup_sim(PackageKind::HighPerformance);
    mobile.run_for(Seconds::new(2.0)).unwrap();
    hiperf.run_for(Seconds::new(2.0)).unwrap();
    let rise_mobile = mobile.core_temperatures()[0].as_celsius() - 45.0;
    let rise_hiperf = hiperf.core_temperatures()[0].as_celsius() - 45.0;
    assert!(
        rise_hiperf > 1.4 * rise_mobile,
        "high-performance rise {rise_hiperf:.1} should far exceed mobile rise {rise_mobile:.1}"
    );
}

/// Both packages share their resistances, so a long run converges to similar
/// temperatures; only the speed differs.
#[test]
fn packages_share_the_same_steady_state() {
    let mut mobile = warmup_sim(PackageKind::MobileEmbedded);
    let mut hiperf = warmup_sim(PackageKind::HighPerformance);
    mobile.run_for(Seconds::new(40.0)).unwrap();
    hiperf.run_for(Seconds::new(40.0)).unwrap();
    for (a, b) in mobile
        .core_temperatures()
        .iter()
        .zip(hiperf.core_temperatures())
    {
        assert!(
            (a.as_celsius() - b.as_celsius()).abs() < 2.0,
            "steady states should agree: {a} vs {b}"
        );
    }
}

/// The Euler and RK4 integrators must agree on the co-simulation's outcome.
#[test]
fn solver_choice_does_not_change_the_physics() {
    let build = |solver| {
        SimulationBuilder::new()
            .with_package(Package::high_performance())
            .with_workload(Workload::sdr())
            .with_solver(solver)
            .with_config(SimulationConfig {
                warmup: Seconds::new(1.0),
                ..SimulationConfig::paper_default()
            })
            .build()
            .unwrap()
    };
    let mut euler = build(SolverKind::ForwardEuler);
    let mut rk4 = build(SolverKind::RungeKutta4);
    euler.run_for(Seconds::new(5.0)).unwrap();
    rk4.run_for(Seconds::new(5.0)).unwrap();
    for (a, b) in euler
        .core_temperatures()
        .iter()
        .zip(rk4.core_temperatures())
    {
        assert!(
            (a.as_celsius() - b.as_celsius()).abs() < 0.5,
            "solvers disagree: {a} vs {b}"
        );
    }
}

/// Block temperatures always stay at or above ambient and below a sane
/// ceiling for the powers the platform can produce.
#[test]
fn temperatures_stay_physical_during_long_runs() {
    let mut sim = warmup_sim(PackageKind::HighPerformance);
    for _ in 0..10 {
        sim.run_for(Seconds::new(2.0)).unwrap();
        for t in sim.core_temperatures() {
            assert!(t.as_celsius() >= 44.9, "below ambient: {t}");
            assert!(t.as_celsius() <= 150.0, "runaway temperature: {t}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for any (bounded) power distribution over the paper's
    /// floorplan, the steady state is hotter where more power is injected,
    /// every block is above ambient, and doubling all powers scales the
    /// temperature rises linearly (the RC network is linear).
    #[test]
    fn steady_state_is_monotone_and_linear(
        powers in proptest::collection::vec(0.0f64..0.6, 14)
    ) {
        let floorplan = Floorplan::paper_3core();
        let model = ThermalModel::new(&floorplan, Package::mobile_embedded()).unwrap();
        let power: Vec<Watts> = powers.iter().map(|&p| Watts::new(p)).collect();
        let doubled: Vec<Watts> = powers.iter().map(|&p| Watts::new(2.0 * p)).collect();
        let base = model.steady_state(&power).unwrap();
        let twice = model.steady_state(&doubled).unwrap();
        let ambient = model.package().ambient.as_celsius();
        for (t1, t2) in base.iter().zip(&twice) {
            prop_assert!(t1.as_celsius() >= ambient - 1e-6);
            let rise1 = t1.as_celsius() - ambient;
            let rise2 = t2.as_celsius() - ambient;
            prop_assert!((rise2 - 2.0 * rise1).abs() < 0.05 + 0.01 * rise1.abs());
        }
        // The hottest block is one that receives non-trivial power, unless
        // everything is idle.
        let max_power = powers.iter().cloned().fold(0.0, f64::max);
        if max_power > 0.05 {
            let hottest = base
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.as_celsius().partial_cmp(&b.1.as_celsius()).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            prop_assert!(powers[hottest] > 0.0);
        }
    }
}
