//! Quality-of-service behaviour: queue sizing, the effect of halting cores,
//! and the pipeline's ability to ride out migration freezes (narrative N3 of
//! DESIGN.md).

use proptest::prelude::*;

use tbp_arch::units::Seconds;
use tbp_core::experiments::{run_sdr_experiment, ExperimentConfig, PolicyKind};
use tbp_core::sim::builder::Workload;
use tbp_core::sim::{SimulationBuilder, SimulationConfig};
use tbp_streaming::pipeline::PipelineConfig;
use tbp_streaming::sdr::SdrBenchmark;
use tbp_thermal::package::{Package, PackageKind};

fn run_with_queue(queue_capacity: usize, threshold: f64) -> tbp_core::SimulationSummary {
    let sdr = SdrBenchmark::paper_default().with_pipeline_config(PipelineConfig {
        queue_capacity,
        prefill: (queue_capacity / 2).max(1).min(queue_capacity),
        ..PipelineConfig::paper_default()
    });
    let mut sim = SimulationBuilder::new()
        .with_package(Package::high_performance())
        .with_workload(Workload::Sdr(sdr))
        .with_threshold(threshold)
        .with_config(SimulationConfig {
            warmup: Seconds::new(3.0),
            metrics_threshold: threshold,
            ..SimulationConfig::paper_default()
        })
        .build()
        .unwrap();
    sim.run_for(Seconds::new(15.0)).unwrap();
    sim.summary()
}

/// The paper: a queue size can always be found that sustains thermal
/// balancing without QoS impact (11 frames in their setup). Deep queues must
/// absorb the most aggressive balancing configuration, and shrinking the
/// queues can only make things worse.
#[test]
fn deeper_queues_absorb_migration_freezes() {
    let tiny = run_with_queue(1, 1.0);
    let paper = run_with_queue(11, 1.0);
    assert!(
        paper.migration.migrations > 0,
        "the tight threshold must migrate"
    );
    assert_eq!(
        paper.qos.deadline_misses, 0,
        "11-frame queues must sustain balancing without misses"
    );
    assert!(
        tiny.qos.deadline_misses >= paper.qos.deadline_misses,
        "shrinking the queues cannot improve QoS"
    );
}

/// Without any thermal policy the provisioned pipeline never misses a
/// deadline: misses in the other experiments are attributable to the policy
/// under test, not to the workload itself.
#[test]
fn baseline_pipeline_is_feasible() {
    let config = ExperimentConfig {
        package: PackageKind::MobileEmbedded,
        policy: PolicyKind::DvfsOnly,
        threshold: 3.0,
        warmup: Seconds::new(2.0),
        duration: Seconds::new(15.0),
    };
    let summary = run_sdr_experiment(&config).unwrap();
    assert_eq!(summary.qos.deadline_misses, 0);
    // Roughly one frame per 25 ms over the whole run.
    let expected = (summary.total_time.as_secs() / 0.025) as u64;
    assert!(summary.qos.frames_delivered > expected * 8 / 10);
    assert!(summary.qos.frames_delivered <= expected + 2);
}

/// Halting cores (Stop&Go) starves the stages mapped to them: the miss count
/// grows with how long cores stay halted, and the miss rate is bounded by 1.
#[test]
fn halting_cores_causes_proportional_misses() {
    let config = ExperimentConfig {
        package: PackageKind::HighPerformance,
        policy: PolicyKind::StopGo,
        threshold: 2.0,
        warmup: Seconds::new(3.0),
        duration: Seconds::new(12.0),
    };
    let summary = run_sdr_experiment(&config).unwrap();
    assert!(summary.migration.halts > 0);
    assert!(summary.qos.deadline_misses > 0);
    let rate = summary.qos.miss_rate();
    assert!((0.0..=1.0).contains(&rate));
    // Misses cannot exceed the number of deadlines that elapsed.
    let deadlines = summary.qos.frames_delivered + summary.qos.deadline_misses;
    assert!(deadlines as f64 <= summary.total_time.as_secs() / 0.025 + 2.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: for any queue capacity and balancing threshold, the QoS
    /// accounting is internally consistent — delivered + missed never exceeds
    /// the number of deadlines that elapsed, and the minimum queue level never
    /// exceeds the capacity.
    #[test]
    fn qos_accounting_is_consistent(queue in 1usize..16, threshold in 1.0f64..4.0) {
        let summary = run_with_queue(queue, threshold);
        let deadlines = summary.qos.frames_delivered + summary.qos.deadline_misses;
        let elapsed_deadlines = (summary.total_time.as_secs() / 0.025).ceil() as u64 + 2;
        prop_assert!(deadlines <= elapsed_deadlines);
        prop_assert!(summary.qos.min_queue_level <= queue);
        prop_assert!(summary.qos.miss_rate() >= 0.0 && summary.qos.miss_rate() <= 1.0);
    }
}
